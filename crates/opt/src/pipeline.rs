//! Fixed-point optimization drivers.

use crate::{
    algebraic, constprop, copyprop, cse, dce, dead_slots, memfwd, pure_calls, simplify_cfg,
};
use hlo_ir::{Function, Program};
use hlo_lint::Checker;

/// Aggregate statistics from an optimization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptStats {
    /// Instructions folded to constants.
    pub folded: u64,
    /// Conditional branches removed.
    pub branches_folded: u64,
    /// Indirect calls promoted to direct (enables later inlining).
    pub indirect_promoted: u64,
    /// Dead instructions removed.
    pub dead_removed: u64,
    /// CFG blocks removed or merged.
    pub blocks_simplified: u64,
    /// Common subexpressions replaced.
    pub cse_replaced: u64,
    /// Calls to side-effect-free routines deleted (program-level only).
    pub pure_calls_removed: u64,
    /// Whether anything at all changed. This is the cache-invalidation
    /// signal: a function whose run reports `changed` may have shifted
    /// instruction indices, so any cached [`hlo_analysis::CallGraph`]
    /// sites into it are stale even when no call was touched.
    pub changed: bool,
}

impl OptStats {
    fn absorb_function_round(
        &mut self,
        cp: constprop::ConstPropStats,
        cfg: simplify_cfg::CfgStats,
        cse_n: u64,
        copy_n: u64,
        dce_n: u64,
    ) -> bool {
        self.folded += cp.insts_folded;
        self.branches_folded += cp.branches_folded + cfg.branches_folded;
        self.indirect_promoted += cp.indirect_promoted;
        self.dead_removed += dce_n;
        self.blocks_simplified += cfg.blocks_removed + cfg.blocks_merged;
        self.cse_replaced += cse_n;
        cp.changed() || cfg.changed() || cse_n > 0 || copy_n > 0 || dce_n > 0
    }
}

/// Optimizes one function to a (bounded) fixpoint: constprop →
/// algebraic simplification → CFG simplify → store-to-load forwarding →
/// copyprop → CSE → DCE → dead-slot elimination, repeated while anything
/// changes, at most `MAX_ROUNDS` times.
pub fn optimize_function(f: &mut Function) -> OptStats {
    optimize_function_checked(f, &mut Checker::disabled())
}

/// [`optimize_function`] in verify-each mode: after every sub-pass the
/// checker's battery runs on the function, so a defect is attributed to
/// the exact scalar pass that introduced it (e.g. `cse`), not just "the
/// optimizer". With a disabled checker this is exactly
/// [`optimize_function`] — the boundary calls return immediately.
pub fn optimize_function_checked(f: &mut Function, ck: &mut Checker) -> OptStats {
    const MAX_ROUNDS: usize = 8;
    let mut stats = OptStats::default();
    for _ in 0..MAX_ROUNDS {
        let cp = constprop::propagate(f);
        ck.check_function(f, "constprop");
        let alg_n = algebraic::simplify_algebra(f);
        ck.check_function(f, "algebraic");
        let cfg = simplify_cfg::simplify(f);
        ck.check_function(f, "simplify_cfg");
        let fwd_n = memfwd::forward_stores(f);
        ck.check_function(f, "memfwd");
        let copy_n = copyprop::propagate_copies(f);
        ck.check_function(f, "copyprop");
        let cse_n = cse::eliminate_common(f);
        ck.check_function(f, "cse");
        let dce_n = dce::eliminate_dead(f);
        ck.check_function(f, "dce");
        let slot_n = dead_slots::eliminate_dead_slots(f);
        ck.check_function(f, "dead_slots");
        stats.folded += alg_n + fwd_n;
        stats.dead_removed += slot_n;
        let round_changed = stats.absorb_function_round(cp, cfg, cse_n, copy_n, dce_n)
            || alg_n + fwd_n + slot_n > 0;
        stats.changed |= round_changed;
        if !round_changed {
            break;
        }
    }
    stats
}

/// Optimizes every function of `p` and removes calls to side-effect-free
/// routines (interprocedural), iterating once more when that deletion
/// exposes new intraprocedural opportunities.
pub fn optimize_program(p: &mut Program) -> OptStats {
    optimize_program_checked(p, &mut Checker::disabled())
}

/// [`optimize_program`] in verify-each mode; see
/// [`optimize_function_checked`].
pub fn optimize_program_checked(p: &mut Program, ck: &mut Checker) -> OptStats {
    let mut stats = OptStats::default();
    for _ in 0..3 {
        let mut changed = false;
        for i in 0..p.funcs.len() {
            let s = {
                let f = &mut p.funcs[i];
                optimize_function_checked(f, ck)
            };
            changed |= s.changed;
            stats.changed |= s.changed;
            stats.folded += s.folded;
            stats.branches_folded += s.branches_folded;
            stats.indirect_promoted += s.indirect_promoted;
            stats.dead_removed += s.dead_removed;
            stats.blocks_simplified += s.blocks_simplified;
            stats.cse_replaced += s.cse_replaced;
        }
        let pure_n = pure_calls::eliminate_pure_calls(p);
        ck.check(p, "pure_calls");
        stats.pure_calls_removed += pure_n;
        stats.changed |= pure_n > 0;
        if pure_n == 0 && !changed {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::{
        verify_program, BinOp, ConstVal, FuncId, FunctionBuilder, Inst, Linkage, Operand,
        ProgramBuilder, Type,
    };

    #[test]
    fn pipeline_collapses_constant_computation() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut f = FunctionBuilder::new("main", m, 0);
        let e = f.entry_block();
        let t = f.new_block();
        let z = f.new_block();
        let a = f.iconst(e, 4);
        let b = f.bin(e, BinOp::Mul, a.into(), Operand::imm(10));
        let c = f.bin(e, BinOp::Gt, b.into(), Operand::imm(10));
        f.br(e, c.into(), t, z);
        f.ret(t, Some(b.into()));
        f.ret(z, Some(Operand::imm(0)));
        pb.add_function(f.finish(Linkage::Public, Type::I64));
        let mut p = pb.finish(Some(FuncId(0)));
        optimize_program(&mut p);
        verify_program(&p).unwrap();
        // Everything folds to `ret 40` in a single block.
        assert_eq!(p.funcs[0].blocks.len(), 1);
        assert_eq!(p.funcs[0].size(), 1);
        match p.funcs[0].blocks[0].insts.last().unwrap() {
            Inst::Ret { value } => assert_eq!(*value, Some(Operand::imm(40))),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn staged_promotion_direct_call_appears() {
        // fp = &target; call *fp  ==> call target
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut f = FunctionBuilder::new("main", m, 0);
        let e = f.entry_block();
        let fp = f.const_(e, ConstVal::FuncAddr(FuncId(1)));
        let r = f.call_indirect(e, fp.into(), vec![]);
        f.ret(e, Some(r.into()));
        pb.add_function(f.finish(Linkage::Public, Type::I64));
        let mut t = FunctionBuilder::new("target", m, 0);
        let e = t.entry_block();
        t.ret(e, Some(Operand::imm(5)));
        pb.add_function(t.finish(Linkage::Public, Type::I64));
        let mut p = pb.finish(Some(FuncId(0)));
        let stats = optimize_program(&mut p);
        assert_eq!(stats.indirect_promoted, 1);
        verify_program(&p).unwrap();
    }

    #[test]
    fn optimization_preserves_execution_semantics() {
        // Compare VM output before/after on a small looping program.
        use hlo_vm::{run_program, ExecOptions};
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let sink = pb.declare_extern("sink", Some(1), false);
        let mut f = FunctionBuilder::new("main", m, 0);
        let e = f.entry_block();
        let h = f.new_block();
        let body = f.new_block();
        let x = f.new_block();
        let i = f.new_reg();
        let acc = f.new_reg();
        f.copy_to(e, i, Operand::imm(0));
        f.copy_to(e, acc, Operand::imm(0));
        f.jump(e, h);
        let c = f.bin(h, BinOp::Lt, i.into(), Operand::imm(50));
        f.br(h, c.into(), body, x);
        let t1 = f.bin(body, BinOp::Mul, i.into(), Operand::imm(3));
        let t2 = f.bin(body, BinOp::Add, acc.into(), t1.into());
        f.copy_to(body, acc, t2.into());
        let i1 = f.bin(body, BinOp::Add, i.into(), Operand::imm(1));
        f.copy_to(body, i, i1.into());
        f.jump(body, h);
        f.call_extern(x, sink, vec![acc.into()], false);
        f.ret(x, Some(acc.into()));
        pb.add_function(f.finish(Linkage::Public, Type::I64));
        let p0 = pb.finish(Some(FuncId(0)));
        let mut p1 = p0.clone();
        optimize_program(&mut p1);
        verify_program(&p1).unwrap();
        let o0 = run_program(&p0, &[], &ExecOptions::default()).unwrap();
        let o1 = run_program(&p1, &[], &ExecOptions::default()).unwrap();
        assert_eq!(o0.ret, o1.ret);
        assert_eq!(o0.checksum, o1.checksum);
        assert!(o1.retired <= o0.retired);
    }
}
