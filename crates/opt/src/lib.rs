#![warn(missing_docs)]
//! The scalar ("global", in the paper's terminology) optimizer.
//!
//! HLO's thesis is that inlining and cloning *enable* classic
//! optimizations by widening their scope; this crate supplies that classic
//! set, and the HLO driver (crate `hlo`) interleaves it with inline/clone
//! passes so each pass sees information sharpened by the previous one:
//!
//! * [`constprop`] — worklist dataflow constant propagation and folding
//!   over the virtual registers, with function addresses in the lattice;
//!   this is the pass that turns a cloned function-pointer parameter into
//!   a **direct** call, enabling the staged indirect-call promotion of
//!   paper §3.1.
//! * [`simplify_cfg`] — constant-branch folding, unreachable-block
//!   removal, jump threading, and straight-line block merging, maintaining
//!   profile annotations.
//! * [`copyprop`] — local copy propagation.
//! * [`cse`] — local common-subexpression elimination.
//! * [`dce`] — liveness-based dead-code elimination.
//! * [`memfwd`] — local store-to-load forwarding with conservative alias
//!   classes (frame slots / globals / unknown pointers).
//! * [`dead_slots`] — removal of write-only, non-escaping frame slots
//!   (the residue of inlined callee locals).
//! * [`pure_calls`] — removal of calls to interprocedurally
//!   side-effect-free routines whose results are unused (the paper's
//!   072.sc curses-stub deletions).
//! * [`xcall`] — summary-driven cross-call transformations
//!   (constant-return folding, store-to-load forwarding across calls,
//!   cross-call dead-store elimination), fed by `hlo-ipa`.
//! * [`straighten`] — profile-guided block reordering (intra-procedural
//!   code positioning after Pettis & Hansen): hot successors become
//!   fall-throughs, which the machine model rewards by eliding jumps to
//!   the next laid-out block.
//! * [`pipeline`] — fixed-point drivers over single functions and whole
//!   programs.

pub mod algebraic;
pub mod constprop;
pub mod copyprop;
pub mod cse;
pub mod dce;
pub mod dead_slots;
pub mod memfwd;
pub mod pipeline;
pub mod pure_calls;
pub mod simplify_cfg;
pub mod straighten;
pub mod xcall;

pub use pipeline::{
    optimize_function, optimize_function_checked, optimize_program, optimize_program_checked,
    OptStats,
};
pub use pure_calls::{
    eliminate_calls_where, eliminate_calls_where_masked, eliminate_pure_calls,
    eliminate_pure_calls_with, eliminate_pure_calls_with_masked, PureCallRemoval, PureCallSite,
};
pub use xcall::{
    fold_const_returns, fold_const_returns_masked, forward_across_calls,
    forward_across_calls_masked, ConstRetFold, CrossCallStats,
};
