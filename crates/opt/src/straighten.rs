//! Profile-guided block straightening (intra-procedural code
//! positioning, after Pettis & Hansen — the paper's reference \[12\]).
//!
//! Blocks are reordered so that each block's hottest successor is laid
//! out immediately after it. An unconditional jump whose target is the
//! next block in layout order costs nothing on real hardware (the
//! assembler elides it / the fetch unit streams through); the machine
//! model in `hlo-sim` honours exactly that rule, so straightening shows
//! up as fewer retired instructions and better I-cache behaviour.
//!
//! The transform permutes `Function::blocks` (entry stays first), remaps
//! every branch target, and keeps the profile annotation parallel.

use hlo_ir::{BlockId, Function};

/// Reorders `f`'s blocks into hot chains. Returns true if the order
/// changed. Uses the profile annotation when present; otherwise the
/// existing order is kept (there is nothing to straighten by).
pub fn straighten_blocks(f: &mut Function) -> bool {
    let n = f.blocks.len();
    if n <= 2 || f.profile.is_none() {
        return false;
    }
    let profile = f.profile.as_ref().expect("checked above");
    let count = |b: BlockId| profile.blocks.get(b.index()).copied().unwrap_or(0.0);

    // The machine model elides an unconditional jump whose target is laid
    // out immediately after it, so adjacency pairs `(jump block, target)`
    // are worth `count(jump block)` each; conditional-branch adjacency is
    // only an I-cache locality preference. Chains therefore:
    //   * follow a trailing `jump` unconditionally (guaranteed elision);
    //   * after a conditional branch, never claim a block some unplaced
    //     jump still wants as its fall-through;
    //   * grow *upstream* through jump-predecessors before being emitted,
    //     so the hottest jump into a seed block also becomes adjacent.
    let succs: Vec<Vec<BlockId>> = f.blocks.iter().map(|b| b.successors()).collect();
    let jump_target: Vec<Option<BlockId>> = f
        .blocks
        .iter()
        .map(|b| match b.insts.last() {
            Some(hlo_ir::Inst::Jump { target }) => Some(*target),
            _ => None,
        })
        .collect();
    let mut jump_preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
    for (i, t) in jump_target.iter().enumerate() {
        if let Some(t) = t {
            if t.index() != i {
                jump_preds[t.index()].push(BlockId(i as u32));
            }
        }
    }

    let mut placed = vec![false; n];
    let mut order: Vec<BlockId> = Vec::with_capacity(n);
    let mut by_heat: Vec<BlockId> = (0..n as u32).map(BlockId).collect();
    by_heat.sort_by(|&a, &b| {
        count(b)
            .partial_cmp(&count(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    let hottest = |cands: &mut dyn Iterator<Item = BlockId>| -> Option<BlockId> {
        cands.max_by(|&a, &b| {
            count(a)
                .partial_cmp(&count(b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.0.cmp(&a.0))
        })
    };

    let mut heat_cursor = 0usize;
    let mut seed = Some(BlockId(0));
    while order.len() < n {
        let mut head = match seed.take() {
            Some(h) if !placed[h.index()] => h,
            _ => {
                while placed[by_heat[heat_cursor].index()] {
                    heat_cursor += 1;
                }
                by_heat[heat_cursor]
            }
        };
        // Grow upstream through unplaced jump-predecessors (entry stays
        // first overall, so the entry's chain cannot be extended upward).
        let mut upstream: Vec<BlockId> = Vec::new();
        if head != BlockId(0) || !order.is_empty() {
            let mut walk_guard = vec![false; n];
            walk_guard[head.index()] = true;
            let mut cur = head;
            while let Some(q) = hottest(
                &mut jump_preds[cur.index()]
                    .iter()
                    .copied()
                    .filter(|q| !placed[q.index()] && !walk_guard[q.index()] && *q != BlockId(0)),
            ) {
                walk_guard[q.index()] = true;
                upstream.push(q);
                cur = q;
            }
        }
        for &q in upstream.iter().rev() {
            placed[q.index()] = true;
            order.push(q);
        }
        if order.is_empty() {
            head = BlockId(0); // entry must lead the first chain
        }
        // Grow downstream.
        let mut cur = head;
        loop {
            placed[cur.index()] = true;
            order.push(cur);
            let next = if let Some(t) = jump_target[cur.index()] {
                // Guaranteed elision when the jump target follows.
                (!placed[t.index()]).then_some(t)
            } else {
                // Conditional branch: adjacency is only locality. Leave
                // blocks that an unplaced jump wants as fall-through.
                let unclaimed = hottest(&mut succs[cur.index()].iter().copied().filter(|s| {
                    !placed[s.index()] && !jump_preds[s.index()].iter().any(|q| !placed[q.index()])
                }));
                unclaimed.or_else(|| {
                    hottest(
                        &mut succs[cur.index()]
                            .iter()
                            .copied()
                            .filter(|s| !placed[s.index()]),
                    )
                })
            };
            match next {
                Some(s) => cur = s,
                None => break,
            }
        }
    }

    if order.iter().enumerate().all(|(i, b)| b.index() == i) {
        return false;
    }

    // Apply the permutation.
    let mut remap = vec![BlockId(0); n];
    for (new_idx, &old) in order.iter().enumerate() {
        remap[old.index()] = BlockId(new_idx as u32);
    }
    let mut new_blocks = Vec::with_capacity(n);
    let mut new_counts = Vec::with_capacity(n);
    let old_profile = f.profile.clone();
    for &old in &order {
        new_blocks.push(std::mem::take(&mut f.blocks[old.index()]));
        if let Some(pr) = &old_profile {
            new_counts.push(pr.blocks[old.index()]);
        }
    }
    for b in &mut new_blocks {
        if let Some(t) = b.insts.last_mut() {
            t.map_successors(|s| remap[s.index()]);
        }
    }
    f.blocks = new_blocks;
    if let Some(pr) = &mut f.profile {
        pr.blocks = new_counts;
    }
    true
}

/// Straightens every function of a program. Returns how many functions
/// changed.
pub fn straighten_program(p: &mut hlo_ir::Program) -> u64 {
    straighten_program_masked(p, None)
}

/// [`straighten_program`] restricted to functions `mask` selects (`None`
/// = all). Straightening is purely per-function, so the incremental
/// driver skips functions spliced from cache (their cached bodies are
/// already straightened).
pub fn straighten_program_masked(p: &mut hlo_ir::Program, mask: Option<&[bool]>) -> u64 {
    let mut changed = 0;
    for (fi, f) in p.funcs.iter_mut().enumerate() {
        if !mask.is_none_or(|m| m.get(fi).copied().unwrap_or(false)) {
            continue;
        }
        if straighten_blocks(f) {
            changed += 1;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::{verify_function, FuncProfile, FunctionBuilder, Linkage, ModuleId, Operand, Type};
    use hlo_vm::{run_program, ExecOptions};

    /// entry -> {cold, hot}; hot -> exit; cold -> exit. Source order puts
    /// cold first; straightening must move hot next to entry.
    fn skewed() -> Function {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 1);
        let e = fb.entry_block();
        let cold = fb.new_block(); // b1
        let hot = fb.new_block(); // b2
        let exit = fb.new_block(); // b3
        fb.br(e, Operand::Reg(fb.param(0)), hot, cold);
        fb.jump(cold, exit);
        fb.jump(hot, exit);
        fb.ret(exit, Some(Operand::imm(9)));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        f.profile = Some(FuncProfile {
            entry: 100.0,
            blocks: vec![100.0, 1.0, 99.0, 100.0],
        });
        f
    }

    #[test]
    fn hot_successor_becomes_next_block() {
        let mut f = skewed();
        assert!(straighten_blocks(&mut f));
        verify_function(&f).unwrap();
        // New order must be entry, hot, exit, cold.
        // entry's Br: hot arm should now target block 1.
        let term = f.blocks[0].insts.last().unwrap();
        let succ = term.successors();
        assert_eq!(succ[0], hlo_ir::BlockId(1), "hot arm follows entry");
        // profile stays parallel & permuted
        let pr = f.profile.as_ref().unwrap();
        assert_eq!(pr.blocks.len(), 4);
        assert_eq!(pr.blocks[1], 99.0);
    }

    #[test]
    fn without_profile_nothing_happens() {
        let mut f = skewed();
        f.profile = None;
        assert!(!straighten_blocks(&mut f));
    }

    #[test]
    fn semantics_preserved_on_benchmarks() {
        for name in ["022.li", "085.gcc", "134.perl"] {
            let b = hlo_suite::benchmark(name).unwrap();
            let mut p = b.compile().unwrap();
            // annotate from a training run so there is a real profile
            let (db, _) =
                hlo_profile::collect_profile(&p, &[b.train_arg], &ExecOptions::default()).unwrap();
            hlo_profile::apply_profile(&mut p, &db);
            let before = run_program(&p, &[b.train_arg], &ExecOptions::default()).unwrap();
            let changed = straighten_program(&mut p);
            assert!(changed > 0, "{name}: expected some reordering");
            hlo_ir::verify_program(&p).unwrap();
            let after = run_program(&p, &[b.train_arg], &ExecOptions::default()).unwrap();
            assert_eq!(before.ret, after.ret, "{name}");
            assert_eq!(before.checksum, after.checksum, "{name}");
            assert_eq!(before.retired, after.retired, "{name}");
        }
    }

    #[test]
    fn entry_block_stays_first() {
        let mut f = skewed();
        straighten_blocks(&mut f);
        // Block 0 must still be the old entry (it holds the Br).
        assert!(matches!(
            f.blocks[0].insts.last(),
            Some(hlo_ir::Inst::Br { .. })
        ));
    }

    #[test]
    fn idempotent_once_straightened() {
        let mut f = skewed();
        assert!(straighten_blocks(&mut f));
        assert!(!straighten_blocks(&mut f), "second run must be a no-op");
    }
}
