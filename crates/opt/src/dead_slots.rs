//! Dead frame-slot elimination.
//!
//! After inlining, a callee's local array often becomes write-only in the
//! merged body (its reads folded away, or the values forwarded through
//! registers). A slot whose address is used *only* as the base of stores
//! — never loaded, never copied, never passed anywhere — cannot be
//! observed, so those stores, the address computations and the slot
//! itself can go.

use hlo_ir::{Function, Inst, Operand, SlotId};

/// Removes write-only, non-escaping frame slots from `f`. Returns the
/// number of instructions removed.
pub fn eliminate_dead_slots(f: &mut Function) -> u64 {
    let nslots = f.slots.len();
    if nslots == 0 {
        return 0;
    }

    // For each register, which slot's address it holds (directly from a
    // single FrameAddr). Registers written by anything else, or by
    // FrameAddr of several slots, disqualify their slots.
    let mut reg_slot: Vec<Option<SlotId>> = vec![None; f.num_regs as usize];
    let mut escaped = vec![false; nslots];
    let mut multi_def = vec![false; f.num_regs as usize];
    for block in &f.blocks {
        for inst in &block.insts {
            if let Inst::FrameAddr { dst, slot } = inst {
                if reg_slot[dst.index()].is_some() {
                    multi_def[dst.index()] = true;
                }
                reg_slot[dst.index()] = Some(*slot);
            } else if let Some(d) = inst.dst() {
                if reg_slot[d.index()].is_some() {
                    multi_def[d.index()] = true;
                }
            }
        }
    }
    // A register with multiple defs could hold different addresses at
    // different uses; treat every slot it might name as escaped.
    for (ri, m) in multi_def.iter().enumerate() {
        if *m {
            if let Some(s) = reg_slot[ri] {
                escaped[s.index()] = true;
            }
        }
    }
    let slot_of = |op: &Operand, reg_slot: &[Option<SlotId>]| -> Option<SlotId> {
        match op {
            Operand::Reg(r) => reg_slot[r.index()],
            Operand::Const(_) => None,
        }
    };

    // Any use of a slot-address register other than "store base" escapes
    // the slot (loads read it; copies/arithmetic/calls leak the address;
    // store *value* position writes the address to memory).
    for block in &f.blocks {
        for inst in &block.insts {
            match inst {
                Inst::FrameAddr { .. } => {}
                Inst::Store {
                    base,
                    offset,
                    value,
                } => {
                    // base is fine; offset/value uses escape
                    if let Some(s) = slot_of(offset, &reg_slot) {
                        escaped[s.index()] = true;
                    }
                    if let Some(s) = slot_of(value, &reg_slot) {
                        escaped[s.index()] = true;
                    }
                    let _ = base;
                }
                other => {
                    other.for_each_use(|op| {
                        if let Some(s) = slot_of(op, &reg_slot) {
                            escaped[s.index()] = true;
                        }
                    });
                }
            }
        }
    }

    let dead = |s: SlotId| !escaped[s.index()];
    if (0..nslots).all(|i| !dead(SlotId(i as u32))) {
        return 0;
    }

    // Remove stores through dead slots and the FrameAddrs that produced
    // their addresses (the address registers become dead; ordinary DCE
    // already ran, so drop the FrameAddrs here directly).
    let mut removed = 0;
    for block in &mut f.blocks {
        let before = block.insts.len();
        block.insts.retain(|inst| match inst {
            Inst::Store { base, .. } => slot_of(base, &reg_slot).map(dead) != Some(true),
            Inst::FrameAddr { slot, .. } => !dead(*slot),
            _ => true,
        });
        removed += (before - block.insts.len()) as u64;
    }

    // Compact the slot table, renumbering survivors.
    let mut remap: Vec<Option<SlotId>> = vec![None; nslots];
    let mut new_slots = Vec::new();
    for (i, slot) in remap.iter_mut().enumerate() {
        if !dead(SlotId(i as u32)) {
            *slot = Some(SlotId(new_slots.len() as u32));
            new_slots.push(f.slots[i]);
        }
    }
    f.slots = new_slots;
    for block in &mut f.blocks {
        for inst in &mut block.insts {
            if let Inst::FrameAddr { slot, .. } = inst {
                *slot = remap[slot.index()].expect("surviving slot has a mapping");
            }
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::{verify_function, FunctionBuilder, Linkage, ModuleId, Type};
    use hlo_vm::{run_program, ExecOptions};

    #[test]
    fn write_only_slot_is_removed() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 1);
        let s = fb.new_slot(32);
        let e = fb.entry_block();
        let a = fb.frame_addr(e, s);
        fb.store(e, a.into(), Operand::imm(0), Operand::Reg(fb.param(0)));
        fb.store(e, a.into(), Operand::imm(8), Operand::imm(5));
        fb.ret(e, Some(Operand::Reg(fb.param(0))));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        let n = eliminate_dead_slots(&mut f);
        assert_eq!(n, 3); // 2 stores + 1 frameaddr
        assert!(f.slots.is_empty());
        verify_function(&f).unwrap();
    }

    #[test]
    fn loaded_slot_is_kept() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 1);
        let s = fb.new_slot(16);
        let e = fb.entry_block();
        let a = fb.frame_addr(e, s);
        fb.store(e, a.into(), Operand::imm(0), Operand::Reg(fb.param(0)));
        let v = fb.load(e, a.into(), Operand::imm(0));
        fb.ret(e, Some(v.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        assert_eq!(eliminate_dead_slots(&mut f), 0);
        assert_eq!(f.slots.len(), 1);
    }

    #[test]
    fn escaping_address_keeps_slot() {
        // The address is passed to a call: another function may read it.
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 0);
        let s = fb.new_slot(8);
        let e = fb.entry_block();
        let a = fb.frame_addr(e, s);
        fb.store(e, a.into(), Operand::imm(0), Operand::imm(1));
        let r = fb.call(e, hlo_ir::FuncId(0), vec![a.into()]);
        fb.ret(e, Some(r.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        assert_eq!(eliminate_dead_slots(&mut f), 0);
    }

    #[test]
    fn address_stored_as_value_escapes() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 1);
        let s = fb.new_slot(8);
        let e = fb.entry_block();
        let a = fb.frame_addr(e, s);
        // store the ADDRESS into memory elsewhere: it escapes.
        fb.store(e, Operand::Reg(fb.param(0)), Operand::imm(0), a.into());
        fb.store(e, a.into(), Operand::imm(0), Operand::imm(3));
        fb.ret(e, None);
        let mut f = fb.finish(Linkage::Public, Type::Void);
        assert_eq!(eliminate_dead_slots(&mut f), 0);
    }

    #[test]
    fn surviving_slots_are_renumbered() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 1);
        let dead_slot = fb.new_slot(8);
        let live = fb.new_slot(16);
        let e = fb.entry_block();
        let d = fb.frame_addr(e, dead_slot);
        fb.store(e, d.into(), Operand::imm(0), Operand::imm(1));
        let l = fb.frame_addr(e, live);
        fb.store(e, l.into(), Operand::imm(0), Operand::Reg(fb.param(0)));
        let v = fb.load(e, l.into(), Operand::imm(0));
        fb.ret(e, Some(v.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        assert!(eliminate_dead_slots(&mut f) > 0);
        assert_eq!(f.slots, vec![16]);
        verify_function(&f).unwrap();
        // and it still runs
        let mut pb = hlo_ir::ProgramBuilder::new();
        pb.add_module("m");
        // rebuild a runnable program around the function
        let mut p = pb.finish(None);
        p.funcs.push(f);
        p.modules[0].funcs.push(hlo_ir::FuncId(0));
        p.entry = Some(hlo_ir::FuncId(0));
        let out = run_program(&p, &[7], &ExecOptions::default()).unwrap();
        assert_eq!(out.ret, 7);
    }

    #[test]
    fn forwarding_plus_slot_elimination_dissolves_local_arrays() {
        // The whole local array dissolves: store-to-load forwarding turns
        // the reads into register dataflow, constant folding collapses
        // them, and this pass removes the now write-only slot.
        let src = r#"
            fn main() { var t[2]; t[0] = 4 * 2; t[1] = t[0] + 1; return t[1]; }
        "#;
        let p0 = hlo_frontc::compile(&[("m", src)]).unwrap();
        let before = run_program(&p0, &[], &ExecOptions::default()).unwrap();
        let mut p = p0.clone();
        crate::optimize_program(&mut p);
        hlo_ir::verify_program(&p).unwrap();
        let after = run_program(&p, &[], &ExecOptions::default()).unwrap();
        assert_eq!(before.ret, after.ret);
        let main = p.entry.unwrap();
        assert!(
            p.func(main).slots.is_empty(),
            "dead array should be gone: {}",
            p.func(main)
        );
        assert_eq!(p.func(main).size(), 1, "{}", p.func(main));
    }
}
