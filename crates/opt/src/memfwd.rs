//! Local store-to-load forwarding.
//!
//! Within a block, a load from an address just stored to can read the
//! stored value directly. Aliasing is resolved conservatively from three
//! base classes that provably never overlap:
//!
//! * `Slot(s)` — a register holding the address of frame slot `s`
//!   (single `FrameAddr` definition);
//! * `Global(g)` — a `GlobalAddr` constant;
//! * `Reg(r)` — any other register base: identical register ⇒ identical
//!   address (as long as `r` is not redefined), but unknown otherwise.
//!
//! Distinct slots never alias each other or globals; distinct globals
//! never alias; everything may alias a `Reg` base. Calls and allocas
//! clobber all knowledge (the callee may write anything it can reach).
//!
//! Forwarding is what turns an inlined callee's local-array traffic into
//! register dataflow; the dead stores and slots left behind are collected
//! by [`crate::dce`] and [`crate::dead_slots`].

use hlo_ir::{ConstVal, Function, GlobalId, Inst, Operand, Reg, SlotId};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BaseKey {
    Slot(SlotId),
    Global(GlobalId),
    Reg(Reg),
}

#[derive(Debug, Clone, Copy)]
struct Known {
    base: BaseKey,
    offset: i64,
    value: Operand,
}

/// Computes, per register, the frame slot whose address it (uniquely)
/// holds.
fn slot_addr_regs(f: &Function) -> Vec<Option<SlotId>> {
    let mut map: Vec<Option<SlotId>> = vec![None; f.num_regs as usize];
    let mut poisoned = vec![false; f.num_regs as usize];
    for block in &f.blocks {
        for inst in &block.insts {
            match inst {
                Inst::FrameAddr { dst, slot } => {
                    if map[dst.index()].is_some_and(|s| s != *slot) {
                        poisoned[dst.index()] = true;
                    }
                    map[dst.index()] = Some(*slot);
                }
                other => {
                    if let Some(d) = other.dst() {
                        if map[d.index()].is_some() {
                            poisoned[d.index()] = true;
                        }
                    }
                }
            }
        }
    }
    for (i, p) in poisoned.iter().enumerate() {
        if *p {
            map[i] = None;
        }
    }
    map
}

fn classify(base: &Operand, slot_regs: &[Option<SlotId>]) -> Option<BaseKey> {
    match base {
        Operand::Const(ConstVal::GlobalAddr(g)) => Some(BaseKey::Global(*g)),
        Operand::Reg(r) => match slot_regs[r.index()] {
            Some(s) => Some(BaseKey::Slot(s)),
            None => Some(BaseKey::Reg(*r)),
        },
        Operand::Const(_) => None, // absolute integer address: unknown
    }
}

fn may_alias(a: BaseKey, b: BaseKey) -> bool {
    match (a, b) {
        (BaseKey::Slot(x), BaseKey::Slot(y)) => x == y,
        (BaseKey::Global(x), BaseKey::Global(y)) => x == y,
        (BaseKey::Slot(_), BaseKey::Global(_)) | (BaseKey::Global(_), BaseKey::Slot(_)) => false,
        // A raw register base could point anywhere.
        _ => true,
    }
}

/// Runs store-to-load forwarding on `f`. Returns loads replaced.
pub fn forward_stores(f: &mut Function) -> u64 {
    let slot_regs = slot_addr_regs(f);
    let mut replaced = 0;
    for block in &mut f.blocks {
        let mut known: Vec<Known> = Vec::new();
        for inst in &mut block.insts {
            match inst {
                Inst::Store {
                    base,
                    offset,
                    value,
                } => {
                    let key = classify(base, &slot_regs);
                    let off = offset.as_const().and_then(ConstVal::as_i64);
                    match (key, off) {
                        (Some(k), Some(o)) => {
                            // Kill aliasing entries; exact match is replaced.
                            known.retain(|e| {
                                !may_alias(e.base, k) || (e.base == k && e.offset != o)
                            });
                            known.push(Known {
                                base: k,
                                offset: o,
                                value: *value,
                            });
                        }
                        (Some(k), None) => {
                            // Unknown offset within a known base: kills
                            // everything aliasing that base.
                            known.retain(|e| !may_alias(e.base, k));
                        }
                        _ => known.clear(),
                    }
                }
                Inst::Load { dst, base, offset } => {
                    let key = classify(base, &slot_regs);
                    let off = offset.as_const().and_then(ConstVal::as_i64);
                    if let (Some(k), Some(o)) = (key, off) {
                        if let Some(e) = known.iter().find(|e| e.base == k && e.offset == o) {
                            *inst = Inst::Copy {
                                dst: *dst,
                                src: e.value,
                            };
                            replaced += 1;
                        }
                    }
                }
                Inst::Call { .. } | Inst::Alloca { .. } => known.clear(),
                _ => {}
            }
            // A redefined register invalidates entries reading it (value)
            // and entries whose Reg base is it. Slot/Global-keyed entries
            // survive: their identity does not depend on the register.
            if let Some(d) = inst.dst() {
                known.retain(|e| e.value.as_reg() != Some(d) && e.base != BaseKey::Reg(d));
            }
        }
    }
    replaced
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::{FuncId, FunctionBuilder, Linkage, ModuleId, Type};

    #[test]
    fn forwards_through_frame_slot() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 1);
        let s = fb.new_slot(16);
        let e = fb.entry_block();
        let a = fb.frame_addr(e, s);
        fb.store(e, a.into(), Operand::imm(0), Operand::Reg(fb.param(0)));
        let v = fb.load(e, a.into(), Operand::imm(0));
        fb.ret(e, Some(v.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        assert_eq!(forward_stores(&mut f), 1);
        assert!(f.blocks[0]
            .insts
            .iter()
            .all(|i| !matches!(i, Inst::Load { .. })));
    }

    #[test]
    fn different_offsets_do_not_alias() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 2);
        let s = fb.new_slot(16);
        let e = fb.entry_block();
        let a = fb.frame_addr(e, s);
        fb.store(e, a.into(), Operand::imm(0), Operand::Reg(fb.param(0)));
        fb.store(e, a.into(), Operand::imm(8), Operand::Reg(fb.param(1)));
        let v = fb.load(e, a.into(), Operand::imm(0));
        fb.ret(e, Some(v.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        assert_eq!(forward_stores(&mut f), 1);
        match f.blocks[0]
            .insts
            .iter()
            .find(|i| matches!(i, Inst::Copy { .. }))
        {
            Some(Inst::Copy { src, .. }) => assert_eq!(*src, Operand::Reg(Reg(0))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn distinct_slots_do_not_alias() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 1);
        let s1 = fb.new_slot(8);
        let s2 = fb.new_slot(8);
        let e = fb.entry_block();
        let a1 = fb.frame_addr(e, s1);
        let a2 = fb.frame_addr(e, s2);
        fb.store(e, a1.into(), Operand::imm(0), Operand::imm(11));
        fb.store(e, a2.into(), Operand::imm(0), Operand::imm(22));
        let v = fb.load(e, a1.into(), Operand::imm(0));
        fb.ret(e, Some(v.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        assert_eq!(forward_stores(&mut f), 1);
        match f.blocks[0]
            .insts
            .iter()
            .find(|i| matches!(i, Inst::Copy { .. }))
        {
            Some(Inst::Copy { src, .. }) => assert_eq!(*src, Operand::imm(11)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_base_store_clobbers_slots() {
        // A store through a raw pointer register may hit the slot.
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 1);
        let s = fb.new_slot(8);
        let e = fb.entry_block();
        let a = fb.frame_addr(e, s);
        fb.store(e, a.into(), Operand::imm(0), Operand::imm(1));
        fb.store(
            e,
            Operand::Reg(fb.param(0)),
            Operand::imm(0),
            Operand::imm(2),
        );
        let v = fb.load(e, a.into(), Operand::imm(0));
        fb.ret(e, Some(v.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        assert_eq!(forward_stores(&mut f), 0);
    }

    #[test]
    fn calls_clobber_everything() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 0);
        let s = fb.new_slot(8);
        let e = fb.entry_block();
        let a = fb.frame_addr(e, s);
        fb.store(e, a.into(), Operand::imm(0), Operand::imm(1));
        fb.call_void(e, FuncId(0), vec![a.into()]);
        let v = fb.load(e, a.into(), Operand::imm(0));
        fb.ret(e, Some(v.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        assert_eq!(forward_stores(&mut f), 0);
    }

    #[test]
    fn redefined_value_register_invalidates_entry() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 1);
        let s = fb.new_slot(8);
        let e = fb.entry_block();
        let a = fb.frame_addr(e, s);
        let p = fb.param(0);
        fb.store(e, a.into(), Operand::imm(0), Operand::Reg(p));
        fb.copy_to(e, p, Operand::imm(99)); // p no longer holds the stored value
        let v = fb.load(e, a.into(), Operand::imm(0));
        fb.ret(e, Some(v.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        assert_eq!(forward_stores(&mut f), 0);
    }

    #[test]
    fn global_bases_forward_and_do_not_cross_alias() {
        use hlo_ir::ProgramBuilder;
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let g1 = pb.add_global("g1", m, Linkage::Public, 1, vec![]);
        let g2 = pb.add_global("g2", m, Linkage::Public, 1, vec![]);
        let mut fb = FunctionBuilder::new("f", m, 0);
        let e = fb.entry_block();
        fb.store(
            e,
            Operand::Const(ConstVal::GlobalAddr(g1)),
            Operand::imm(0),
            Operand::imm(5),
        );
        fb.store(
            e,
            Operand::Const(ConstVal::GlobalAddr(g2)),
            Operand::imm(0),
            Operand::imm(6),
        );
        let v = fb.load(e, Operand::Const(ConstVal::GlobalAddr(g1)), Operand::imm(0));
        fb.ret(e, Some(v.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        assert_eq!(forward_stores(&mut f), 1);
        match f.blocks[0]
            .insts
            .iter()
            .find(|i| matches!(i, Inst::Copy { .. }))
        {
            Some(Inst::Copy { src, .. }) => assert_eq!(*src, Operand::imm(5)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
