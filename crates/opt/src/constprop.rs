//! Dataflow constant propagation and folding.
//!
//! The lattice per register is `Top` (undefined on every path so far),
//! `Const(c)` (same compile-time constant on all paths), or `Bottom`
//! (varies). `ConstVal::FuncAddr` participates fully: when a cloned
//! function binds a function-pointer formal, the constant flows to the
//! indirect call and [`propagate`] rewrites it into a direct call — the
//! enabling step of the paper's staged indirect-call promotion.

use hlo_ir::{BinOp, Callee, ConstVal, Function, Inst, Operand, UnOp};

/// Lattice value for one register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lat {
    Top,
    Const(ConstVal),
    Bottom,
}

impl Lat {
    fn meet(self, other: Lat) -> Lat {
        match (self, other) {
            (Lat::Top, x) | (x, Lat::Top) => x,
            (Lat::Const(a), Lat::Const(b)) if a == b => Lat::Const(a),
            _ => Lat::Bottom,
        }
    }
}

/// Outcome of one propagation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConstPropStats {
    /// Register uses replaced by immediates.
    pub uses_folded: u64,
    /// Instructions strength-reduced to `Const`.
    pub insts_folded: u64,
    /// Conditional branches with known condition rewritten to jumps.
    pub branches_folded: u64,
    /// Indirect calls promoted to direct calls.
    pub indirect_promoted: u64,
}

impl ConstPropStats {
    /// True when the pass changed the function.
    pub fn changed(&self) -> bool {
        self.uses_folded + self.insts_folded + self.branches_folded + self.indirect_promoted > 0
    }
}

/// Runs constant propagation on `f`, rewriting in place.
pub fn propagate(f: &mut Function) -> ConstPropStats {
    let nregs = f.num_regs as usize;
    let nblocks = f.blocks.len();
    if nblocks == 0 {
        return ConstPropStats::default();
    }

    // In-states per block. Entry: params unknown (Bottom), others Top.
    let mut ins: Vec<Vec<Lat>> = vec![vec![Lat::Top; nregs]; nblocks];
    for l in ins[0].iter_mut().take(f.params as usize) {
        *l = Lat::Bottom;
    }

    // Worklist fixpoint.
    let mut on_list = vec![false; nblocks];
    let mut work: Vec<usize> = vec![0];
    on_list[0] = true;
    // Entry is always "visited"; others only after a predecessor flows in.
    let mut visited = vec![false; nblocks];
    visited[0] = true;

    while let Some(b) = work.pop() {
        on_list[b] = false;
        let mut state = ins[b].clone();
        for inst in &f.blocks[b].insts {
            transfer(inst, &mut state);
        }
        for s in f.blocks[b].successors() {
            let si = s.index();
            let mut changed = false;
            if !visited[si] {
                visited[si] = true;
                ins[si] = state.clone();
                changed = true;
            } else {
                for r in 0..nregs {
                    let m = ins[si][r].meet(state[r]);
                    if m != ins[si][r] {
                        ins[si][r] = m;
                        changed = true;
                    }
                }
            }
            if changed && !on_list[si] {
                on_list[si] = true;
                work.push(si);
            }
        }
    }

    // Rewrite using per-instruction states.
    let mut stats = ConstPropStats::default();
    for b in 0..nblocks {
        if !visited[b] {
            continue; // unreachable; simplify_cfg removes it
        }
        let mut state = ins[b].clone();
        let block = &mut f.blocks[b];
        for inst in &mut block.insts {
            // Replace register uses that are known constants.
            inst.for_each_use_mut(|op| {
                if let Operand::Reg(r) = *op {
                    if let Lat::Const(c) = state[r.index()] {
                        *op = Operand::Const(c);
                        stats.uses_folded += 1;
                    }
                }
            });
            // Fold whole instructions.
            match inst {
                Inst::Bin { dst, op, a, b } => {
                    if let (Operand::Const(ca), Operand::Const(cb)) = (*a, *b) {
                        if let Some(c) = fold_bin(*op, ca, cb) {
                            *inst = Inst::Const {
                                dst: *dst,
                                value: c,
                            };
                            stats.insts_folded += 1;
                        }
                    }
                }
                Inst::Un {
                    dst,
                    op,
                    a: Operand::Const(ca),
                } => {
                    if let Some(c) = fold_un(*op, *ca) {
                        *inst = Inst::Const {
                            dst: *dst,
                            value: c,
                        };
                        stats.insts_folded += 1;
                    }
                }
                Inst::Copy {
                    dst,
                    src: Operand::Const(c),
                } => {
                    *inst = Inst::Const {
                        dst: *dst,
                        value: *c,
                    };
                    stats.insts_folded += 1;
                }
                Inst::Br { cond, then_, else_ } => {
                    if let Operand::Const(c) = *cond {
                        let taken = const_truthy(c);
                        let target = if taken { *then_ } else { *else_ };
                        *inst = Inst::Jump { target };
                        stats.branches_folded += 1;
                    } else if then_ == else_ {
                        *inst = Inst::Jump { target: *then_ };
                        stats.branches_folded += 1;
                    }
                }
                Inst::Call { callee, .. } => {
                    if let Callee::Indirect(Operand::Const(ConstVal::FuncAddr(t))) = callee {
                        *callee = Callee::Func(*t);
                        stats.indirect_promoted += 1;
                    }
                }
                _ => {}
            }
            transfer(inst, &mut state);
        }
    }
    if stats.branches_folded > 0 {
        repair_profile(f);
    }
    stats
}

/// Folding a branch disconnects CFG edges, which can strand profile
/// estimates: a loop header annotated for N iterations keeps its count
/// after the back edge is proven dead, violating flow conservation
/// (checked by `hlo-lint`). Zero the counts of blocks that became
/// unreachable and clamp every reachable block to its inflow (entry count
/// plus reachable-predecessor counts). The clamp is swept in block order
/// until fixpoint; deficits only propagate along acyclic paths — a cycle
/// justifies its members through its own back edge — so `n` sweeps
/// suffice.
fn repair_profile(f: &mut Function) {
    let n = f.blocks.len();
    match &f.profile {
        Some(p) if p.blocks.len() == n => {}
        _ => return,
    }
    let mut reach = vec![false; n];
    reach[0] = true;
    let mut stack = vec![0usize];
    while let Some(b) = stack.pop() {
        for s in f.blocks[b].successors() {
            if !reach[s.index()] {
                reach[s.index()] = true;
                stack.push(s.index());
            }
        }
    }
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for b in (0..n).filter(|&b| reach[b]) {
        for s in f.blocks[b].successors() {
            preds[s.index()].push(b);
        }
    }
    let p = f.profile.as_mut().expect("checked above");
    for (b, r) in reach.iter().enumerate() {
        if !r {
            p.blocks[b] = 0.0;
        }
    }
    for _ in 0..n {
        let mut changed = false;
        for b in (0..n).filter(|&b| reach[b]) {
            let mut inflow = if b == 0 { p.entry } else { 0.0 };
            for &pr in &preds[b] {
                inflow += p.blocks[pr];
            }
            if p.blocks[b] > inflow {
                p.blocks[b] = inflow;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
}

fn transfer(inst: &Inst, state: &mut [Lat]) {
    if let Some(d) = inst.dst() {
        let v = match inst {
            Inst::Const { value, .. } => Lat::Const(*value),
            Inst::Copy { src, .. } => operand_lat(*src, state),
            Inst::Bin { op, a, b, .. } => match (operand_lat(*a, state), operand_lat(*b, state)) {
                (Lat::Const(ca), Lat::Const(cb)) => {
                    fold_bin(*op, ca, cb).map(Lat::Const).unwrap_or(Lat::Bottom)
                }
                (Lat::Top, _) | (_, Lat::Top) => Lat::Top,
                _ => Lat::Bottom,
            },
            Inst::Un { op, a, .. } => match operand_lat(*a, state) {
                Lat::Const(c) => fold_un(*op, c).map(Lat::Const).unwrap_or(Lat::Bottom),
                Lat::Top => Lat::Top,
                Lat::Bottom => Lat::Bottom,
            },
            // Loads, calls, frame addresses and allocas produce run-time
            // values.
            _ => Lat::Bottom,
        };
        state[d.index()] = v;
    }
}

fn operand_lat(op: Operand, state: &[Lat]) -> Lat {
    match op {
        Operand::Reg(r) => state[r.index()],
        Operand::Const(c) => Lat::Const(c),
    }
}

/// Truthiness matching the VM exactly: the raw 64-bit value is compared
/// with zero (`F64(+0.0)` is false, `F64(-0.0)` is true, addresses are
/// true).
fn const_truthy(c: ConstVal) -> bool {
    match c {
        ConstVal::I64(v) => v != 0,
        ConstVal::F64(b) => b.0 != 0,
        ConstVal::FuncAddr(_) | ConstVal::GlobalAddr(_) => true,
    }
}

/// Folds `a <op> b` when the result is expressible as a constant, matching
/// the VM's wrapping semantics. Division by zero is never folded (it must
/// trap at run time).
pub(crate) fn fold_bin(op: BinOp, a: ConstVal, b: ConstVal) -> Option<ConstVal> {
    use ConstVal::*;
    // Symbolic equality for addresses (distinct symbols never alias).
    match (op, a, b) {
        (BinOp::Eq, FuncAddr(x), FuncAddr(y)) => return Some(I64((x == y) as i64)),
        (BinOp::Ne, FuncAddr(x), FuncAddr(y)) => return Some(I64((x != y) as i64)),
        (BinOp::Eq, GlobalAddr(x), GlobalAddr(y)) => return Some(I64((x == y) as i64)),
        (BinOp::Ne, GlobalAddr(x), GlobalAddr(y)) => return Some(I64((x != y) as i64)),
        _ => {}
    }
    if op.is_float() {
        let (x, y) = match (a, b) {
            (F64(x), F64(y)) => (x.to_f64(), y.to_f64()),
            _ => return None,
        };
        return Some(match op {
            BinOp::FAdd => ConstVal::float(x + y),
            BinOp::FSub => ConstVal::float(x - y),
            BinOp::FMul => ConstVal::float(x * y),
            BinOp::FDiv => ConstVal::float(x / y),
            BinOp::FLt => I64((x < y) as i64),
            BinOp::FEq => I64((x == y) as i64),
            _ => unreachable!(),
        });
    }
    let (x, y) = match (a, b) {
        (I64(x), I64(y)) => (x, y),
        _ => return None,
    };
    Some(I64(match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => {
            if y == 0 {
                return None;
            }
            x.wrapping_div(y)
        }
        BinOp::Rem => {
            if y == 0 {
                return None;
            }
            x.wrapping_rem(y)
        }
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Shl => x.wrapping_shl((y & 63) as u32),
        BinOp::Shr => x.wrapping_shr((y & 63) as u32),
        BinOp::Eq => (x == y) as i64,
        BinOp::Ne => (x != y) as i64,
        BinOp::Lt => (x < y) as i64,
        BinOp::Le => (x <= y) as i64,
        BinOp::Gt => (x > y) as i64,
        BinOp::Ge => (x >= y) as i64,
        _ => unreachable!(),
    }))
}

pub(crate) fn fold_un(op: UnOp, a: ConstVal) -> Option<ConstVal> {
    use ConstVal::*;
    Some(match (op, a) {
        (UnOp::Neg, I64(x)) => I64(x.wrapping_neg()),
        (UnOp::Not, I64(x)) => I64(!x),
        (UnOp::FNeg, F64(b)) => ConstVal::float(-b.to_f64()),
        (UnOp::IToF, I64(x)) => ConstVal::float(x as f64),
        (UnOp::FToI, F64(b)) => {
            let v = b.to_f64();
            I64(if v.is_nan() { 0 } else { v as i64 })
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::{FuncId, FunctionBuilder, Linkage, ModuleId, Type};

    #[test]
    fn folds_straightline_arithmetic() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 0);
        let e = fb.entry_block();
        let a = fb.iconst(e, 6);
        let b = fb.iconst(e, 7);
        let p = fb.bin(e, BinOp::Mul, a.into(), b.into());
        fb.ret(e, Some(p.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        let st = propagate(&mut f);
        assert!(st.changed());
        match &f.blocks[0].insts[3] {
            Inst::Ret { value } => assert_eq!(*value, Some(Operand::imm(42))),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn folds_constant_branch() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 0);
        let e = fb.entry_block();
        let t = fb.new_block();
        let z = fb.new_block();
        let c = fb.iconst(e, 0);
        fb.br(e, c.into(), t, z);
        fb.ret(t, Some(Operand::imm(1)));
        fb.ret(z, Some(Operand::imm(2)));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        let st = propagate(&mut f);
        assert_eq!(st.branches_folded, 1);
        assert!(matches!(f.blocks[0].insts.last(), Some(Inst::Jump { target }) if *target == z));
    }

    #[test]
    fn folding_a_dead_loop_repairs_the_profile() {
        // while (0) { }: entry -> header; header -> body | exit on a
        // constant-false condition; body -> header. The static estimate
        // gives the header a looping count; once the branch folds, the
        // body is unreachable and the header must drop to its acyclic
        // inflow or the flow-conservation lint fires mid-pipeline.
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 0);
        let e = fb.entry_block();
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.jump(e, header);
        let c = fb.iconst(header, 0);
        fb.br(header, c.into(), body, exit);
        fb.jump(body, header);
        fb.ret(exit, None);
        let mut f = fb.finish(Linkage::Public, Type::Void);
        f.profile = Some(hlo_ir::FuncProfile {
            entry: 1.0,
            blocks: vec![1.0, 11.0, 10.0, 1.0],
        });
        let st = propagate(&mut f);
        assert_eq!(st.branches_folded, 1);
        let p = f.profile.as_ref().unwrap();
        assert_eq!(p.blocks, vec![1.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn promotes_indirect_call_with_known_target() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 0);
        let e = fb.entry_block();
        let fp = fb.const_(e, ConstVal::FuncAddr(FuncId(3)));
        let r = fb.call_indirect(e, fp.into(), vec![Operand::imm(1)]);
        fb.ret(e, Some(r.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        let st = propagate(&mut f);
        assert_eq!(st.indirect_promoted, 1);
        assert!(f.blocks[0].insts.iter().any(|i| matches!(
            i,
            Inst::Call {
                callee: Callee::Func(FuncId(3)),
                ..
            }
        )));
    }

    #[test]
    fn does_not_fold_div_by_zero() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 0);
        let e = fb.entry_block();
        let q = fb.bin(e, BinOp::Div, Operand::imm(1), Operand::imm(0));
        fb.ret(e, Some(q.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        propagate(&mut f);
        assert!(f.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Bin { op: BinOp::Div, .. })));
    }

    #[test]
    fn merges_over_join_points() {
        // r set to 5 on both arms -> use after join folds to 5.
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 1);
        let e = fb.entry_block();
        let a = fb.new_block();
        let b = fb.new_block();
        let j = fb.new_block();
        let r = fb.new_reg();
        fb.br(e, Operand::Reg(fb.param(0)), a, b);
        fb.copy_to(a, r, Operand::imm(5));
        fb.jump(a, j);
        fb.copy_to(b, r, Operand::imm(5));
        fb.jump(b, j);
        let s = fb.bin(j, BinOp::Add, r.into(), Operand::imm(1));
        fb.ret(j, Some(s.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        propagate(&mut f);
        match f.blocks[j.index()].insts.last().unwrap() {
            Inst::Ret { value } => assert_eq!(*value, Some(Operand::imm(6))),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn divergent_join_stays_runtime() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 1);
        let e = fb.entry_block();
        let a = fb.new_block();
        let b = fb.new_block();
        let j = fb.new_block();
        let r = fb.new_reg();
        fb.br(e, Operand::Reg(fb.param(0)), a, b);
        fb.copy_to(a, r, Operand::imm(5));
        fb.jump(a, j);
        fb.copy_to(b, r, Operand::imm(6));
        fb.jump(b, j);
        fb.ret(j, Some(r.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        propagate(&mut f);
        match f.blocks[j.index()].insts.last().unwrap() {
            Inst::Ret { value } => assert_eq!(*value, Some(Operand::Reg(r))),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn loop_carried_register_not_folded() {
        // i = 0; while (i < p) i = i + 1; ret i  -- i must stay Bottom.
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 1);
        let e = fb.entry_block();
        let h = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        let i = fb.new_reg();
        fb.copy_to(e, i, Operand::imm(0));
        fb.jump(e, h);
        let c = fb.bin(h, BinOp::Lt, i.into(), Operand::Reg(fb.param(0)));
        fb.br(h, c.into(), body, exit);
        let i1 = fb.bin(body, BinOp::Add, i.into(), Operand::imm(1));
        fb.copy_to(body, i, i1.into());
        fb.jump(body, h);
        fb.ret(exit, Some(i.into()));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        propagate(&mut f);
        match f.blocks[exit.index()].insts.last().unwrap() {
            Inst::Ret { value } => assert_eq!(*value, Some(Operand::Reg(i))),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn float_zero_truthiness_matches_vm() {
        assert!(!const_truthy(ConstVal::float(0.0)));
        assert!(const_truthy(ConstVal::float(-0.0)));
        assert!(const_truthy(ConstVal::FuncAddr(FuncId(0))));
    }

    #[test]
    fn fold_matches_vm_for_shift_masking() {
        // Shl with count 65 must behave like the VM (mask to 1).
        assert_eq!(
            fold_bin(BinOp::Shl, ConstVal::int(1), ConstVal::int(65)),
            Some(ConstVal::int(2))
        );
    }

    #[test]
    fn same_arm_branch_becomes_jump() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 1);
        let e = fb.entry_block();
        let t = fb.new_block();
        fb.br(e, Operand::Reg(fb.param(0)), t, t);
        fb.ret(t, None);
        let mut f = fb.finish(Linkage::Public, Type::Void);
        let st = propagate(&mut f);
        assert_eq!(st.branches_folded, 1);
    }
}
