//! Static block-frequency estimation.
//!
//! When no profile database is available, HLO "uses heuristics to guess at
//! the relative importance" of blocks (paper §2.3). We use the classic
//! loop-depth heuristic: a block at loop depth `d` is assumed to run
//! `10^min(d, 4)` times per function entry; unreachable blocks get zero.

use crate::{Dominators, LoopInfo};
use hlo_ir::{BlockId, FuncProfile, Function};

/// Per-entry frequency multiplier per loop level.
const LOOP_WEIGHT: f64 = 10.0;
/// Depth cap, to keep estimates bounded for pathological nests.
const MAX_DEPTH: u32 = 4;

/// Estimates a [`FuncProfile`] for `f` from loop structure alone.
///
/// The returned profile has `entry == 1.0`, so block values are *relative*
/// frequencies, directly comparable with the entry block the way the
/// paper's cold-site penalty requires.
pub fn estimate_static_profile(f: &Function) -> FuncProfile {
    let doms = Dominators::compute(f);
    let loops = LoopInfo::compute(f, &doms);
    let blocks = (0..f.blocks.len())
        .map(|i| {
            let b = BlockId(i as u32);
            if !doms.is_reachable(b) {
                0.0
            } else {
                LOOP_WEIGHT.powi(loops.depth(b).min(MAX_DEPTH) as i32)
            }
        })
        .collect();
    FuncProfile { entry: 1.0, blocks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::{FunctionBuilder, Linkage, ModuleId, Operand, Type};

    #[test]
    fn loop_bodies_are_hotter_than_entry() {
        let mut fb = FunctionBuilder::new("l", ModuleId(0), 1);
        let e = fb.entry_block();
        let h = fb.new_block();
        let exit = fb.new_block();
        fb.jump(e, h);
        fb.br(h, Operand::Reg(fb.param(0)), h, exit);
        fb.ret(exit, None);
        let f = fb.finish(Linkage::Public, Type::Void);
        let p = estimate_static_profile(&f);
        assert_eq!(p.entry, 1.0);
        assert_eq!(p.blocks[0], 1.0);
        assert_eq!(p.blocks[1], 10.0);
        assert_eq!(p.blocks[2], 1.0);
    }

    #[test]
    fn unreachable_blocks_are_cold() {
        let mut fb = FunctionBuilder::new("u", ModuleId(0), 0);
        let e = fb.entry_block();
        let dead = fb.new_block();
        fb.ret(e, None);
        fb.ret(dead, None);
        let f = fb.finish(Linkage::Public, Type::Void);
        let p = estimate_static_profile(&f);
        assert_eq!(p.blocks[dead.index()], 0.0);
    }

    #[test]
    fn depth_is_capped() {
        // Build a 6-deep nest; frequency must cap at LOOP_WEIGHT^4.
        let mut fb = FunctionBuilder::new("deep", ModuleId(0), 1);
        let c = Operand::Reg(fb.param(0));
        let mut headers = Vec::new();
        let entry = fb.entry_block();
        for _ in 0..6 {
            headers.push(fb.new_block());
        }
        let exit = fb.new_block();
        fb.jump(entry, headers[0]);
        for i in 0..6 {
            let next = if i + 1 < 6 {
                headers[i + 1]
            } else {
                headers[5]
            };
            let back = if i == 5 { headers[0] } else { exit };
            // innermost: self loop to headers[0] keeps all nested
            let _ = back;
            if i + 1 < 6 {
                fb.br(headers[i], c, next, exit);
            } else {
                fb.br(headers[i], c, headers[0], exit);
            }
        }
        fb.ret(exit, None);
        let f = fb.finish(Linkage::Public, Type::Void);
        let p = estimate_static_profile(&f);
        let max = p.blocks.iter().cloned().fold(0.0, f64::max);
        assert!(max <= LOOP_WEIGHT.powi(MAX_DEPTH as i32) + 1e-9);
    }
}
