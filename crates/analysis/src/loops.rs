//! Natural loops and nesting depth.

use crate::Dominators;
use hlo_ir::{BlockId, Function};

/// Natural-loop information for a function.
///
/// A back edge is an edge `t -> h` where `h` dominates `t`; the natural
/// loop of that edge is `h` plus everything that reaches `t` without going
/// through `h`. Depth is the number of distinct loop headers whose loop a
/// block belongs to — the quantity the static frequency heuristic raises to
/// a power.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopInfo {
    depth: Vec<u32>,
    headers: Vec<BlockId>,
}

impl LoopInfo {
    /// Computes loop nesting for `f` given its dominators.
    pub fn compute(f: &Function, doms: &Dominators) -> Self {
        let n = f.blocks.len();
        let preds = f.predecessors();
        let mut depth = vec![0u32; n];
        let mut headers = Vec::new();

        // Collect back edges.
        let mut back_edges: Vec<(BlockId, BlockId)> = Vec::new(); // (tail, header)
        for (bid, block) in f.iter_blocks() {
            if !doms.is_reachable(bid) {
                continue;
            }
            for s in block.successors() {
                if doms.dominates(s, bid) {
                    back_edges.push((bid, s));
                }
            }
        }

        // Group back edges by header so nested repeats of the same header
        // count once.
        back_edges.sort_by_key(|&(t, h)| (h.0, t.0));
        let mut i = 0;
        while i < back_edges.len() {
            let header = back_edges[i].1;
            let mut body = vec![false; n];
            body[header.index()] = true;
            let mut stack = Vec::new();
            while i < back_edges.len() && back_edges[i].1 == header {
                let tail = back_edges[i].0;
                if !body[tail.index()] {
                    body[tail.index()] = true;
                    stack.push(tail);
                }
                i += 1;
            }
            while let Some(b) = stack.pop() {
                for &p in &preds[b.index()] {
                    if doms.is_reachable(p) && !body[p.index()] {
                        body[p.index()] = true;
                        stack.push(p);
                    }
                }
            }
            headers.push(header);
            for (bi, in_body) in body.iter().enumerate() {
                if *in_body {
                    depth[bi] += 1;
                }
            }
        }

        LoopInfo { depth, headers }
    }

    /// Loop nesting depth of `b` (0 = not in any loop).
    pub fn depth(&self, b: BlockId) -> u32 {
        self.depth.get(b.index()).copied().unwrap_or(0)
    }

    /// All loop headers found.
    pub fn headers(&self) -> &[BlockId] {
        &self.headers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::{FunctionBuilder, Linkage, ModuleId, Operand, Type};

    /// Two nested loops:
    /// e -> h1; h1 -> {h2, exit}; h2 -> {body, h1back}; body -> h2
    fn nested() -> Function {
        let mut fb = FunctionBuilder::new("n", ModuleId(0), 1);
        let e = fb.entry_block();
        let h1 = fb.new_block();
        let h2 = fb.new_block();
        let body = fb.new_block();
        let latch1 = fb.new_block();
        let exit = fb.new_block();
        let c = Operand::Reg(fb.param(0));
        fb.jump(e, h1);
        fb.br(h1, c, h2, exit);
        fb.br(h2, c, body, latch1);
        fb.jump(body, h2);
        fb.jump(latch1, h1);
        fb.ret(exit, None);
        fb.finish(Linkage::Public, Type::Void)
    }

    #[test]
    fn nested_loop_depths() {
        let f = nested();
        let d = Dominators::compute(&f);
        let li = LoopInfo::compute(&f, &d);
        assert_eq!(li.depth(hlo_ir::BlockId(0)), 0); // entry
        assert_eq!(li.depth(hlo_ir::BlockId(1)), 1); // h1
        assert_eq!(li.depth(hlo_ir::BlockId(2)), 2); // h2
        assert_eq!(li.depth(hlo_ir::BlockId(3)), 2); // body
        assert_eq!(li.depth(hlo_ir::BlockId(4)), 1); // latch1
        assert_eq!(li.depth(hlo_ir::BlockId(5)), 0); // exit
        assert_eq!(li.headers().len(), 2);
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut fb = FunctionBuilder::new("s", ModuleId(0), 0);
        let e = fb.entry_block();
        fb.ret(e, None);
        let f = fb.finish(Linkage::Public, Type::Void);
        let d = Dominators::compute(&f);
        let li = LoopInfo::compute(&f, &d);
        assert_eq!(li.depth(hlo_ir::BlockId(0)), 0);
        assert!(li.headers().is_empty());
    }

    #[test]
    fn self_loop_depth_one() {
        let mut fb = FunctionBuilder::new("s", ModuleId(0), 1);
        let e = fb.entry_block();
        let l = fb.new_block();
        let exit = fb.new_block();
        fb.jump(e, l);
        fb.br(l, Operand::Reg(fb.param(0)), l, exit);
        fb.ret(exit, None);
        let f = fb.finish(Linkage::Public, Type::Void);
        let d = Dominators::compute(&f);
        let li = LoopInfo::compute(&f, &d);
        assert_eq!(li.depth(l), 1);
        assert_eq!(li.depth(exit), 0);
    }
}
