//! Function reachability, used by the optimizer's routine-deletion step.

use crate::CallGraph;
use hlo_ir::{FuncId, Linkage, Program};

/// Computes which functions are reachable.
///
/// Roots are: the program entry, every `Public` function (it could be
/// called by code outside the program, as on the paper's per-module path),
/// and every address-taken function. When `statics_only_roots` is true,
/// public functions other than the entry are *not* roots — this models the
/// link-time path where the whole program is visible and only `main` is an
/// external entry; it is what lets HLO delete fully-inlined file-scope and
/// public routines alike after cross-module optimization.
pub fn reachable_funcs(p: &Program, cg: &CallGraph, statics_only_roots: bool) -> Vec<bool> {
    let n = p.funcs.len();
    let mut reachable = vec![false; n];
    let mut work: Vec<FuncId> = Vec::new();

    let push = |f: FuncId, reachable: &mut Vec<bool>, work: &mut Vec<FuncId>| {
        if !reachable[f.index()] {
            reachable[f.index()] = true;
            work.push(f);
        }
    };

    if let Some(e) = p.entry {
        push(e, &mut reachable, &mut work);
    }
    for (id, f) in p.iter_funcs() {
        let is_root =
            (!statics_only_roots && f.linkage == Linkage::Public) || cg.address_taken[id.index()];
        if is_root {
            push(id, &mut reachable, &mut work);
        }
    }
    while let Some(f) = work.pop() {
        for &e in &cg.callees_of[f.index()] {
            let t = cg.edges[e].callee;
            if !reachable[t.index()] {
                reachable[t.index()] = true;
                work.push(t);
            }
        }
    }
    reachable
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::{FunctionBuilder, ProgramBuilder, Type};

    /// main -> a; b unreferenced (public); c unreferenced (static).
    fn program() -> Program {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut main = FunctionBuilder::new("main", m, 0);
        let e = main.entry_block();
        main.call_void(e, FuncId(1), vec![]);
        main.ret(e, None);
        pb.add_function(main.finish(Linkage::Public, Type::Void));
        for (name, link) in [
            ("a", Linkage::Static),
            ("b", Linkage::Public),
            ("c", Linkage::Static),
        ] {
            let mut f = FunctionBuilder::new(name, m, 0);
            let e = f.entry_block();
            f.ret(e, None);
            pb.add_function(f.finish(link, Type::Void));
        }
        pb.finish(Some(FuncId(0)))
    }

    #[test]
    fn per_module_keeps_public_roots() {
        let p = program();
        let cg = CallGraph::build(&p);
        let r = reachable_funcs(&p, &cg, false);
        assert_eq!(r, vec![true, true, true, false]);
    }

    #[test]
    fn whole_program_deletes_unused_public() {
        let p = program();
        let cg = CallGraph::build(&p);
        let r = reachable_funcs(&p, &cg, true);
        assert_eq!(r, vec![true, true, false, false]);
    }

    #[test]
    fn address_taken_is_always_a_root() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut main = FunctionBuilder::new("main", m, 0);
        let e = main.entry_block();
        let _fp = main.const_(e, hlo_ir::ConstVal::FuncAddr(FuncId(1)));
        main.ret(e, None);
        pb.add_function(main.finish(Linkage::Public, Type::Void));
        let mut t = FunctionBuilder::new("t", m, 0);
        let e = t.entry_block();
        t.ret(e, None);
        pb.add_function(t.finish(Linkage::Static, Type::Void));
        let p = pb.finish(Some(FuncId(0)));
        let cg = CallGraph::build(&p);
        let r = reachable_funcs(&p, &cg, true);
        assert_eq!(r, vec![true, true]);
    }
}
