//! Call graph construction and strongly connected components.

use hlo_ir::{BlockId, Callee, ConstVal, FuncId, Inst, Operand, Program};

/// Names a particular call instruction: function, block, instruction index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CallSiteRef {
    /// The calling function.
    pub caller: FuncId,
    /// Block containing the call.
    pub block: BlockId,
    /// Index of the call within the block.
    pub inst: usize,
}

/// A direct call edge in the call graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallEdge {
    /// Where the call happens.
    pub site: CallSiteRef,
    /// The function called.
    pub callee: FuncId,
}

/// One weakly connected component of the call graph — an independent
/// optimization region for the parallel inline/clone planner (see
/// [`CallGraph::partitions`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallGraphPartition {
    /// Member functions, ascending. Singleton partitions (functions with
    /// no direct-call edges at all) are included.
    pub funcs: Vec<FuncId>,
    /// Indices into [`CallGraph::edges`] of every edge inside this
    /// partition, ascending.
    pub edge_indices: Vec<usize>,
}

/// The program call graph.
///
/// Only *direct* calls form edges; indirect and external sites are recorded
/// separately (they cannot be inlined or cloned directly, Figure 5).
/// Functions whose address is taken anywhere are flagged: they stay alive
/// during unreachable-routine deletion and keep their original entry when
/// cloned.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// All direct edges, in deterministic program order.
    pub edges: Vec<CallEdge>,
    /// For each function: indices into `edges` of calls *out of* it.
    pub callees_of: Vec<Vec<usize>>,
    /// For each function: indices into `edges` of calls *into* it.
    pub callers_of: Vec<Vec<usize>>,
    /// Indirect call sites (callee computed at run time).
    pub indirect_sites: Vec<CallSiteRef>,
    /// Calls to external routines.
    pub extern_sites: Vec<CallSiteRef>,
    /// Whether each function has its address taken by a `FuncAddr` constant.
    pub address_taken: Vec<bool>,
    /// Whether each function *takes* some function's address (its body
    /// contains a `FuncAddr` constant).
    pub address_takers: Vec<bool>,
}

/// The call-relevant facts of a single function body: its direct call
/// edges, indirect/external sites, and the functions whose address it
/// takes. This is the unit of incremental invalidation in
/// [`CallGraphCache`] — editing one function only requires re-scanning
/// this, not the whole program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuncScan {
    /// Direct call edges out of this function, in instruction order.
    pub direct: Vec<CallEdge>,
    /// Indirect call sites in this function.
    pub indirect: Vec<CallSiteRef>,
    /// External call sites in this function.
    pub externs: Vec<CallSiteRef>,
    /// Functions whose address this body takes via `FuncAddr` constants.
    pub takes_address_of: Vec<FuncId>,
}

/// Scans one function body for the facts [`CallGraph::build`] needs.
pub fn scan_function(caller: FuncId, f: &hlo_ir::Function) -> FuncScan {
    let mut scan = FuncScan::default();
    for (bid, block) in f.iter_blocks() {
        for (idx, inst) in block.insts.iter().enumerate() {
            let mut note_const = |c: ConstVal| {
                if let ConstVal::FuncAddr(t) = c {
                    scan.takes_address_of.push(t);
                }
            };
            if let Inst::Const { value, .. } = inst {
                note_const(*value);
            }
            inst.for_each_use(|op| {
                if let Operand::Const(c) = op {
                    note_const(*c);
                }
            });
            if let Inst::Call { callee, .. } = inst {
                let site = CallSiteRef {
                    caller,
                    block: bid,
                    inst: idx,
                };
                match callee {
                    Callee::Func(t) => scan.direct.push(CallEdge { site, callee: *t }),
                    Callee::Extern(_) => scan.externs.push(site),
                    Callee::Indirect(_) => scan.indirect.push(site),
                }
            }
        }
    }
    scan
}

/// Assembles a [`CallGraph`] from per-function scans, in function order.
/// `CallGraph::build` and [`CallGraphCache`] both go through this, so a
/// cached graph is byte-identical to a fresh build.
fn assemble(scans: &[FuncScan]) -> CallGraph {
    let n = scans.len();
    let mut edges = Vec::new();
    let mut callees_of = vec![Vec::new(); n];
    let mut callers_of = vec![Vec::new(); n];
    let mut indirect_sites = Vec::new();
    let mut extern_sites = Vec::new();
    let mut address_taken = vec![false; n];
    let mut address_takers = vec![false; n];
    for (fi, scan) in scans.iter().enumerate() {
        for edge in &scan.direct {
            let ei = edges.len();
            edges.push(*edge);
            callees_of[fi].push(ei);
            callers_of[edge.callee.index()].push(ei);
        }
        indirect_sites.extend_from_slice(&scan.indirect);
        extern_sites.extend_from_slice(&scan.externs);
        for &t in &scan.takes_address_of {
            address_taken[t.index()] = true;
            address_takers[fi] = true;
        }
    }
    CallGraph {
        edges,
        callees_of,
        callers_of,
        indirect_sites,
        extern_sites,
        address_taken,
        address_takers,
    }
}

impl CallGraph {
    /// Builds the call graph of `p`.
    pub fn build(p: &Program) -> Self {
        let scans: Vec<FuncScan> = p
            .iter_funcs()
            .map(|(caller, f)| scan_function(caller, f))
            .collect();
        assemble(&scans)
    }

    /// Assembles a graph from per-function scans (the
    /// [`crate::CallGraphCache`] fast path; same code as `build`).
    pub(crate) fn assemble_from_scans(scans: &[FuncScan]) -> Self {
        assemble(scans)
    }

    /// Number of functions covered.
    pub fn num_funcs(&self) -> usize {
        self.callees_of.len()
    }

    /// Strongly connected components in *reverse topological order*:
    /// callees appear before callers, which is exactly the bottom-up order
    /// the paper's inline scheduler works in.
    pub fn sccs(&self) -> Vec<Vec<FuncId>> {
        // Iterative Tarjan to avoid recursion limits on deep call chains.
        let n = self.num_funcs();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut sccs = Vec::new();
        let mut counter = 0usize;

        #[derive(Clone, Copy)]
        struct Frame {
            v: usize,
            edge_pos: usize,
        }

        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            let mut call_stack = vec![Frame {
                v: start,
                edge_pos: 0,
            }];
            index[start] = counter;
            low[start] = counter;
            counter += 1;
            stack.push(start);
            on_stack[start] = true;

            while let Some(frame) = call_stack.last_mut() {
                let v = frame.v;
                let succs = &self.callees_of[v];
                if frame.edge_pos < succs.len() {
                    let w = self.edges[succs[frame.edge_pos]].callee.index();
                    frame.edge_pos += 1;
                    if index[w] == usize::MAX {
                        index[w] = counter;
                        low[w] = counter;
                        counter += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call_stack.push(Frame { v: w, edge_pos: 0 });
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    call_stack.pop();
                    if let Some(parent) = call_stack.last() {
                        low[parent.v] = low[parent.v].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp.push(FuncId(w as u32));
                            if w == v {
                                break;
                            }
                        }
                        comp.sort();
                        sccs.push(comp);
                    }
                }
            }
        }
        sccs
    }

    /// Partitions the program into independent optimization regions: the
    /// weakly connected components of the SCC condensation of the direct
    /// call graph (equivalently, of the graph itself — condensing cycles
    /// never merges or splits weak components). No direct-call edge
    /// crosses a partition boundary, so inline/clone decisions inside one
    /// partition cannot affect any other: the HLO driver plans partitions
    /// concurrently and the result is independent of the worker count.
    ///
    /// Partitions are returned in ascending order of their smallest
    /// member `FuncId`; members and edge indices are ascending too, so
    /// the decomposition is deterministic.
    pub fn partitions(&self) -> Vec<CallGraphPartition> {
        let n = self.num_funcs();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]]; // path halving
                x = parent[x];
            }
            x
        }
        for e in &self.edges {
            let a = find(&mut parent, e.site.caller.index());
            let b = find(&mut parent, e.callee.index());
            if a != b {
                // Union by smaller root id keeps roots == smallest member.
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                parent[hi] = lo;
            }
        }
        let mut index_of_root = vec![usize::MAX; n];
        let mut parts: Vec<CallGraphPartition> = Vec::new();
        for f in 0..n {
            let r = find(&mut parent, f);
            if index_of_root[r] == usize::MAX {
                index_of_root[r] = parts.len();
                parts.push(CallGraphPartition::default());
            }
            parts[index_of_root[r]].funcs.push(FuncId(f as u32));
        }
        for (ei, e) in self.edges.iter().enumerate() {
            let r = find(&mut parent, e.site.caller.index());
            parts[index_of_root[r]].edge_indices.push(ei);
        }
        parts
    }

    /// Partitions the program into **cache partitions**: the unit of
    /// function-grain result reuse in the incremental daemon. These are
    /// the [`CallGraph::partitions`] weak components, except that every
    /// component touching the *indirect-call environment* — a component
    /// containing an indirect call site, an address-taken function, or a
    /// function whose body takes an address — is merged into a single
    /// **island**. Optimization may promote an indirect site to a direct
    /// call of any address-taken function (and cloning an address-taking
    /// caller may rename the taken target), so those components can
    /// observe each other; keeping them in one partition makes each
    /// partition's optimized output a pure function of its own members.
    ///
    /// Same ordering guarantees as [`CallGraph::partitions`]: partitions
    /// ascend by smallest member id, members and edges ascend within.
    pub fn cache_partitions(&self) -> Vec<CallGraphPartition> {
        let n = self.num_funcs();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        fn union(parent: &mut [usize], a: usize, b: usize) {
            let a = find(parent, a);
            let b = find(parent, b);
            if a != b {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                parent[hi] = lo;
            }
        }
        for e in &self.edges {
            union(&mut parent, e.site.caller.index(), e.callee.index());
        }
        // Merge the indirect-call island.
        let mut island: Option<usize> = None;
        let mut join = |parent: &mut [usize], f: usize| match island {
            None => island = Some(f),
            Some(anchor) => union(parent, anchor, f),
        };
        for s in &self.indirect_sites {
            join(&mut parent, s.caller.index());
        }
        for f in 0..n {
            if self.address_taken[f] || self.address_takers[f] {
                join(&mut parent, f);
            }
        }
        let mut index_of_root = vec![usize::MAX; n];
        let mut parts: Vec<CallGraphPartition> = Vec::new();
        for f in 0..n {
            let r = find(&mut parent, f);
            if index_of_root[r] == usize::MAX {
                index_of_root[r] = parts.len();
                parts.push(CallGraphPartition::default());
            }
            parts[index_of_root[r]].funcs.push(FuncId(f as u32));
        }
        for (ei, e) in self.edges.iter().enumerate() {
            let r = find(&mut parent, e.site.caller.index());
            parts[index_of_root[r]].edge_indices.push(ei);
        }
        parts
    }

    /// Combines per-function content hashes into **cone hashes**: the hash
    /// of everything inlining into `f` could possibly read — `f`'s own
    /// content plus, transitively, every function reachable from `f`
    /// through direct calls (its *inline-reachable cone*). Two programs
    /// assign a function equal cone hashes exactly when the function and
    /// its whole cone are textually identical, which is what lets a result
    /// cache invalidate only the dependence cone of an edit: callers of a
    /// changed function change, untouched siblings do not.
    ///
    /// Cycles are handled by SCC condensation (every member of a recursive
    /// component shares the component's combined hash). Functions whose
    /// cone contains an **indirect** call site additionally absorb a hash
    /// of every address-taken function's cone — an indirect site can reach
    /// any of them, so all of them must invalidate it. Extern callees are
    /// fixed by the runtime and contribute only through the call site text
    /// already covered by `own`.
    ///
    /// `own[i]` is the content hash of function `i` (normally
    /// [`hlo_ir::hash_function`]).
    ///
    /// # Panics
    /// Panics if `own.len()` differs from the number of functions.
    pub fn cone_hashes(&self, own: &[u64]) -> Vec<u64> {
        assert_eq!(own.len(), self.num_funcs(), "one hash per function");
        let n = self.num_funcs();
        let sccs = self.sccs(); // reverse topological: callees first
        let mut scc_of = vec![usize::MAX; n];
        for (si, comp) in sccs.iter().enumerate() {
            for &f in comp {
                scc_of[f.index()] = si;
            }
        }
        let mut has_indirect = vec![false; n];
        for s in &self.indirect_sites {
            has_indirect[s.caller.index()] = true;
        }

        // Pass 1 (callees before callers): per-SCC combined hash over the
        // members and their external callee SCCs, plus whether the cone
        // transitively contains an indirect site.
        let mut scc_hash = vec![0u64; sccs.len()];
        let mut scc_indirect = vec![false; sccs.len()];
        for (si, comp) in sccs.iter().enumerate() {
            let mut callee_sccs: Vec<usize> = Vec::new();
            let mut indirect = false;
            let mut h = hlo_ir::Fnv64::new();
            for &f in comp {
                // Members are sorted ascending, so this is deterministic.
                h.write_u64(own[f.index()]);
                indirect |= has_indirect[f.index()];
                for &e in &self.callees_of[f.index()] {
                    let cs = scc_of[self.edges[e].callee.index()];
                    if cs != si {
                        callee_sccs.push(cs);
                    }
                }
            }
            callee_sccs.sort_unstable();
            callee_sccs.dedup();
            for cs in callee_sccs {
                h.write_u64(scc_hash[cs]);
                indirect |= scc_indirect[cs];
            }
            scc_hash[si] = h.finish();
            scc_indirect[si] = indirect;
        }

        // A function's direct cone hash: its own content plus its SCC's
        // combined cone (which already includes `own[f]`, but mixing it
        // again keeps members of one SCC distinguishable).
        let direct: Vec<u64> = (0..n)
            .map(|f| {
                let mut h = hlo_ir::Fnv64::new();
                h.write_u64(own[f]).write_u64(scc_hash[scc_of[f]]);
                h.finish()
            })
            .collect();

        // Pass 2: one environment hash over every address-taken function's
        // direct cone; any cone containing an indirect site absorbs it.
        let mut env = hlo_ir::Fnv64::new();
        env.write(b"indirect-env");
        for (f, &d) in direct.iter().enumerate() {
            if self.address_taken[f] {
                env.write_u64(d);
            }
        }
        let env = env.finish();
        (0..n)
            .map(|f| {
                if scc_indirect[scc_of[f]] {
                    let mut h = hlo_ir::Fnv64::new();
                    h.write_u64(direct[f]).write_u64(env);
                    h.finish()
                } else {
                    direct[f]
                }
            })
            .collect()
    }

    /// Whether `f` participates in recursion: a self edge or a nontrivial
    /// SCC. Computed from a supplied SCC decomposition to avoid rebuilding.
    pub fn in_recursion(&self, sccs: &[Vec<FuncId>], f: FuncId) -> bool {
        for comp in sccs {
            if comp.contains(&f) {
                if comp.len() > 1 {
                    return true;
                }
                // self loop?
                return self.callees_of[f.index()]
                    .iter()
                    .any(|&e| self.edges[e].callee == f);
            }
        }
        false
    }
}

/// For each function, the index of its partition within `parts` (which
/// must cover all `n` functions, as both [`CallGraph::partitions`] and
/// [`CallGraph::cache_partitions`] guarantee).
pub fn partition_index_map(parts: &[CallGraphPartition], n: usize) -> Vec<usize> {
    let mut map = vec![usize::MAX; n];
    for (pi, part) in parts.iter().enumerate() {
        for &f in &part.funcs {
            map[f.index()] = pi;
        }
    }
    debug_assert!(map.iter().all(|&pi| pi != usize::MAX));
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::{FunctionBuilder, Linkage, ModuleId, Operand, ProgramBuilder, Type};

    /// Builds: main -> a -> b -> a (cycle), main -> c, c address-taken by main.
    fn program() -> Program {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        // placeholder ids: we add in order main=0, a=1, b=2, c=3
        let mut main = FunctionBuilder::new("main", m, 0);
        let e = main.entry_block();
        main.call_void(e, FuncId(1), vec![]);
        main.call_void(e, FuncId(3), vec![]);
        let fp = main.const_(e, ConstVal::FuncAddr(FuncId(3)));
        main.call_indirect(e, fp.into(), vec![]);
        main.ret(e, None);
        pb.add_function(main.finish(Linkage::Public, Type::Void));

        let mut a = FunctionBuilder::new("a", m, 0);
        let e = a.entry_block();
        a.call_void(e, FuncId(2), vec![]);
        a.ret(e, None);
        pb.add_function(a.finish(Linkage::Public, Type::Void));

        let mut b = FunctionBuilder::new("b", m, 0);
        let e = b.entry_block();
        b.call_void(e, FuncId(1), vec![]);
        b.ret(e, None);
        pb.add_function(b.finish(Linkage::Public, Type::Void));

        let mut c = FunctionBuilder::new("c", m, 0);
        let e = c.entry_block();
        c.ret(e, None);
        pb.add_function(c.finish(Linkage::Public, Type::Void));

        pb.finish(Some(FuncId(0)))
    }

    #[test]
    fn builds_edges_and_sites() {
        let p = program();
        let cg = CallGraph::build(&p);
        assert_eq!(cg.edges.len(), 4); // main->a, main->c, a->b, b->a
        assert_eq!(cg.indirect_sites.len(), 1);
        assert!(cg.extern_sites.is_empty());
        assert!(cg.address_taken[3]);
        assert!(!cg.address_taken[1]);
        assert_eq!(cg.callers_of[1].len(), 2); // from main and from b
    }

    #[test]
    fn sccs_are_bottom_up() {
        let p = program();
        let cg = CallGraph::build(&p);
        let sccs = cg.sccs();
        // {a, b} must be one component; main must come after it.
        let ab_pos = sccs
            .iter()
            .position(|c| c.contains(&FuncId(1)))
            .expect("a in some scc");
        let main_pos = sccs
            .iter()
            .position(|c| c.contains(&FuncId(0)))
            .expect("main in some scc");
        assert_eq!(sccs[ab_pos], vec![FuncId(1), FuncId(2)]);
        assert!(ab_pos < main_pos, "callees before callers");
    }

    #[test]
    fn recursion_detection() {
        let p = program();
        let cg = CallGraph::build(&p);
        let sccs = cg.sccs();
        assert!(cg.in_recursion(&sccs, FuncId(1)));
        assert!(cg.in_recursion(&sccs, FuncId(2)));
        assert!(!cg.in_recursion(&sccs, FuncId(0)));
        assert!(!cg.in_recursion(&sccs, FuncId(3)));
    }

    #[test]
    fn self_loop_counts_as_recursion() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut f = FunctionBuilder::new("f", m, 0);
        let e = f.entry_block();
        f.call_void(e, FuncId(0), vec![]);
        f.ret(e, None);
        pb.add_function(f.finish(Linkage::Public, Type::Void));
        let p = pb.finish(Some(FuncId(0)));
        let cg = CallGraph::build(&p);
        let sccs = cg.sccs();
        assert!(cg.in_recursion(&sccs, FuncId(0)));
    }

    use hlo_ir::ConstVal;
    #[allow(unused_imports)]
    use hlo_ir::Reg;

    #[test]
    fn empty_program() {
        let p = Program::new();
        let cg = CallGraph::build(&p);
        assert!(cg.sccs().is_empty());
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 10_000-deep call chain exercises the iterative Tarjan.
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let n = 10_000u32;
        for i in 0..n {
            let mut f = FunctionBuilder::new(format!("f{i}"), m, 0);
            let e = f.entry_block();
            if i + 1 < n {
                f.call_void(e, FuncId(i + 1), vec![]);
            }
            f.ret(e, None);
            pb.add_function(f.finish(Linkage::Public, Type::Void));
        }
        let p = pb.finish(Some(FuncId(0)));
        let cg = CallGraph::build(&p);
        let sccs = cg.sccs();
        assert_eq!(sccs.len(), n as usize);
        // bottom-up: the leaf (last function) first
        assert_eq!(sccs[0], vec![FuncId(n - 1)]);
    }

    #[test]
    fn partitions_split_weak_components() {
        // Two islands: {main, a, b, c} (main->a->b->a, main->c direct and
        // indirect) and two isolated helpers {d}, {e} with d->e.
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let base = program(); // main=0,a=1,b=2,c=3
        let mut p = base;
        let mut d = FunctionBuilder::new("d", m, 0);
        let e = d.entry_block();
        d.call_void(e, FuncId(5), vec![]);
        d.ret(e, None);
        let did = FuncId(p.funcs.len() as u32);
        p.funcs.push(d.finish(Linkage::Public, Type::Void));
        p.modules[0].funcs.push(did);
        let mut ef = FunctionBuilder::new("e", m, 0);
        let b = ef.entry_block();
        ef.ret(b, None);
        let eid = FuncId(p.funcs.len() as u32);
        p.funcs.push(ef.finish(Linkage::Public, Type::Void));
        p.modules[0].funcs.push(eid);
        let _ = pb;

        let cg = CallGraph::build(&p);
        let parts = cg.partitions();
        assert_eq!(parts.len(), 2);
        assert_eq!(
            parts[0].funcs,
            vec![FuncId(0), FuncId(1), FuncId(2), FuncId(3)]
        );
        assert_eq!(parts[1].funcs, vec![FuncId(4), FuncId(5)]);
        // Every edge is inside exactly one partition.
        let total: usize = parts.iter().map(|q| q.edge_indices.len()).sum();
        assert_eq!(total, cg.edges.len());
        for part in &parts {
            for &ei in &part.edge_indices {
                let e = cg.edges[ei];
                assert!(part.funcs.contains(&e.site.caller));
                assert!(part.funcs.contains(&e.callee));
            }
        }
    }

    #[test]
    fn every_function_lands_in_exactly_one_partition() {
        let p = program();
        let cg = CallGraph::build(&p);
        let parts = cg.partitions();
        let mut seen: Vec<FuncId> = parts.iter().flat_map(|q| q.funcs.clone()).collect();
        seen.sort();
        assert_eq!(seen.len(), p.funcs.len());
        seen.dedup();
        assert_eq!(seen.len(), p.funcs.len());
    }

    /// Three islands with no address/indirect traffic: cache partitions
    /// coincide with the plain weak components.
    #[test]
    fn cache_partitions_match_partitions_without_indirection() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        for i in 0..3u32 {
            let mut caller = FunctionBuilder::new(format!("c{i}"), m, 0);
            let e = caller.entry_block();
            caller.call_void(e, FuncId(i * 2 + 1), vec![]);
            caller.ret(e, None);
            pb.add_function(caller.finish(Linkage::Public, Type::Void));
            let mut leaf = FunctionBuilder::new(format!("l{i}"), m, 0);
            let e = leaf.entry_block();
            leaf.ret(e, None);
            pb.add_function(leaf.finish(Linkage::Public, Type::Void));
        }
        let p = pb.finish(Some(FuncId(0)));
        let cg = CallGraph::build(&p);
        assert_eq!(cg.cache_partitions(), cg.partitions());
        assert_eq!(cg.cache_partitions().len(), 3);
    }

    /// The base `program()` has an indirect site in main and c's address
    /// taken — both already inside main's weak component. An unrelated
    /// function `t` that takes an address joins that island; a genuinely
    /// disconnected pure pair {d, e} stays its own partition.
    #[test]
    fn cache_partitions_merge_indirect_island() {
        let mut p = program(); // main=0, a=1, b=2, c=3 (c address-taken)
        let m = p.funcs[0].module;
        // t (id 4): takes a's address, otherwise disconnected.
        let mut t = FunctionBuilder::new("t", m, 0);
        let e = t.entry_block();
        let _ = t.const_(e, ConstVal::FuncAddr(FuncId(1)));
        t.ret(e, None);
        let tid = FuncId(p.funcs.len() as u32);
        p.funcs.push(t.finish(Linkage::Public, Type::Void));
        p.modules[0].funcs.push(tid);
        // d (id 5) -> e (id 6): pure direct pair, stays separate.
        let mut d = FunctionBuilder::new("d", m, 0);
        let e = d.entry_block();
        d.call_void(e, FuncId(6), vec![]);
        d.ret(e, None);
        let did = FuncId(p.funcs.len() as u32);
        p.funcs.push(d.finish(Linkage::Public, Type::Void));
        p.modules[0].funcs.push(did);
        let mut ef = FunctionBuilder::new("e", m, 0);
        let b = ef.entry_block();
        ef.ret(b, None);
        let eid = FuncId(p.funcs.len() as u32);
        p.funcs.push(ef.finish(Linkage::Public, Type::Void));
        p.modules[0].funcs.push(eid);

        let cg = CallGraph::build(&p);
        assert!(cg.address_takers[0], "main takes c's address");
        assert!(cg.address_takers[4], "t takes a's address");
        let parts = cg.cache_partitions();
        assert_eq!(parts.len(), 2);
        assert_eq!(
            parts[0].funcs,
            vec![FuncId(0), FuncId(1), FuncId(2), FuncId(3), FuncId(4)]
        );
        assert_eq!(parts[1].funcs, vec![FuncId(5), FuncId(6)]);
        // Plain partitions keep t separate (no direct edges touch it).
        assert_eq!(cg.partitions().len(), 3);
        // Edges are all accounted for.
        let total: usize = parts.iter().map(|q| q.edge_indices.len()).sum();
        assert_eq!(total, cg.edges.len());
    }

    #[test]
    fn partition_index_map_covers_every_function() {
        let p = program();
        let cg = CallGraph::build(&p);
        let parts = cg.cache_partitions();
        let map = partition_index_map(&parts, p.funcs.len());
        for (f, &pi) in map.iter().enumerate() {
            assert!(parts[pi].funcs.contains(&FuncId(f as u32)));
        }
    }

    #[allow(unused)]
    fn _use_module_id(_: ModuleId, _: Operand) {}
}
