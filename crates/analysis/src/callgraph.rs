//! Call graph construction and strongly connected components.

use hlo_ir::{BlockId, Callee, ConstVal, FuncId, Inst, Operand, Program};

/// Names a particular call instruction: function, block, instruction index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CallSiteRef {
    /// The calling function.
    pub caller: FuncId,
    /// Block containing the call.
    pub block: BlockId,
    /// Index of the call within the block.
    pub inst: usize,
}

/// A direct call edge in the call graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallEdge {
    /// Where the call happens.
    pub site: CallSiteRef,
    /// The function called.
    pub callee: FuncId,
}

/// The program call graph.
///
/// Only *direct* calls form edges; indirect and external sites are recorded
/// separately (they cannot be inlined or cloned directly, Figure 5).
/// Functions whose address is taken anywhere are flagged: they stay alive
/// during unreachable-routine deletion and keep their original entry when
/// cloned.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// All direct edges, in deterministic program order.
    pub edges: Vec<CallEdge>,
    /// For each function: indices into `edges` of calls *out of* it.
    pub callees_of: Vec<Vec<usize>>,
    /// For each function: indices into `edges` of calls *into* it.
    pub callers_of: Vec<Vec<usize>>,
    /// Indirect call sites (callee computed at run time).
    pub indirect_sites: Vec<CallSiteRef>,
    /// Calls to external routines.
    pub extern_sites: Vec<CallSiteRef>,
    /// Whether each function has its address taken by a `FuncAddr` constant.
    pub address_taken: Vec<bool>,
}

impl CallGraph {
    /// Builds the call graph of `p`.
    pub fn build(p: &Program) -> Self {
        let n = p.funcs.len();
        let mut edges = Vec::new();
        let mut callees_of = vec![Vec::new(); n];
        let mut callers_of = vec![Vec::new(); n];
        let mut indirect_sites = Vec::new();
        let mut extern_sites = Vec::new();
        let mut address_taken = vec![false; n];

        for (caller, f) in p.iter_funcs() {
            for (bid, block) in f.iter_blocks() {
                for (idx, inst) in block.insts.iter().enumerate() {
                    let mut note_const = |c: ConstVal| {
                        if let ConstVal::FuncAddr(t) = c {
                            address_taken[t.index()] = true;
                        }
                    };
                    if let Inst::Const { value, .. } = inst {
                        note_const(*value);
                    }
                    inst.for_each_use(|op| {
                        if let Operand::Const(c) = op {
                            note_const(*c);
                        }
                    });
                    if let Inst::Call { callee, .. } = inst {
                        let site = CallSiteRef {
                            caller,
                            block: bid,
                            inst: idx,
                        };
                        match callee {
                            Callee::Func(t) => {
                                let ei = edges.len();
                                edges.push(CallEdge { site, callee: *t });
                                callees_of[caller.index()].push(ei);
                                callers_of[t.index()].push(ei);
                            }
                            Callee::Extern(_) => extern_sites.push(site),
                            Callee::Indirect(_) => indirect_sites.push(site),
                        }
                    }
                }
            }
        }

        CallGraph {
            edges,
            callees_of,
            callers_of,
            indirect_sites,
            extern_sites,
            address_taken,
        }
    }

    /// Number of functions covered.
    pub fn num_funcs(&self) -> usize {
        self.callees_of.len()
    }

    /// Strongly connected components in *reverse topological order*:
    /// callees appear before callers, which is exactly the bottom-up order
    /// the paper's inline scheduler works in.
    pub fn sccs(&self) -> Vec<Vec<FuncId>> {
        // Iterative Tarjan to avoid recursion limits on deep call chains.
        let n = self.num_funcs();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut sccs = Vec::new();
        let mut counter = 0usize;

        #[derive(Clone, Copy)]
        struct Frame {
            v: usize,
            edge_pos: usize,
        }

        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            let mut call_stack = vec![Frame {
                v: start,
                edge_pos: 0,
            }];
            index[start] = counter;
            low[start] = counter;
            counter += 1;
            stack.push(start);
            on_stack[start] = true;

            while let Some(frame) = call_stack.last_mut() {
                let v = frame.v;
                let succs = &self.callees_of[v];
                if frame.edge_pos < succs.len() {
                    let w = self.edges[succs[frame.edge_pos]].callee.index();
                    frame.edge_pos += 1;
                    if index[w] == usize::MAX {
                        index[w] = counter;
                        low[w] = counter;
                        counter += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call_stack.push(Frame { v: w, edge_pos: 0 });
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    call_stack.pop();
                    if let Some(parent) = call_stack.last() {
                        low[parent.v] = low[parent.v].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp.push(FuncId(w as u32));
                            if w == v {
                                break;
                            }
                        }
                        comp.sort();
                        sccs.push(comp);
                    }
                }
            }
        }
        sccs
    }

    /// Whether `f` participates in recursion: a self edge or a nontrivial
    /// SCC. Computed from a supplied SCC decomposition to avoid rebuilding.
    pub fn in_recursion(&self, sccs: &[Vec<FuncId>], f: FuncId) -> bool {
        for comp in sccs {
            if comp.contains(&f) {
                if comp.len() > 1 {
                    return true;
                }
                // self loop?
                return self.callees_of[f.index()]
                    .iter()
                    .any(|&e| self.edges[e].callee == f);
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::{FunctionBuilder, Linkage, ModuleId, Operand, ProgramBuilder, Type};

    /// Builds: main -> a -> b -> a (cycle), main -> c, c address-taken by main.
    fn program() -> Program {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        // placeholder ids: we add in order main=0, a=1, b=2, c=3
        let mut main = FunctionBuilder::new("main", m, 0);
        let e = main.entry_block();
        main.call_void(e, FuncId(1), vec![]);
        main.call_void(e, FuncId(3), vec![]);
        let fp = main.const_(e, ConstVal::FuncAddr(FuncId(3)));
        main.call_indirect(e, fp.into(), vec![]);
        main.ret(e, None);
        pb.add_function(main.finish(Linkage::Public, Type::Void));

        let mut a = FunctionBuilder::new("a", m, 0);
        let e = a.entry_block();
        a.call_void(e, FuncId(2), vec![]);
        a.ret(e, None);
        pb.add_function(a.finish(Linkage::Public, Type::Void));

        let mut b = FunctionBuilder::new("b", m, 0);
        let e = b.entry_block();
        b.call_void(e, FuncId(1), vec![]);
        b.ret(e, None);
        pb.add_function(b.finish(Linkage::Public, Type::Void));

        let mut c = FunctionBuilder::new("c", m, 0);
        let e = c.entry_block();
        c.ret(e, None);
        pb.add_function(c.finish(Linkage::Public, Type::Void));

        pb.finish(Some(FuncId(0)))
    }

    #[test]
    fn builds_edges_and_sites() {
        let p = program();
        let cg = CallGraph::build(&p);
        assert_eq!(cg.edges.len(), 4); // main->a, main->c, a->b, b->a
        assert_eq!(cg.indirect_sites.len(), 1);
        assert!(cg.extern_sites.is_empty());
        assert!(cg.address_taken[3]);
        assert!(!cg.address_taken[1]);
        assert_eq!(cg.callers_of[1].len(), 2); // from main and from b
    }

    #[test]
    fn sccs_are_bottom_up() {
        let p = program();
        let cg = CallGraph::build(&p);
        let sccs = cg.sccs();
        // {a, b} must be one component; main must come after it.
        let ab_pos = sccs
            .iter()
            .position(|c| c.contains(&FuncId(1)))
            .expect("a in some scc");
        let main_pos = sccs
            .iter()
            .position(|c| c.contains(&FuncId(0)))
            .expect("main in some scc");
        assert_eq!(sccs[ab_pos], vec![FuncId(1), FuncId(2)]);
        assert!(ab_pos < main_pos, "callees before callers");
    }

    #[test]
    fn recursion_detection() {
        let p = program();
        let cg = CallGraph::build(&p);
        let sccs = cg.sccs();
        assert!(cg.in_recursion(&sccs, FuncId(1)));
        assert!(cg.in_recursion(&sccs, FuncId(2)));
        assert!(!cg.in_recursion(&sccs, FuncId(0)));
        assert!(!cg.in_recursion(&sccs, FuncId(3)));
    }

    #[test]
    fn self_loop_counts_as_recursion() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut f = FunctionBuilder::new("f", m, 0);
        let e = f.entry_block();
        f.call_void(e, FuncId(0), vec![]);
        f.ret(e, None);
        pb.add_function(f.finish(Linkage::Public, Type::Void));
        let p = pb.finish(Some(FuncId(0)));
        let cg = CallGraph::build(&p);
        let sccs = cg.sccs();
        assert!(cg.in_recursion(&sccs, FuncId(0)));
    }

    use hlo_ir::ConstVal;
    #[allow(unused_imports)]
    use hlo_ir::Reg;

    #[test]
    fn empty_program() {
        let p = Program::new();
        let cg = CallGraph::build(&p);
        assert!(cg.sccs().is_empty());
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 10_000-deep call chain exercises the iterative Tarjan.
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let n = 10_000u32;
        for i in 0..n {
            let mut f = FunctionBuilder::new(format!("f{i}"), m, 0);
            let e = f.entry_block();
            if i + 1 < n {
                f.call_void(e, FuncId(i + 1), vec![]);
            }
            f.ret(e, None);
            pb.add_function(f.finish(Linkage::Public, Type::Void));
        }
        let p = pb.finish(Some(FuncId(0)));
        let cg = CallGraph::build(&p);
        let sccs = cg.sccs();
        assert_eq!(sccs.len(), n as usize);
        // bottom-up: the leaf (last function) first
        assert_eq!(sccs[0], vec![FuncId(n - 1)]);
    }

    #[allow(unused)]
    fn _use_module_id(_: ModuleId, _: Operand) {}
}
