//! An incrementally-invalidated call graph.
//!
//! The HLO driver queries the call graph at every pass boundary
//! (inline, clone, delete, pure-call removal), but each pass edits only a
//! handful of functions. Rebuilding from scratch re-scans every
//! instruction of the program; the cache re-scans only the functions whose
//! bodies changed since the last query and reassembles the graph from the
//! per-function scans. Assembly goes through the same code path as
//! [`CallGraph::build`], so the cached graph is always byte-identical to a
//! fresh build — there is no "approximately right" mode.

use crate::callgraph::{scan_function, CallGraph, FuncScan};
use hlo_ir::{FuncId, Program};

/// A demand-rebuilt call graph with per-function invalidation.
///
/// Usage: call [`CallGraphCache::graph`] to get the current graph; after
/// mutating a function's body, call [`CallGraphCache::invalidate`] with its
/// id. Newly appended functions (clones, outlined regions) are picked up
/// automatically — the cache notices the program grew. Functions are never
/// removed from a [`Program`] (deletion empties the body and drops the
/// module-list entry), so shrinkage does not occur.
#[derive(Debug, Default)]
pub struct CallGraphCache {
    scans: Vec<FuncScan>,
    dirty: Vec<bool>,
    graph: Option<CallGraph>,
    rebuilds: u64,
    rescans: u64,
}

impl CallGraphCache {
    /// An empty cache; the first [`CallGraphCache::graph`] call scans the
    /// whole program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks one function's body as changed. Only its out-edges (and the
    /// address-taken bits it contributes) are re-scanned at the next query.
    pub fn invalidate(&mut self, f: FuncId) {
        if f.index() < self.dirty.len() {
            self.dirty[f.index()] = true;
            self.graph = None;
        }
        // Ids beyond the scanned range are new functions; growth is
        // detected in `graph()` regardless.
    }

    /// Marks every function as changed (used after transforms with
    /// non-local effects, e.g. outlining).
    pub fn invalidate_all(&mut self) {
        for d in &mut self.dirty {
            *d = true;
        }
        self.graph = None;
    }

    /// The call graph of `p`, re-scanning only invalidated or newly
    /// appended functions.
    pub fn graph(&mut self, p: &Program) -> &CallGraph {
        if self.scans.len() < p.funcs.len() {
            // Program grew: scan the new tail.
            for i in self.scans.len()..p.funcs.len() {
                let id = FuncId(i as u32);
                self.scans.push(scan_function(id, p.func(id)));
                self.dirty.push(false);
                self.rescans += 1;
            }
            self.graph = None;
        }
        debug_assert_eq!(self.scans.len(), p.funcs.len());
        let mut changed = false;
        for (i, d) in self.dirty.iter_mut().enumerate() {
            if *d {
                let id = FuncId(i as u32);
                self.scans[i] = scan_function(id, p.func(id));
                self.rescans += 1;
                *d = false;
                changed = true;
            }
        }
        if changed {
            self.graph = None;
        }
        if self.graph.is_none() {
            self.graph = Some(CallGraph::assemble_from_scans(&self.scans));
            self.rebuilds += 1;
        }
        self.graph.as_ref().expect("graph just assembled")
    }

    /// Per-function *cone hashes* for content-addressed result caching:
    /// [`CallGraph::cone_hashes`] over [`hlo_ir::hash_function`] content
    /// hashes, computed against this cache's (incrementally maintained)
    /// graph. The optimization service keys its function cache on these —
    /// see `hlo-serve`.
    pub fn cone_hashes(&mut self, p: &Program) -> Vec<u64> {
        let own: Vec<u64> = p.funcs.iter().map(hlo_ir::hash_function).collect();
        self.graph(p).cone_hashes(&own)
    }

    /// Like [`CallGraphCache::cone_hashes`], but folds a caller-supplied
    /// per-function salt into each function's own hash before coning.
    /// `hlo-serve` passes interprocedural summary fingerprints here, so a
    /// cache key changes whenever a function's *summary* changes — not
    /// just its body text. Indices past `salt.len()` get no salt.
    pub fn cone_hashes_salted(&mut self, p: &Program, salt: &[u64]) -> Vec<u64> {
        let own: Vec<u64> = p
            .funcs
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let mut h = hlo_ir::Fnv64::new();
                h.write(b"salted-cone").write_u64(hlo_ir::hash_function(f));
                if let Some(&s) = salt.get(i) {
                    h.write_u64(s);
                }
                h.finish()
            })
            .collect();
        self.graph(p).cone_hashes(&own)
    }

    /// How many times the graph was reassembled (cheap, `O(edges)`).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// How many function bodies were re-scanned (the expensive part a
    /// fresh `CallGraph::build` pays for *every* function, every time).
    pub fn rescans(&self) -> u64 {
        self.rescans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::{FuncId, FunctionBuilder, Linkage, ProgramBuilder, Type};

    fn chain_program(n: u32) -> Program {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        for i in 0..n {
            let mut f = FunctionBuilder::new(format!("f{i}"), m, 0);
            let e = f.entry_block();
            if i + 1 < n {
                f.call_void(e, FuncId(i + 1), vec![]);
            }
            f.ret(e, None);
            pb.add_function(f.finish(Linkage::Public, Type::Void));
        }
        pb.finish(Some(FuncId(0)))
    }

    fn assert_matches_fresh(cache: &mut CallGraphCache, p: &Program) {
        let cached = cache.graph(p);
        let fresh = CallGraph::build(p);
        assert_eq!(cached.edges, fresh.edges);
        assert_eq!(cached.callees_of, fresh.callees_of);
        assert_eq!(cached.callers_of, fresh.callers_of);
        assert_eq!(cached.indirect_sites, fresh.indirect_sites);
        assert_eq!(cached.extern_sites, fresh.extern_sites);
        assert_eq!(cached.address_taken, fresh.address_taken);
    }

    #[test]
    fn first_query_matches_fresh_build() {
        let p = chain_program(5);
        let mut cache = CallGraphCache::new();
        assert_matches_fresh(&mut cache, &p);
        assert_eq!(cache.rescans(), 5);
        assert_eq!(cache.rebuilds(), 1);
    }

    #[test]
    fn unchanged_requery_rescans_nothing() {
        let p = chain_program(4);
        let mut cache = CallGraphCache::new();
        cache.graph(&p);
        cache.graph(&p);
        cache.graph(&p);
        assert_eq!(cache.rescans(), 4);
        assert_eq!(cache.rebuilds(), 1);
    }

    #[test]
    fn invalidation_rescans_only_the_edited_function() {
        let mut p = chain_program(6);
        let mut cache = CallGraphCache::new();
        cache.graph(&p);
        // Edit f2: retarget its call from f3 to f5.
        for b in &mut p.funcs[2].blocks {
            for inst in &mut b.insts {
                if let hlo_ir::Inst::Call { callee, .. } = inst {
                    *callee = hlo_ir::Callee::Func(FuncId(5));
                }
            }
        }
        cache.invalidate(FuncId(2));
        assert_matches_fresh(&mut cache, &p);
        assert_eq!(cache.rescans(), 7, "6 initial + 1 invalidated");
    }

    #[test]
    fn appended_functions_are_picked_up() {
        let p = chain_program(3);
        let mut cache = CallGraphCache::new();
        cache.graph(&p);
        // Grow the program by a function that calls f0 and takes f1's
        // address.
        let mut p = p;
        let m = p.funcs[0].module;
        let mut g = FunctionBuilder::new("g", m, 0);
        let e = g.entry_block();
        g.call_void(e, FuncId(0), vec![]);
        let fp = g.const_(e, hlo_ir::ConstVal::FuncAddr(FuncId(1)));
        g.call_indirect(e, fp.into(), vec![]);
        g.ret(e, None);
        let id = FuncId(p.funcs.len() as u32);
        p.funcs.push(g.finish(Linkage::Public, Type::Void));
        p.modules[m.index()].funcs.push(id);
        assert_matches_fresh(&mut cache, &p);
        let cg = cache.graph(&p);
        assert!(cg.address_taken[1]);
        assert_eq!(cg.callees_of[id.index()].len(), 1);
    }

    #[test]
    fn invalidate_all_matches_fresh() {
        let mut p = chain_program(4);
        let mut cache = CallGraphCache::new();
        cache.graph(&p);
        p.funcs[1].blocks[0].insts.clear();
        p.funcs[1].blocks[0]
            .insts
            .push(hlo_ir::Inst::Ret { value: None });
        cache.invalidate_all();
        assert_matches_fresh(&mut cache, &p);
    }

    #[test]
    fn salted_cone_hashes_propagate_up_the_caller_cone() {
        // f0 -> f1 -> f2. Salting f2 must re-key f2 and both callers;
        // salting f0 must re-key only f0.
        let p = chain_program(3);
        let mut cache = CallGraphCache::new();
        let base = cache.cone_hashes_salted(&p, &[0; 3]);
        let leaf = cache.cone_hashes_salted(&p, &[0, 0, 7]);
        assert_ne!(base[2], leaf[2]);
        assert_ne!(base[1], leaf[1], "f1 calls f2");
        assert_ne!(base[0], leaf[0], "f0 reaches f2");
        let root = cache.cone_hashes_salted(&p, &[7, 0, 0]);
        assert_ne!(base[0], root[0]);
        assert_eq!(base[1], root[1], "f1 does not call f0");
        assert_eq!(base[2], root[2], "f2 does not call f0");
    }

    #[test]
    fn invalidating_unknown_id_is_harmless() {
        let p = chain_program(2);
        let mut cache = CallGraphCache::new();
        cache.invalidate(FuncId(99));
        assert_matches_fresh(&mut cache, &p);
    }
}
