//! Call-site classification — the paper's Figure 5.

use crate::CallGraph;
use hlo_ir::{Callee, Inst, Program};

/// The five categories of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteClass {
    /// Call to a library routine or module not visible to the compiler.
    External,
    /// Callee computed at run time.
    Indirect,
    /// Direct call whose caller and callee live in different modules.
    CrossModule,
    /// Direct call within one module, between different routines.
    WithinModule,
    /// Direct call within a recursion cycle (self or mutual).
    Recursive,
}

/// Counts per category, plus the total, for one program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SiteCounts {
    /// Calls to library routines or invisible modules.
    pub external: u64,
    /// Calls whose callee is computed at run time.
    pub indirect: u64,
    /// Direct calls across module boundaries.
    pub cross_module: u64,
    /// Direct calls within one module.
    pub within_module: u64,
    /// Direct calls within a recursion cycle.
    pub recursive: u64,
}

impl SiteCounts {
    /// Total call sites.
    pub fn total(&self) -> u64 {
        self.external + self.indirect + self.cross_module + self.within_module + self.recursive
    }

    /// Sites amenable to inlining and cloning (everything but external and
    /// indirect — the paper: "The remaining are amenable").
    pub fn amenable(&self) -> u64 {
        self.cross_module + self.within_module + self.recursive
    }
}

/// Classifies every call site of `p` into Figure 5's categories.
///
/// Recursive means the edge stays within one call-graph SCC (which covers
/// both self-recursion and mutual recursion); otherwise the caller/callee
/// module decides cross- vs within-module.
pub fn classify_sites(p: &Program) -> SiteCounts {
    let cg = CallGraph::build(p);
    let sccs = cg.sccs();
    let mut scc_of = vec![usize::MAX; p.funcs.len()];
    for (i, comp) in sccs.iter().enumerate() {
        for &f in comp {
            scc_of[f.index()] = i;
        }
    }

    let mut counts = SiteCounts::default();
    for (caller, f) in p.iter_funcs() {
        for block in &f.blocks {
            for inst in &block.insts {
                if let Inst::Call { callee, .. } = inst {
                    match callee {
                        Callee::Extern(_) => counts.external += 1,
                        Callee::Indirect(_) => counts.indirect += 1,
                        Callee::Func(t) => {
                            let same_scc = scc_of[caller.index()] == scc_of[t.index()];
                            if same_scc {
                                counts.recursive += 1;
                            } else if p.func(*t).module == f.module {
                                counts.within_module += 1;
                            } else {
                                counts.cross_module += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::{ConstVal, FuncId, FunctionBuilder, Linkage, ProgramBuilder, Type};

    #[test]
    fn all_five_categories() {
        let mut pb = ProgramBuilder::new();
        let m0 = pb.add_module("a");
        let m1 = pb.add_module("b");
        let ext = pb.declare_extern("lib", Some(0), false);

        // main (m0): calls helper (within), other (cross), self (recursive),
        // extern, and indirect.
        let mut main = FunctionBuilder::new("main", m0, 0);
        let e = main.entry_block();
        main.call_void(e, FuncId(1), vec![]); // helper, within
        main.call_void(e, FuncId(2), vec![]); // other, cross
        main.call_void(e, FuncId(0), vec![]); // self, recursive
        main.call_extern(e, ext, vec![], false);
        let fp = main.const_(e, ConstVal::FuncAddr(FuncId(1)));
        main.call_indirect(e, fp.into(), vec![]);
        main.ret(e, None);
        pb.add_function(main.finish(Linkage::Public, Type::Void));

        let mut helper = FunctionBuilder::new("helper", m0, 0);
        let e = helper.entry_block();
        helper.ret(e, None);
        pb.add_function(helper.finish(Linkage::Public, Type::Void));

        let mut other = FunctionBuilder::new("other", m1, 0);
        let e = other.entry_block();
        other.ret(e, None);
        pb.add_function(other.finish(Linkage::Public, Type::Void));

        let p = pb.finish(Some(FuncId(0)));
        let c = classify_sites(&p);
        assert_eq!(c.external, 1);
        assert_eq!(c.indirect, 1);
        assert_eq!(c.within_module, 1);
        assert_eq!(c.cross_module, 1);
        assert_eq!(c.recursive, 1);
        assert_eq!(c.total(), 5);
        assert_eq!(c.amenable(), 3);
    }

    #[test]
    fn mutual_recursion_is_recursive_even_cross_module() {
        let mut pb = ProgramBuilder::new();
        let m0 = pb.add_module("a");
        let m1 = pb.add_module("b");
        let mut f = FunctionBuilder::new("f", m0, 0);
        let e = f.entry_block();
        f.call_void(e, FuncId(1), vec![]);
        f.ret(e, None);
        pb.add_function(f.finish(Linkage::Public, Type::Void));
        let mut g = FunctionBuilder::new("g", m1, 0);
        let e = g.entry_block();
        g.call_void(e, FuncId(0), vec![]);
        g.ret(e, None);
        pb.add_function(g.finish(Linkage::Public, Type::Void));
        let p = pb.finish(None);
        let c = classify_sites(&p);
        assert_eq!(c.recursive, 2);
        assert_eq!(c.cross_module, 0);
    }
}
