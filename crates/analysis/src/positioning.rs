//! Profile-guided procedure positioning (Pettis & Hansen, PLDI 1990 —
//! the paper's reference [12] and part of HP's PBO toolbox).
//!
//! Functions that call each other frequently are placed adjacently so
//! they share I-cache lines and pages. The classic algorithm builds an
//! undirected call graph weighted by call frequency and greedily merges
//! *chains*, joining only at chain ends, heaviest edges first.

use crate::CallGraph;
use hlo_ir::{FuncId, Program};
use std::collections::HashMap;

/// Computes a function placement order for code layout.
///
/// Edge weight = the profiled execution count of the call site's block
/// (1.0 when unprofiled). Unreferenced and deleted functions are appended
/// at the end in id order, so the result always contains every function
/// exactly once.
pub fn procedure_order(p: &Program, cg: &CallGraph) -> Vec<FuncId> {
    // Accumulate undirected edge weights between distinct functions.
    let mut weights: HashMap<(FuncId, FuncId), f64> = HashMap::new();
    for e in &cg.edges {
        let a = e.site.caller;
        let b = e.callee;
        if a == b {
            continue;
        }
        let w = p
            .func(a)
            .profile
            .as_ref()
            .map(|pr| pr.blocks[e.site.block.index()])
            .unwrap_or(1.0);
        let key = if a.0 < b.0 { (a, b) } else { (b, a) };
        *weights.entry(key).or_insert(0.0) += w;
    }
    let mut edges: Vec<((FuncId, FuncId), f64)> = weights.into_iter().collect();
    edges.sort_by(|x, y| {
        y.1.partial_cmp(&x.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(x.0.cmp(&y.0)) // deterministic tie-break
    });

    // Chain merging. chain_of[f] = chain index; chains hold func lists.
    let n = p.funcs.len();
    let mut chain_of: Vec<usize> = (0..n).collect();
    let mut chains: Vec<Vec<FuncId>> = (0..n).map(|i| vec![FuncId(i as u32)]).collect();

    for ((a, b), _w) in edges {
        let ca = chain_of[a.index()];
        let cb = chain_of[b.index()];
        if ca == cb {
            continue;
        }
        // Only merge when the two functions sit at joinable chain ends.
        let a_head = chains[ca].first() == Some(&a);
        let a_tail = chains[ca].last() == Some(&a);
        let b_head = chains[cb].first() == Some(&b);
        let b_tail = chains[cb].last() == Some(&b);
        let (left, right) = if a_tail && b_head {
            (ca, cb)
        } else if b_tail && a_head {
            (cb, ca)
        } else if a_head && b_head {
            chains[ca].reverse();
            (ca, cb)
        } else if a_tail && b_tail {
            chains[cb].reverse();
            (ca, cb)
        } else {
            continue; // both interior; Pettis-Hansen skips
        };
        let mut tail = std::mem::take(&mut chains[right]);
        for f in &tail {
            chain_of[f.index()] = left;
        }
        chains[left].append(&mut tail);
    }

    // Emit chains by total weight? Classic PH emits by density; we emit
    // hottest-entry-first: chains containing hotter functions first, then
    // leftovers. Hotness of a chain = max entry count of its members.
    let hot = |f: FuncId| p.func(f).profile.as_ref().map(|pr| pr.entry).unwrap_or(0.0);
    let mut chain_ids: Vec<usize> = (0..n).filter(|&c| !chains[c].is_empty()).collect();
    chain_ids.sort_by(|&x, &y| {
        let hx = chains[x].iter().map(|&f| hot(f)).fold(0.0, f64::max);
        let hy = chains[y].iter().map(|&f| hot(f)).fold(0.0, f64::max);
        hy.partial_cmp(&hx)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(x.cmp(&y))
    });
    let mut order = Vec::with_capacity(n);
    for c in chain_ids {
        order.extend_from_slice(&chains[c]);
    }
    debug_assert_eq!(order.len(), n);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::{FuncProfile, FunctionBuilder, Linkage, Operand, ProgramBuilder, Type};

    /// main -> hot (10000/call-site), main -> cold (1).
    fn program() -> Program {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut main = FunctionBuilder::new("main", m, 0);
        let e = main.entry_block();
        let hotb = main.new_block();
        let coldb = main.new_block();
        main.br(e, Operand::imm(1), hotb, coldb);
        main.call_void(hotb, FuncId(1), vec![]);
        main.ret(hotb, None);
        main.call_void(coldb, FuncId(2), vec![]);
        main.ret(coldb, None);
        let mut main = main.finish(Linkage::Public, Type::Void);
        main.profile = Some(FuncProfile {
            entry: 10000.0,
            blocks: vec![10000.0, 9999.0, 1.0],
        });
        pb.add_function(main);
        for (name, entry) in [("hot", 9999.0), ("cold", 1.0)] {
            let mut f = FunctionBuilder::new(name, m, 0);
            let e = f.entry_block();
            f.ret(e, None);
            let mut f = f.finish(Linkage::Public, Type::Void);
            f.profile = Some(FuncProfile {
                entry,
                blocks: vec![entry],
            });
            pb.add_function(f);
        }
        pb.finish(Some(FuncId(0)))
    }

    #[test]
    fn hot_pair_is_adjacent() {
        let p = program();
        let cg = CallGraph::build(&p);
        let order = procedure_order(&p, &cg);
        assert_eq!(order.len(), 3);
        let pos = |f: FuncId| order.iter().position(|&x| x == f).unwrap();
        let main_pos = pos(FuncId(0));
        let hot_pos = pos(FuncId(1));
        let cold_pos = pos(FuncId(2));
        assert_eq!(
            (main_pos as i64 - hot_pos as i64).abs(),
            1,
            "main and hot must be adjacent: {order:?}"
        );
        // cold sits on the far side.
        assert!(cold_pos > main_pos.min(hot_pos) + 1 || cold_pos + 1 < main_pos.max(hot_pos));
    }

    #[test]
    fn order_is_a_permutation() {
        let p = program();
        let cg = CallGraph::build(&p);
        let mut order = procedure_order(&p, &cg);
        order.sort();
        assert_eq!(order, vec![FuncId(0), FuncId(1), FuncId(2)]);
    }

    #[test]
    fn empty_program_is_fine() {
        let p = Program::new();
        let cg = CallGraph::build(&p);
        assert!(procedure_order(&p, &cg).is_empty());
    }

    #[test]
    fn unprofiled_program_still_produces_total_order() {
        let mut p = program();
        for f in &mut p.funcs {
            f.profile = None;
        }
        let cg = CallGraph::build(&p);
        assert_eq!(procedure_order(&p, &cg).len(), 3);
    }
}
