#![warn(missing_docs)]
//! Program analyses feeding the HLO inliner and cloner.
//!
//! Everything the paper's heuristics consume lives here:
//!
//! * [`CallGraph`] — direct/indirect/external call sites, address-taken
//!   functions, caller/callee edge indices, and Tarjan SCCs providing the
//!   bottom-up order the inline scheduler walks (paper §2.4).
//! * [`CallGraphCache`] — the same graph behind per-function
//!   invalidation: passes that edit a few functions re-scan only those
//!   bodies instead of the whole program.
//! * [`Dominators`] / [`LoopInfo`] — natural-loop nesting used for static
//!   block-frequency estimation when no profile is available ("without such
//!   data it uses heuristics to guess at the relative importance", §2.3).
//! * [`estimate_static_profile`] — the loop-depth heuristic itself.
//! * [`side_effect_free_funcs`] — interprocedural side-effect analysis; the
//!   paper's HLO deletes calls to provably side-effect-free routines (the
//!   072.sc curses library example in §3.1).
//! * [`classify_sites`] — the call-site taxonomy of Figure 5 (external,
//!   indirect, cross-module, within-module, recursive).
//! * [`reachable_funcs`] — reachability from the entry and address-taken
//!   roots, used when deleting fully-inlined/cloned routines.

mod callgraph;
mod cgcache;
mod classify;
mod dominators;
mod freq;
mod loops;
mod positioning;
mod purity;
mod reach;

pub use callgraph::{
    partition_index_map, scan_function, CallEdge, CallGraph, CallGraphPartition, CallSiteRef,
    FuncScan,
};
pub use cgcache::CallGraphCache;
pub use classify::{classify_sites, SiteClass, SiteCounts};
pub use dominators::Dominators;
pub use freq::estimate_static_profile;
pub use loops::LoopInfo;
pub use positioning::procedure_order;
pub use purity::side_effect_free_funcs;
pub use reach::reachable_funcs;
