//! Dominator trees (Cooper–Harvey–Kennedy iterative algorithm).

use hlo_ir::{BlockId, Function};

/// The dominator tree of one function's CFG.
///
/// Blocks unreachable from the entry have no immediate dominator and are
/// reported by [`Dominators::is_reachable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dominators {
    /// Immediate dominator of each block (`idom[entry] == entry`);
    /// `None` for unreachable blocks.
    idom: Vec<Option<BlockId>>,
    /// Reverse postorder of reachable blocks.
    rpo: Vec<BlockId>,
}

impl Dominators {
    /// Computes dominators for `f`.
    pub fn compute(f: &Function) -> Self {
        let n = f.blocks.len();
        let preds = f.predecessors();

        // DFS postorder from entry.
        let mut post: Vec<BlockId> = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        let mut stack: Vec<(BlockId, usize)> = Vec::new();
        seen[0] = true;
        stack.push((BlockId(0), 0));
        // Cache successor lists to avoid recomputation.
        let succs: Vec<Vec<BlockId>> = f.blocks.iter().map(|b| b.successors()).collect();
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b.index()].len() {
                let s = succs[b.index()][*i];
                *i += 1;
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.iter().rev().copied().collect();
        let mut rpo_num = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_num[b.index()] = i;
        }

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[0] = Some(BlockId(0));
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_num, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom, rpo }
    }

    /// Immediate dominator of `b` (`b` itself for the entry).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(b.index()).copied().flatten()
    }

    /// True if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom(b).is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let id = match self.idom(cur) {
                Some(i) => i,
                None => return false,
            };
            if id == cur {
                return cur == a;
            }
            cur = id;
        }
    }

    /// True if `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom(b).is_some()
    }

    /// Blocks in reverse postorder (reachable only).
    pub fn reverse_postorder(&self) -> &[BlockId] {
        &self.rpo
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_num: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_num[a.index()] > rpo_num[b.index()] {
            a = idom[a.index()].expect("processed block has idom");
        }
        while rpo_num[b.index()] > rpo_num[a.index()] {
            b = idom[b.index()].expect("processed block has idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::{FunctionBuilder, Linkage, ModuleId, Operand, Type};

    /// Diamond: 0 -> {1,2} -> 3.
    fn diamond() -> Function {
        let mut fb = FunctionBuilder::new("d", ModuleId(0), 1);
        let e = fb.entry_block();
        let b1 = fb.new_block();
        let b2 = fb.new_block();
        let b3 = fb.new_block();
        fb.br(e, Operand::Reg(fb.param(0)), b1, b2);
        fb.jump(b1, b3);
        fb.jump(b2, b3);
        fb.ret(b3, None);
        fb.finish(Linkage::Public, Type::Void)
    }

    #[test]
    fn diamond_idoms() {
        let f = diamond();
        let d = Dominators::compute(&f);
        assert_eq!(d.idom(BlockId(0)), Some(BlockId(0)));
        assert_eq!(d.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(d.idom(BlockId(2)), Some(BlockId(0)));
        assert_eq!(d.idom(BlockId(3)), Some(BlockId(0)));
        assert!(d.dominates(BlockId(0), BlockId(3)));
        assert!(!d.dominates(BlockId(1), BlockId(3)));
        assert!(d.dominates(BlockId(3), BlockId(3)));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut fb = FunctionBuilder::new("u", ModuleId(0), 0);
        let e = fb.entry_block();
        let dead = fb.new_block();
        fb.ret(e, None);
        fb.ret(dead, None);
        let f = fb.finish(Linkage::Public, Type::Void);
        let d = Dominators::compute(&f);
        assert!(!d.is_reachable(dead));
        assert!(d.is_reachable(e));
    }

    #[test]
    fn loop_header_dominates_body() {
        // 0 -> 1 (header) -> 2 (body) -> 1; 1 -> 3 (exit)
        let mut fb = FunctionBuilder::new("l", ModuleId(0), 1);
        let e = fb.entry_block();
        let h = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.jump(e, h);
        fb.br(h, Operand::Reg(fb.param(0)), body, exit);
        fb.jump(body, h);
        fb.ret(exit, None);
        let f = fb.finish(Linkage::Public, Type::Void);
        let d = Dominators::compute(&f);
        assert!(d.dominates(h, body));
        assert!(d.dominates(h, exit));
        assert_eq!(d.idom(body), Some(h));
    }
}
