//! Interprocedural side-effect analysis.
//!
//! The paper's motivating example (§3.1): the 072.sc benchmark links a
//! stub curses library whose routines do nothing; HLO's interprocedural
//! analysis proves them side-effect-free and deletes the calls before
//! inlining even considers them. This module reproduces that analysis.

use crate::CallGraph;
use hlo_ir::{Callee, Inst, Program};

/// Computes, for each function, whether a call to it may be deleted when
/// its result is unused.
///
/// A function is side-effect-free when its body (and everything it can
/// reach through direct calls) contains no stores, no external or indirect
/// calls, no dynamic allocation, and no potentially trapping arithmetic,
/// and when it provably terminates as far as this analysis can tell —
/// functions involved in recursion are conservatively kept, as are
/// functions containing loops (a non-terminating call is observable).
pub fn side_effect_free_funcs(p: &Program, cg: &CallGraph) -> Vec<bool> {
    let n = p.funcs.len();
    let mut free = vec![true; n];

    // Local screening.
    for (id, f) in p.iter_funcs() {
        let mut ok = true;
        // Loops => possible non-termination; detect via back edge using a
        // cheap DFS ancestor check (any cycle in the CFG).
        if cfg_has_cycle(f) {
            ok = false;
        }
        'outer: for block in &f.blocks {
            for inst in &block.insts {
                match inst {
                    Inst::Store { .. } | Inst::Alloca { .. } => {
                        ok = false;
                        break 'outer;
                    }
                    Inst::Bin { op, .. } if op.can_trap() => {
                        ok = false;
                        break 'outer;
                    }
                    Inst::Call { callee, .. } => match callee {
                        Callee::Extern(_) | Callee::Indirect(_) => {
                            ok = false;
                            break 'outer;
                        }
                        Callee::Func(_) => {}
                    },
                    _ => {}
                }
            }
        }
        free[id.index()] = ok;
    }

    // Recursion is conservatively impure (possible non-termination).
    let sccs = cg.sccs();
    for comp in &sccs {
        let recursive = comp.len() > 1
            || comp
                .iter()
                .any(|&f| cg.in_recursion(std::slice::from_ref(comp), f));
        if recursive {
            for &f in comp {
                free[f.index()] = false;
            }
        }
    }

    // Propagate bottom-up: caller free only if all direct callees free.
    // SCCs are already in callee-first order.
    for comp in &sccs {
        for &f in comp {
            if !free[f.index()] {
                continue;
            }
            let all_callees_free = cg.callees_of[f.index()]
                .iter()
                .all(|&e| free[cg.edges[e].callee.index()]);
            if !all_callees_free {
                free[f.index()] = false;
            }
        }
    }
    free
}

fn cfg_has_cycle(f: &hlo_ir::Function) -> bool {
    // Iterative DFS with colors.
    let n = f.blocks.len();
    let succs: Vec<Vec<_>> = f.blocks.iter().map(|b| b.successors()).collect();
    let mut color = vec![0u8; n]; // 0 white, 1 gray, 2 black
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    color[0] = 1;
    while let Some(&mut (v, ref mut i)) = stack.last_mut() {
        if *i < succs[v].len() {
            let s = succs[v][*i].index();
            *i += 1;
            match color[s] {
                0 => {
                    color[s] = 1;
                    stack.push((s, 0));
                }
                1 => return true,
                _ => {}
            }
        } else {
            color[v] = 2;
            stack.pop();
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::{BinOp, FunctionBuilder, Linkage, Operand, ProgramBuilder, Type};

    #[test]
    fn pure_leaf_is_free() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut f = FunctionBuilder::new("f", m, 1);
        let e = f.entry_block();
        let r = f.bin(e, BinOp::Add, Operand::Reg(f.param(0)), Operand::imm(1));
        f.ret(e, Some(r.into()));
        pb.add_function(f.finish(Linkage::Public, Type::I64));
        let p = pb.finish(None);
        let cg = CallGraph::build(&p);
        assert_eq!(side_effect_free_funcs(&p, &cg), vec![true]);
    }

    #[test]
    fn store_makes_impure_and_propagates_to_callers() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let g = pb.add_global("g", m, Linkage::Public, 1, vec![]);
        // callee stores; caller only calls it
        let mut callee = FunctionBuilder::new("callee", m, 0);
        let e = callee.entry_block();
        let ga = callee.const_(e, hlo_ir::ConstVal::GlobalAddr(g));
        callee.store(e, ga.into(), Operand::imm(0), Operand::imm(1));
        callee.ret(e, None);
        pb.add_function(callee.finish(Linkage::Public, Type::Void));
        let mut caller = FunctionBuilder::new("caller", m, 0);
        let e = caller.entry_block();
        caller.call_void(e, hlo_ir::FuncId(0), vec![]);
        caller.ret(e, None);
        pb.add_function(caller.finish(Linkage::Public, Type::Void));
        let p = pb.finish(None);
        let cg = CallGraph::build(&p);
        assert_eq!(side_effect_free_funcs(&p, &cg), vec![false, false]);
    }

    #[test]
    fn recursion_is_conservatively_impure() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut f = FunctionBuilder::new("f", m, 1);
        let e = f.entry_block();
        let r = f.call(e, hlo_ir::FuncId(0), vec![Operand::Reg(f.param(0))]);
        f.ret(e, Some(r.into()));
        pb.add_function(f.finish(Linkage::Public, Type::I64));
        let p = pb.finish(None);
        let cg = CallGraph::build(&p);
        assert_eq!(side_effect_free_funcs(&p, &cg), vec![false]);
    }

    #[test]
    fn loops_are_conservatively_impure() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut f = FunctionBuilder::new("f", m, 1);
        let e = f.entry_block();
        let h = f.new_block();
        let x = f.new_block();
        f.jump(e, h);
        f.br(h, Operand::Reg(f.param(0)), h, x);
        f.ret(x, None);
        pb.add_function(f.finish(Linkage::Public, Type::Void));
        let p = pb.finish(None);
        let cg = CallGraph::build(&p);
        assert_eq!(side_effect_free_funcs(&p, &cg), vec![false]);
    }

    #[test]
    fn extern_call_is_impure() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let ext = pb.declare_extern("print_i64", Some(1), false);
        let mut f = FunctionBuilder::new("f", m, 0);
        let e = f.entry_block();
        f.call_extern(e, ext, vec![Operand::imm(1)], false);
        f.ret(e, None);
        pb.add_function(f.finish(Linkage::Public, Type::Void));
        let p = pb.finish(None);
        let cg = CallGraph::build(&p);
        assert_eq!(side_effect_free_funcs(&p, &cg), vec![false]);
    }
}
