//! Structured diagnostics.

use hlo_ir::{BlockId, VerifyError};

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Cleanliness observation (pedantic lints); never fails a build.
    Info,
    /// Suspicious but tolerated by the VM; a transform bug until proven
    /// otherwise.
    Warning,
    /// A violated invariant: executing this program is meaningless.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding: where, what, how bad, and (in verify-each mode) which
/// pass introduced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How serious the finding is.
    pub severity: Severity,
    /// The function the finding is in (empty for program-level findings).
    pub func: String,
    /// The block, when block-granular.
    pub block: Option<BlockId>,
    /// Instruction index within the block, when instruction-granular.
    pub inst: Option<usize>,
    /// Human-readable description.
    pub message: String,
    /// The pipeline pass after which the finding first appeared (set by
    /// [`crate::Checker`]; `"input"` means it was present before any pass
    /// ran).
    pub pass_origin: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic; location fields start unset.
    pub fn new(severity: Severity, func: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            severity,
            func: func.into(),
            block: None,
            inst: None,
            message: message.into(),
            pass_origin: None,
        }
    }

    /// Sets the block location.
    pub fn at_block(mut self, b: BlockId) -> Self {
        self.block = Some(b);
        self
    }

    /// Sets the instruction location (implies a block location).
    pub fn at_inst(mut self, b: BlockId, i: usize) -> Self {
        self.block = Some(b);
        self.inst = Some(i);
        self
    }

    /// A stable identity used to tell *new* diagnostics from pre-existing
    /// ones across pipeline passes. Instruction indexes are excluded on
    /// purpose: passes shift positions without changing the finding.
    pub fn key(&self) -> String {
        format!(
            "{}|{}|{}|{}",
            self.severity,
            self.func,
            self.block.map(|b| b.0 as i64).unwrap_or(-1),
            self.message
        )
    }

    /// Converts a structural verifier error into an `Error` diagnostic.
    pub fn from_verify(e: &VerifyError) -> Self {
        let mut d = Diagnostic::new(
            Severity::Error,
            e.func_name().unwrap_or_default(),
            e.to_string(),
        );
        d.block = e.block();
        d
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: ", self.severity)?;
        if self.func.is_empty() {
            write!(f, "<program>")?;
        } else {
            write!(f, "{}", self.func)?;
        }
        if let Some(b) = self.block {
            write!(f, "@{b}")?;
            if let Some(i) = self.inst {
                write!(f, "/i{i}")?;
            }
        }
        write!(f, ": {}", self.message)?;
        if let Some(p) = &self.pass_origin {
            write!(f, " [introduced by pass `{p}`]")?;
        }
        Ok(())
    }
}

/// A batch of diagnostics with rendering and counting helpers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LintReport {
    /// The findings, in discovery order.
    pub diags: Vec<Diagnostic>,
}

impl LintReport {
    /// Wraps a diagnostic list.
    pub fn new(diags: Vec<Diagnostic>) -> Self {
        LintReport { diags }
    }

    /// True when nothing at `Warning` or above was found.
    pub fn is_clean(&self) -> bool {
        self.count_at_least(Severity::Warning) == 0
    }

    /// Number of findings at or above `floor`.
    pub fn count_at_least(&self, floor: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity >= floor).count()
    }

    /// The most severe finding, if any.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diags.iter().map(|d| d.severity).max()
    }
}

impl std::fmt::Display for LintReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for d in &self.diags {
            writeln!(f, "{d}")?;
        }
        let errors = self.count_at_least(Severity::Error);
        let warnings = self.count_at_least(Severity::Warning) - errors;
        let infos = self.diags.len() - errors - warnings;
        write!(
            f,
            "lint: {} diagnostics ({errors} errors, {warnings} warnings, {infos} notes)",
            self.diags.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_for_filtering() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn display_includes_location_and_origin() {
        let mut d = Diagnostic::new(Severity::Warning, "f", "use of uninitialized register r5")
            .at_inst(BlockId(3), 2);
        d.pass_origin = Some("cse".into());
        let s = d.to_string();
        assert!(s.contains("warning: f@b3/i2"), "{s}");
        assert!(s.contains("[introduced by pass `cse`]"), "{s}");
    }

    #[test]
    fn report_counts_by_severity() {
        let r = LintReport::new(vec![
            Diagnostic::new(Severity::Error, "f", "a"),
            Diagnostic::new(Severity::Warning, "f", "b"),
            Diagnostic::new(Severity::Info, "f", "c"),
        ]);
        assert!(!r.is_clean());
        assert_eq!(r.count_at_least(Severity::Warning), 2);
        assert_eq!(r.max_severity(), Some(Severity::Error));
        let s = r.to_string();
        assert!(
            s.contains("3 diagnostics (1 errors, 1 warnings, 1 notes)"),
            "{s}"
        );
    }

    #[test]
    fn key_ignores_instruction_position() {
        let a = Diagnostic::new(Severity::Error, "f", "m").at_inst(BlockId(1), 4);
        let b = Diagnostic::new(Severity::Error, "f", "m").at_inst(BlockId(1), 9);
        assert_eq!(a.key(), b.key());
    }
}
