//! Small fixed-width bitsets and CFG helpers shared by the dataflow lints.

use hlo_ir::{BlockId, Function};

/// A fixed-capacity bitset over `0..nbits`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BitSet {
    words: Vec<u64>,
    nbits: usize,
}

impl BitSet {
    /// The empty set over `0..nbits`.
    pub fn empty(nbits: usize) -> Self {
        BitSet {
            words: vec![0; nbits.div_ceil(64)],
            nbits,
        }
    }

    /// The full set `{0, .., nbits-1}`.
    pub fn full(nbits: usize) -> Self {
        let mut s = BitSet {
            words: vec![!0u64; nbits.div_ceil(64)],
            nbits,
        };
        s.mask_tail();
        s
    }

    fn mask_tail(&mut self) {
        let tail = self.nbits % 64;
        if tail != 0 {
            if let Some(w) = self.words.last_mut() {
                *w &= (1u64 << tail) - 1;
            }
        }
    }

    /// Membership test; out-of-range indexes are simply absent.
    pub fn get(&self, i: usize) -> bool {
        i < self.nbits && self.words[i / 64] >> (i % 64) & 1 != 0
    }

    /// Inserts `i` (ignored when out of range).
    pub fn set(&mut self, i: usize) {
        if i < self.nbits {
            self.words[i / 64] |= 1 << (i % 64);
        }
    }

    /// Removes `i` (ignored when out of range).
    pub fn remove(&mut self, i: usize) {
        if i < self.nbits {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// `self |= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self &= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self -= other`.
    pub fn subtract(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// True when no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }
}

/// Which blocks are reachable from the entry, by block index.
pub(crate) fn reachable_blocks(f: &Function) -> Vec<bool> {
    let mut seen = vec![false; f.blocks.len()];
    if f.blocks.is_empty() {
        return seen;
    }
    let mut work = vec![BlockId(0)];
    seen[0] = true;
    while let Some(b) = work.pop() {
        for s in f.block(b).successors() {
            if s.index() < seen.len() && !seen[s.index()] {
                seen[s.index()] = true;
                work.push(s);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_ops() {
        let mut a = BitSet::empty(70);
        a.set(3);
        a.set(69);
        assert!(a.get(3) && a.get(69) && !a.get(4));
        let mut b = BitSet::full(70);
        b.remove(3);
        let mut u = a.clone();
        u.union_with(&b);
        assert!(u.get(3) && u.get(68));
        let mut i = a.clone();
        i.intersect_with(&b);
        assert!(!i.get(3) && i.get(69));
        a.subtract(&b);
        assert!(a.get(3) && !a.get(69));
        assert!(BitSet::empty(10).is_empty());
        assert!(!BitSet::full(10).is_empty());
    }

    #[test]
    fn full_masks_tail_bits() {
        let f = BitSet::full(65);
        assert!(f.get(64));
        assert!(!f.get(65));
        assert!(!f.get(127));
    }

    #[test]
    fn out_of_range_is_absent() {
        let mut s = BitSet::empty(8);
        s.set(100); // ignored
        assert!(!s.get(100));
    }
}
