#![warn(missing_docs)]
//! Static-analysis diagnostics over the HLO IR.
//!
//! Two consumers drive this crate's design:
//!
//! * **`hloc --lint`** — a standalone report over a compiled program:
//!   structural verification ([`hlo_ir::verify_program_all`]) plus a
//!   battery of dataflow lints, all findings collected (not
//!   first-error-only) and rendered with locations.
//! * **Verify-each** — the [`Checker`] runs the same battery after *every*
//!   inline/clone/opt step of the pipeline and attributes each new finding
//!   to the pass that introduced it, which turns "the optimized program
//!   misbehaves" into "pass `cse` introduced a read of an uninitialized
//!   register in `eval@b3`".
//!
//! The battery:
//!
//! | check | severity | gated by |
//! |---|---|---|
//! | use-before-def (must / may, forward dataflow) | Error / Warning | — |
//! | direct-call arity vs. callee `params` | Error | — |
//! | extern-call arity vs. declared signature | Warning | — |
//! | profile sanity (NaN, negative, length) | Error | — |
//! | profile flow consistency (block count vs. inflow) | Warning | — |
//! | unreachable blocks | Info | `pedantic` |
//! | dead stores (backward liveness) | Info | `pedantic` |
//! | frame-slot address escapes | Info | `pedantic` |
//! | call-through-escaped-frame (`hlo-ipa` chains) | Warning | standalone report |
//! | infeasible indirect-call target set | Warning | standalone report |
//!
//! Pedantic checks describe states that optimization *creates or removes*
//! routinely (dead stores before DCE, unreachable blocks before CFG
//! cleanup), so they are informational and off by default; the default
//! battery is invariant-preserving — a correct pipeline never introduces
//! any of its findings, which is exactly what the verify-each property
//! test asserts.
//!
//! # Example
//!
//! ```
//! let p = hlo_frontc::compile(&[("m", "fn main() { return 2 + 2; }")])?;
//! let report = hlo_lint::lint_report(&p, &hlo_lint::LintOptions::default());
//! assert!(report.diags.is_empty());
//! # Ok::<(), hlo_frontc::FrontError>(())
//! ```

mod checker;
mod checks;
mod dataflow;
mod diag;
mod interproc;

pub use checker::{CheckLevel, Checker, INPUT_ORIGIN};
pub use diag::{Diagnostic, LintReport, Severity};

use hlo_ir::{Function, Program};

/// Knobs for the lint battery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LintOptions {
    /// Also run the informational cleanliness lints (dead stores,
    /// unreachable blocks, frame-address escapes).
    pub pedantic: bool,
}

impl LintOptions {
    /// Options with the pedantic lints enabled.
    pub fn pedantic() -> Self {
        LintOptions { pedantic: true }
    }
}

/// Runs the per-function lints on one function.
pub fn lint_function(f: &Function, opts: &LintOptions) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    checks::lint_function_into(f, opts, &mut out);
    out
}

/// Runs the full lint battery (per-function lints plus program-level call
/// checks) on a program. Purely the lints — structural verification is
/// [`structural_diagnostics`]; [`full_diagnostics`] combines both.
pub fn lint_program(p: &Program, opts: &LintOptions) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in &p.funcs {
        checks::lint_function_into(f, opts, &mut out);
    }
    checks::check_call_arity(p, &mut out);
    out
}

/// Structural verification as diagnostics: every defect
/// [`hlo_ir::verify_program_all`] finds, converted via
/// [`Diagnostic::from_verify`].
pub fn structural_diagnostics(p: &Program) -> Vec<Diagnostic> {
    hlo_ir::verify_program_all(p)
        .iter()
        .map(Diagnostic::from_verify)
        .collect()
}

/// Structural verification plus the lint battery, deduplicated: the
/// verifier's arity defects are dropped in favour of the lint's
/// instruction-granular version of the same finding.
pub fn full_diagnostics(p: &Program, opts: &LintOptions) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = hlo_ir::verify_program_all(p)
        .iter()
        .filter(|e| !matches!(e, hlo_ir::VerifyError::ArityMismatch { .. }))
        .map(Diagnostic::from_verify)
        .collect();
    out.extend(lint_program(p, opts));
    out
}

/// The interprocedural lints: whole-program checks driven by `hlo-ipa`
/// summaries over the call graph. Two checks today:
///
/// * **call-through-escaped-frame** — a frame-slot address is passed to a
///   callee whose summary says that parameter escapes; the diagnostic
///   names the full call chain down to the retaining function.
/// * **infeasible indirect-call target set** — an indirect call whose
///   argument count matches no address-taken function's arity (or a
///   program with indirect calls but no address-taken function at all).
///
/// These need a call graph and the summary fixpoint, so they run from the
/// standalone report ([`lint_report`], `hloc lint`) rather than at every
/// verify-each pass boundary.
pub fn interprocedural_diagnostics(p: &Program) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    interproc::interprocedural_into(p, &mut out);
    out
}

/// Convenience: [`full_diagnostics`] plus [`interprocedural_diagnostics`],
/// wrapped in a renderable report — the full standalone battery.
pub fn lint_report(p: &Program, opts: &LintOptions) -> LintReport {
    let mut diags = full_diagnostics(p, opts);
    diags.extend(interprocedural_diagnostics(p));
    LintReport::new(diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::{
        BlockId, FuncProfile, FunctionBuilder, Inst, Linkage, Operand, ProgramBuilder, Reg, Type,
    };

    fn compile(src: &str) -> Program {
        hlo_frontc::compile(&[("m", src)]).expect("test source compiles")
    }

    #[test]
    fn clean_source_lints_clean() {
        let p = compile(
            "fn add(a, b) { return a + b; }\n\
             fn main() { var s = 0; var i = 0; while (i < 4) { s = add(s, i); i = i + 1; } return s; }",
        );
        let report = lint_report(&p, &LintOptions::default());
        assert!(report.diags.is_empty(), "{report}");
    }

    #[test]
    fn must_uninit_read_is_an_error() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut fb = FunctionBuilder::new("f", m, 0);
        let e = fb.entry_block();
        fb.ret(e, Some(Operand::imm(0)));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        let ghost = Reg(f.num_regs);
        f.num_regs += 1;
        f.blocks[0].insts[0] = Inst::Ret {
            value: Some(Operand::Reg(ghost)),
        };
        let id = pb.add_function(f);
        let p = pb.finish(Some(id));
        let diags = lint_program(&p, &LintOptions::default());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(
            diags[0].message.contains("never initialized"),
            "{}",
            diags[0]
        );
    }

    #[test]
    fn one_armed_init_is_a_warning() {
        // r1 is written only on the then-path, then read at the join.
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut fb = FunctionBuilder::new("f", m, 1);
        let entry = fb.entry_block();
        let then_ = fb.new_block();
        let join = fb.new_block();
        let r = fb.new_reg();
        fb.br(entry, Operand::Reg(Reg(0)), then_, join);
        fb.copy_to(then_, r, Operand::imm(7));
        fb.jump(then_, join);
        fb.ret(join, Some(Operand::Reg(r)));
        let id = pb.add_function(fb.finish(Linkage::Public, Type::I64));
        let p = pb.finish(Some(id));
        let diags = lint_program(&p, &LintOptions::default());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("may be read"), "{}", diags[0]);
        assert_eq!(diags[0].block, Some(join));
    }

    #[test]
    fn direct_call_arity_mismatch_is_an_error() {
        // MinC tolerates arity mismatches at parse time (they are the
        // paper's inlining-illegal sites), so this comes from source.
        let p = compile("fn f(a, b) { return a + b; } fn main() { return f(1); }");
        let diags = lint_program(&p, &LintOptions::default());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(
            diags[0]
                .message
                .contains("passes 1 arguments, callee takes 2"),
            "{}",
            diags[0]
        );
    }

    #[test]
    fn profile_nan_and_overflow_are_flagged() {
        let mut p = compile("fn main() { return 1; }");
        let nb = p.funcs[0].blocks.len();
        p.funcs[0].profile = Some(FuncProfile {
            entry: f64::NAN,
            blocks: vec![1.0; nb],
        });
        let diags = lint_program(&p, &LintOptions::default());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("not a finite"), "{}", diags[0]);

        // Entry block claiming more executions than the entry count.
        p.funcs[0].profile = Some(FuncProfile {
            entry: 1.0,
            blocks: vec![50.0; nb],
        });
        let diags = lint_program(&p, &LintOptions::default());
        assert!(
            diags.iter().any(|d| d.message.contains("flow into it")),
            "{diags:?}"
        );
    }

    #[test]
    fn pedantic_finds_dead_store_and_unreachable_block() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut fb = FunctionBuilder::new("f", m, 0);
        let e = fb.entry_block();
        let dead = fb.new_block();
        let r = fb.new_reg();
        fb.copy_to(e, r, Operand::imm(3)); // never read
        fb.ret(e, Some(Operand::imm(0)));
        fb.ret(dead, None);
        let id = pb.add_function(fb.finish(Linkage::Public, Type::I64));
        let p = pb.finish(Some(id));
        assert!(lint_program(&p, &LintOptions::default()).is_empty());
        let diags = lint_program(&p, &LintOptions::pedantic());
        assert!(
            diags.iter().any(|d| d.message.contains("dead store")),
            "{diags:?}"
        );
        assert!(
            diags.iter().any(|d| d.message.contains("unreachable")),
            "{diags:?}"
        );
        assert!(diags.iter().all(|d| d.severity == Severity::Info));
    }

    #[test]
    fn pedantic_flags_frame_address_escaping_into_call() {
        let p = compile(
            "fn use_(p) { return p; }\n\
             fn main() { var a[4]; return use_(&a); }",
        );
        let diags = lint_program(&p, &LintOptions::pedantic());
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("escapes into a call")),
            "{diags:?}"
        );
    }

    #[test]
    fn full_diagnostics_merges_verifier_and_lints_without_arity_dupes() {
        let p = compile("fn f(a, b) { return a + b; } fn main() { return f(1); }");
        let full = full_diagnostics(&p, &LintOptions::default());
        let arity: Vec<_> = full
            .iter()
            .filter(|d| d.message.contains("passes 1 arguments"))
            .collect();
        assert_eq!(arity.len(), 1, "{full:?}");
        assert_eq!(arity[0].block, Some(BlockId(0)));
    }

    #[test]
    fn uninit_ignores_unreachable_blocks() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut fb = FunctionBuilder::new("f", m, 0);
        let e = fb.entry_block();
        let dead = fb.new_block();
        fb.ret(e, Some(Operand::imm(0)));
        let mut f = fb.finish(Linkage::Public, Type::I64);
        let ghost = Reg(f.num_regs);
        f.num_regs += 1;
        f.blocks[dead.index()].insts.push(Inst::Ret {
            value: Some(Operand::Reg(ghost)),
        });
        let id = pb.add_function(f);
        let p = pb.finish(Some(id));
        assert!(lint_program(&p, &LintOptions::default()).is_empty());
    }

    #[test]
    fn loop_carried_register_is_not_flagged() {
        // i is defined before the loop and redefined inside it; the back
        // edge must not make the analysis think it may be uninitialized.
        let p = compile("fn main() { var i = 0; while (i < 10) { i = i + 1; } return i; }");
        let diags = lint_program(&p, &LintOptions::default());
        assert!(diags.is_empty(), "{diags:?}");
    }
}
