//! Interprocedural lints driven by `hlo-ipa` summaries.
//!
//! Unlike the per-function battery, these checks need whole-program
//! context (a call graph and the bottom-up summary fixpoint), so they run
//! from the standalone report entry points rather than inside the
//! verify-each [`crate::Checker`] — re-deriving summaries at every pass
//! boundary would dominate checking time for no added coverage (the
//! intraprocedural battery already guards the invariants transforms can
//! break).

use crate::diag::{Diagnostic, Severity};
use hlo_analysis::CallGraph;
use hlo_ipa::{ParamEscape, Summaries};
use hlo_ir::{Callee, FuncId, Inst, Program, Reg};
use std::collections::BTreeSet;

/// Runs both interprocedural checks, sharing one call graph and one
/// summary computation.
pub(crate) fn interprocedural_into(p: &Program, out: &mut Vec<Diagnostic>) {
    let cg = CallGraph::build(p);
    let summaries = Summaries::compute(p, &cg);
    check_escaped_frame_calls(p, &summaries, out);
    check_indirect_target_sets(p, &cg, out);
}

/// Renders the escape path of parameter `param` of `f` by following
/// [`ParamEscape::Via`] links until the retaining function. The walk is
/// capped at the function count: `Via` chains produced by the analysis are
/// acyclic, but a hand-written (deserialized) summary set need not be.
fn escape_chain(summaries: &Summaries, mut f: FuncId, mut param: usize) -> String {
    let mut parts = Vec::new();
    for _ in 0..summaries.funcs.len().max(1) {
        let s = &summaries.funcs[f.index()];
        match s.param_escapes.get(param) {
            Some(ParamEscape::Via(g, j)) => {
                parts.push(format!("`{}` param {param}", s.name));
                f = *g;
                param = *j;
            }
            _ => {
                parts.push(format!("`{}` param {param} (retained there)", s.name));
                return parts.join(" -> ");
            }
        }
    }
    parts.push("...".to_string());
    parts.join(" -> ")
}

/// Call-through-escaped-frame: a frame-slot address passed to a callee
/// whose summary says that parameter escapes — the callee (or something it
/// calls) may retain a pointer into the caller's frame beyond the call.
/// The diagnostic names the full interprocedural chain down to the
/// function that retains the address.
fn check_escaped_frame_calls(p: &Program, summaries: &Summaries, out: &mut Vec<Diagnostic>) {
    for (_, f) in p.iter_funcs() {
        for (bid, block) in f.iter_blocks() {
            // Per-block tracking of registers holding a frame address,
            // same scheme as the intraprocedural frame-escape lint.
            let mut holds: Vec<Option<hlo_ir::SlotId>> = vec![None; f.num_regs as usize];
            for (i, inst) in block.insts.iter().enumerate() {
                if let Inst::Call {
                    callee: Callee::Func(id),
                    args,
                    ..
                } = inst
                {
                    if id.index() < summaries.funcs.len() {
                        for (ai, a) in args.iter().enumerate() {
                            let slot = a
                                .as_reg()
                                .and_then(|r: Reg| holds.get(r.index()).copied().flatten());
                            let Some(slot) = slot else { continue };
                            let esc = summaries.funcs[id.index()].param_escapes.get(ai);
                            if matches!(esc, Some(ParamEscape::No) | None) {
                                continue;
                            }
                            out.push(
                                Diagnostic::new(
                                    Severity::Warning,
                                    &f.name,
                                    format!(
                                        "address of frame slot {slot} escapes through call \
                                         chain {}",
                                        escape_chain(summaries, *id, ai)
                                    ),
                                )
                                .at_inst(bid, i),
                            );
                        }
                    }
                }
                if let Some(d) = inst.dst() {
                    if let Some(h) = holds.get_mut(d.index()) {
                        *h = match inst {
                            Inst::FrameAddr { slot, .. } => Some(*slot),
                            _ => None,
                        };
                    }
                }
            }
        }
    }
}

/// Infeasible indirect-call target sets: an indirect call can only ever
/// reach address-taken functions, and the VM zero-fills missing arguments,
/// so a site whose argument count matches no address-taken function's
/// arity either calls nothing sensible or relies on that zero-fill — a
/// front-end or transform bug either way.
fn check_indirect_target_sets(p: &Program, cg: &CallGraph, out: &mut Vec<Diagnostic>) {
    let taken_arities: BTreeSet<u32> = p
        .funcs
        .iter()
        .enumerate()
        .filter(|(i, _)| cg.address_taken[*i])
        .map(|(_, f)| f.params)
        .collect();
    for (_, f) in p.iter_funcs() {
        for (bid, block) in f.iter_blocks() {
            for (i, inst) in block.insts.iter().enumerate() {
                let Inst::Call {
                    callee: Callee::Indirect(_),
                    args,
                    ..
                } = inst
                else {
                    continue;
                };
                let n = args.len() as u32;
                if taken_arities.is_empty() {
                    out.push(
                        Diagnostic::new(
                            Severity::Warning,
                            &f.name,
                            "indirect call in a program where no function has its address \
                             taken (empty target set)"
                                .to_string(),
                        )
                        .at_inst(bid, i),
                    );
                } else if !taken_arities.contains(&n) {
                    let arities: Vec<String> =
                        taken_arities.iter().map(|a| a.to_string()).collect();
                    out.push(
                        Diagnostic::new(
                            Severity::Warning,
                            &f.name,
                            format!(
                                "indirect call passes {n} arguments but every address-taken \
                                 function takes {} (infeasible target set)",
                                arities.join(" or ")
                            ),
                        )
                        .at_inst(bid, i),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::interprocedural_diagnostics;
    use crate::Severity;
    use hlo_ir::{ConstVal, FunctionBuilder, Linkage, Operand, ProgramBuilder, Type};

    fn compile(src: &str) -> hlo_ir::Program {
        hlo_frontc::compile(&[("m", src)]).expect("test source compiles")
    }

    #[test]
    fn clean_program_has_no_interprocedural_findings() {
        let p = compile(
            "fn add(a, b) { return a + b; }\n\
             fn main() { return add(2, 3); }",
        );
        let diags = interprocedural_diagnostics(&p);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn direct_escape_is_flagged_with_the_retainer_named() {
        let p = compile(
            "global g;\n\
             fn keep(p) { g = p; return 0; }\n\
             fn main() { var a[2]; return keep(&a); }",
        );
        let diags = interprocedural_diagnostics(&p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Warning);
        assert_eq!(diags[0].func, "main");
        assert!(
            diags[0]
                .message
                .contains("escapes through call chain `keep` param 0 (retained there)"),
            "{}",
            diags[0]
        );
    }

    #[test]
    fn two_level_escape_names_the_full_chain() {
        let p = compile(
            "global g;\n\
             fn keep(q) { g = q; return 0; }\n\
             fn fwd(p) { return keep(p); }\n\
             fn main() { var a[2]; return fwd(&a); }",
        );
        let diags = interprocedural_diagnostics(&p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0]
                .message
                .contains("`fwd` param 0 -> `keep` param 0 (retained there)"),
            "{}",
            diags[0]
        );
    }

    #[test]
    fn non_escaping_callee_is_quiet() {
        let p = compile(
            "fn read(p) { return p[0]; }\n\
             fn main() { var a[2]; a[0] = 7; return read(&a); }",
        );
        let diags = interprocedural_diagnostics(&p);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn infeasible_indirect_arity_is_flagged() {
        // One address-taken function of arity 1; the indirect site passes 2.
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut t = FunctionBuilder::new("target", m, 1);
        let e = t.entry_block();
        t.ret(e, Some(Operand::Reg(hlo_ir::Reg(0))));
        let target = pb.add_function(t.finish(Linkage::Public, Type::I64));
        let mut mn = FunctionBuilder::new("main", m, 0);
        let e = mn.entry_block();
        let fp = mn.const_(e, ConstVal::FuncAddr(target));
        let r = mn.call_indirect(e, fp.into(), vec![Operand::imm(1), Operand::imm(2)]);
        mn.ret(e, Some(r.into()));
        let id = pb.add_function(mn.finish(Linkage::Public, Type::I64));
        let p = pb.finish(Some(id));
        let diags = interprocedural_diagnostics(&p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0]
                .message
                .contains("passes 2 arguments but every address-taken function takes 1"),
            "{}",
            diags[0]
        );
    }

    #[test]
    fn empty_target_set_is_flagged() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut mn = FunctionBuilder::new("main", m, 1);
        let e = mn.entry_block();
        let r = mn.call_indirect(e, Operand::Reg(hlo_ir::Reg(0)), vec![]);
        mn.ret(e, Some(r.into()));
        let id = pb.add_function(mn.finish(Linkage::Public, Type::I64));
        let p = pb.finish(Some(id));
        let diags = interprocedural_diagnostics(&p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("empty target set"),
            "{}",
            diags[0]
        );
    }

    #[test]
    fn feasible_indirect_call_is_quiet() {
        let p = compile(
            "fn inc(x) { return x + 1; }\n\
             fn dec(x) { return x - 1; }\n\
             fn main(n) { var f = n > 0 ? &inc : &dec; return f(n); }",
        );
        let diags = interprocedural_diagnostics(&p);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
