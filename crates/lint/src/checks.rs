//! The lint battery: individual checks over functions and programs.

use crate::dataflow::{reachable_blocks, BitSet};
use crate::diag::{Diagnostic, Severity};
use crate::LintOptions;
use hlo_ir::{BlockId, Callee, Function, Inst, Program, Reg};

/// Per-block register-definition summary plus the per-function CFG facts
/// the dataflow checks share.
struct FuncFacts {
    reachable: Vec<bool>,
    preds: Vec<Vec<BlockId>>,
    defs: Vec<BitSet>,
}

impl FuncFacts {
    fn compute(f: &Function) -> Self {
        let nr = f.num_regs as usize;
        let defs = f
            .blocks
            .iter()
            .map(|b| {
                let mut d = BitSet::empty(nr);
                for inst in &b.insts {
                    if let Some(r) = inst.dst() {
                        d.set(r.index());
                    }
                }
                d
            })
            .collect();
        FuncFacts {
            reachable: reachable_blocks(f),
            preds: f.predecessors(),
            defs,
        }
    }
}

/// Use-before-def of virtual registers, via forward may/must-be-uninitialized
/// dataflow over the CFG.
///
/// On entry, registers `0..params` hold arguments and everything above them
/// is uninitialized. A register that is uninitialized on *every* path to a
/// use is an error (the read is meaningless no matter what the program
/// does); one uninitialized on only *some* path is a warning (the lint is
/// path-insensitive, so this may be a false positive guarded by a
/// condition the analysis cannot see).
fn check_uninit(f: &Function, facts: &FuncFacts, out: &mut Vec<Diagnostic>) {
    let nr = f.num_regs as usize;
    let nb = f.blocks.len();
    if nb == 0 || nr == 0 {
        return;
    }
    let mut entry_uninit = BitSet::empty(nr);
    for r in f.params as usize..nr {
        entry_uninit.set(r);
    }
    if entry_uninit.is_empty() {
        return; // every register is a parameter; nothing can be uninitialized
    }

    // Block-level fixpoint on *-out sets. `may` joins with union (bottom =
    // empty), `must` with intersection (top = full); both kill a register
    // once the block defines it.
    let run = |is_may: bool| -> Vec<BitSet> {
        let mut outs = vec![
            if is_may {
                BitSet::empty(nr)
            } else {
                BitSet::full(nr)
            };
            nb
        ];
        loop {
            let mut changed = false;
            for b in 0..nb {
                if !facts.reachable[b] {
                    continue;
                }
                let mut inb = if b == 0 {
                    entry_uninit.clone()
                } else if is_may {
                    let mut s = BitSet::empty(nr);
                    for p in &facts.preds[b] {
                        s.union_with(&outs[p.index()]);
                    }
                    s
                } else {
                    let mut s = BitSet::full(nr);
                    for p in &facts.preds[b] {
                        s.intersect_with(&outs[p.index()]);
                    }
                    s
                };
                inb.subtract(&facts.defs[b]);
                if inb != outs[b] {
                    outs[b] = inb;
                    changed = true;
                }
            }
            if !changed {
                return outs;
            }
        }
    };
    let may_out = run(true);
    let must_out = run(false);

    // Reporting walk: recompute block-entry states from predecessor outs,
    // then track kills instruction by instruction.
    for b in 0..nb {
        if !facts.reachable[b] {
            continue;
        }
        let (mut may, mut must) = if b == 0 {
            (entry_uninit.clone(), entry_uninit.clone())
        } else {
            let mut may = BitSet::empty(nr);
            let mut must = BitSet::full(nr);
            for p in &facts.preds[b] {
                may.union_with(&may_out[p.index()]);
                must.intersect_with(&must_out[p.index()]);
            }
            (may, must)
        };
        for (i, inst) in f.blocks[b].insts.iter().enumerate() {
            inst.for_each_use(|op| {
                if let Some(r) = op.as_reg() {
                    if must.get(r.index()) {
                        out.push(
                            Diagnostic::new(
                                Severity::Error,
                                &f.name,
                                format!("register {r} is read but never initialized"),
                            )
                            .at_inst(BlockId(b as u32), i),
                        );
                    } else if may.get(r.index()) {
                        out.push(
                            Diagnostic::new(
                                Severity::Warning,
                                &f.name,
                                format!("register {r} may be read before initialization"),
                            )
                            .at_inst(BlockId(b as u32), i),
                        );
                    }
                }
            });
            if let Some(d) = inst.dst() {
                may.remove(d.index());
                must.remove(d.index());
            }
        }
    }
}

/// Profile-consistency lint.
///
/// Errors: a profile vector whose length disagrees with the CFG, or any
/// non-finite / negative count. Warnings: a reachable block executing more
/// often than flow into it permits (its predecessors' counts, plus the
/// function entry count for the entry block) — inline/clone splicing
/// rescales spliced profiles, and a violation here means a transform
/// corrupted the annotation.
fn check_profile(f: &Function, facts: &FuncFacts, out: &mut Vec<Diagnostic>) {
    let Some(p) = &f.profile else { return };
    if p.blocks.len() != f.blocks.len() {
        out.push(Diagnostic::new(
            Severity::Error,
            &f.name,
            format!(
                "profile has {} block counts for {} blocks",
                p.blocks.len(),
                f.blocks.len()
            ),
        ));
        return;
    }
    let mut bad_counts = false;
    if !p.entry.is_finite() || p.entry < 0.0 {
        bad_counts = true;
        out.push(Diagnostic::new(
            Severity::Error,
            &f.name,
            format!(
                "profile entry count {} is not a finite non-negative number",
                p.entry
            ),
        ));
    }
    for (i, &c) in p.blocks.iter().enumerate() {
        if !c.is_finite() || c < 0.0 {
            bad_counts = true;
            out.push(
                Diagnostic::new(
                    Severity::Error,
                    &f.name,
                    format!("profile count {c} is not a finite non-negative number"),
                )
                .at_block(BlockId(i as u32)),
            );
        }
    }
    if bad_counts {
        return; // flow comparison is meaningless on garbage counts
    }
    for b in 0..f.blocks.len() {
        if !facts.reachable[b] {
            continue;
        }
        let mut inflow = if b == 0 { p.entry } else { 0.0 };
        for pr in &facts.preds[b] {
            if facts.reachable[pr.index()] {
                inflow += p.blocks[pr.index()];
            }
        }
        let freq = p.blocks[b];
        if freq > inflow * (1.0 + 1e-6) + 1e-6 {
            out.push(
                Diagnostic::new(
                    Severity::Warning,
                    &f.name,
                    format!("block executes {freq} times but flow into it totals only {inflow}"),
                )
                .at_block(BlockId(b as u32)),
            );
        }
    }
}

/// Frame-slot lints: a `FrameAddr` whose address flows into a call argument
/// or is stored to memory escapes the frame — legal, but it defeats the
/// dead-slot and memory-forwarding optimizations and interacts with the
/// inliner's slot remapping, so it is worth surfacing under `--pedantic`.
fn check_frame_escape(f: &Function, out: &mut Vec<Diagnostic>) {
    for (bid, block) in f.iter_blocks() {
        // Local (per-block) tracking of which registers currently hold a
        // frame address; cleared on redefinition.
        let mut holds: Vec<Option<hlo_ir::SlotId>> = vec![None; f.num_regs as usize];
        let slot_of = |holds: &[Option<hlo_ir::SlotId>], op: &hlo_ir::Operand| {
            op.as_reg()
                .and_then(|r: Reg| holds.get(r.index()).copied().flatten())
        };
        for (i, inst) in block.insts.iter().enumerate() {
            match inst {
                Inst::Call { args, .. } => {
                    for a in args {
                        if let Some(s) = slot_of(&holds, a) {
                            out.push(
                                Diagnostic::new(
                                    Severity::Info,
                                    &f.name,
                                    format!("address of frame slot {s} escapes into a call"),
                                )
                                .at_inst(bid, i),
                            );
                        }
                    }
                }
                Inst::Store { value, .. } => {
                    if let Some(s) = slot_of(&holds, value) {
                        out.push(
                            Diagnostic::new(
                                Severity::Info,
                                &f.name,
                                format!("address of frame slot {s} is stored to memory"),
                            )
                            .at_inst(bid, i),
                        );
                    }
                }
                _ => {}
            }
            if let Some(d) = inst.dst() {
                if let Some(h) = holds.get_mut(d.index()) {
                    *h = match inst {
                        Inst::FrameAddr { slot, .. } => Some(*slot),
                        _ => None,
                    };
                }
            }
        }
    }
}

/// Dead stores: a register assignment whose value no other instruction can
/// ever read, found by backward liveness. Pedantic — unoptimized code is
/// legitimately full of these (DCE exists to remove them).
fn check_dead_stores(f: &Function, facts: &FuncFacts, out: &mut Vec<Diagnostic>) {
    let nr = f.num_regs as usize;
    let nb = f.blocks.len();
    if nb == 0 || nr == 0 {
        return;
    }
    let mut live_in = vec![BitSet::empty(nr); nb];
    loop {
        let mut changed = false;
        for b in (0..nb).rev() {
            let mut live = BitSet::empty(nr);
            for s in f.blocks[b]
                .terminator()
                .map(|t| t.successors())
                .unwrap_or_default()
            {
                if s.index() < nb {
                    live.union_with(&live_in[s.index()]);
                }
            }
            for inst in f.blocks[b].insts.iter().rev() {
                if let Some(d) = inst.dst() {
                    live.remove(d.index());
                }
                inst.for_each_use(|op| {
                    if let Some(r) = op.as_reg() {
                        live.set(r.index());
                    }
                });
            }
            if live != live_in[b] {
                live_in[b] = live;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for b in 0..nb {
        if !facts.reachable[b] {
            continue;
        }
        let mut live = BitSet::empty(nr);
        for s in f.blocks[b]
            .terminator()
            .map(|t| t.successors())
            .unwrap_or_default()
        {
            if s.index() < nb {
                live.union_with(&live_in[s.index()]);
            }
        }
        // The backward walk discovers dead stores last-first; buffer and
        // flip so diagnostics come out in source order.
        let mut found = Vec::new();
        for (i, inst) in f.blocks[b].insts.iter().enumerate().rev() {
            if let Some(d) = inst.dst() {
                if !live.get(d.index()) && !inst.has_side_effect() {
                    found.push(
                        Diagnostic::new(
                            Severity::Info,
                            &f.name,
                            format!("register {d} is assigned but never read (dead store)"),
                        )
                        .at_inst(BlockId(b as u32), i),
                    );
                }
                live.remove(d.index());
            }
            inst.for_each_use(|op| {
                if let Some(r) = op.as_reg() {
                    live.set(r.index());
                }
            });
        }
        out.extend(found.into_iter().rev());
    }
}

/// Unreachable blocks. Pedantic: `simplify_cfg`/`delete_unreachable` clean
/// these up as a matter of course, so they are only interesting when
/// examining a single pass's output.
fn check_unreachable(f: &Function, facts: &FuncFacts, out: &mut Vec<Diagnostic>) {
    for b in 0..f.blocks.len() {
        if !facts.reachable[b] {
            out.push(
                Diagnostic::new(
                    Severity::Info,
                    &f.name,
                    "block is unreachable from the entry".to_string(),
                )
                .at_block(BlockId(b as u32)),
            );
        }
    }
}

/// Call-arity linting over a whole program: direct calls must pass exactly
/// the callee's parameter count (the VM tolerates mismatches — missing
/// arguments read as zero — but no front end or transform should produce
/// one, and such sites are illegal to inline). Extern calls are checked
/// against the declared signature when one exists (`params: None` declares
/// varargs).
pub(crate) fn check_call_arity(p: &Program, out: &mut Vec<Diagnostic>) {
    for (_, f) in p.iter_funcs() {
        for (bid, block) in f.iter_blocks() {
            for (i, inst) in block.insts.iter().enumerate() {
                let Inst::Call { callee, args, .. } = inst else {
                    continue;
                };
                match callee {
                    Callee::Func(id) if id.index() < p.funcs.len() => {
                        let callee_f = p.func(*id);
                        if callee_f.params as usize != args.len() {
                            out.push(
                                Diagnostic::new(
                                    Severity::Error,
                                    &f.name,
                                    format!(
                                        "call to `{}` passes {} arguments, callee takes {}",
                                        callee_f.name,
                                        args.len(),
                                        callee_f.params
                                    ),
                                )
                                .at_inst(bid, i),
                            );
                        }
                    }
                    Callee::Extern(id) if id.index() < p.externs.len() => {
                        let ext = p.ext(*id);
                        if let Some(n) = ext.params {
                            if n as usize != args.len() {
                                out.push(
                                    Diagnostic::new(
                                        Severity::Warning,
                                        &f.name,
                                        format!(
                                            "call to extern `{}` passes {} arguments, declaration takes {}",
                                            ext.name,
                                            args.len(),
                                            n
                                        ),
                                    )
                                    .at_inst(bid, i),
                                );
                            }
                        }
                    }
                    _ => {} // out-of-range ids are the verifier's job
                }
            }
        }
    }
}

/// Runs the per-function battery.
pub(crate) fn lint_function_into(f: &Function, opts: &LintOptions, out: &mut Vec<Diagnostic>) {
    let facts = FuncFacts::compute(f);
    check_uninit(f, &facts, out);
    check_profile(f, &facts, out);
    if opts.pedantic {
        check_unreachable(f, &facts, out);
        check_dead_stores(f, &facts, out);
        check_frame_escape(f, out);
    }
}
