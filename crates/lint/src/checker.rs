//! The verify-each engine: pass-boundary checking with origin attribution.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use crate::diag::{Diagnostic, LintReport};
use crate::{full_diagnostics, lint_function, structural_diagnostics, LintOptions};
use hlo_ir::{Function, Program};

/// How much checking runs at every pass boundary of the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckLevel {
    /// No pass-boundary checking (production default; zero overhead).
    #[default]
    Off,
    /// Structural verification only ([`hlo_ir::verify_program_all`]).
    Structural,
    /// Structural verification plus the full lint battery.
    Strict,
}

impl CheckLevel {
    /// True when any checking runs at all.
    pub fn is_enabled(self) -> bool {
        self != CheckLevel::Off
    }
}

impl std::str::FromStr for CheckLevel {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(CheckLevel::Off),
            "structural" => Ok(CheckLevel::Structural),
            "strict" => Ok(CheckLevel::Strict),
            other => Err(format!(
                "unknown check level `{other}` (expected off, structural, or strict)"
            )),
        }
    }
}

/// The name given to findings already present before any pass ran.
pub const INPUT_ORIGIN: &str = "input";

/// Runs the diagnostic battery after every pipeline step and attributes
/// each *new* finding to the pass that introduced it.
///
/// Usage: call [`Checker::baseline`] on the input program (pre-existing
/// defects get origin [`INPUT_ORIGIN`]), then [`Checker::check`] after each
/// transform with the pass name. A finding is "new" when its
/// [`Diagnostic::key`] was never seen before, so a defect carried
/// unchanged through ten passes is reported once, against the pass that
/// created it.
#[derive(Debug)]
pub struct Checker {
    level: CheckLevel,
    seen: HashSet<String>,
    diags: Vec<Diagnostic>,
    elapsed: Duration,
    checks_run: u32,
}

impl Checker {
    /// A checker at the given level.
    pub fn new(level: CheckLevel) -> Self {
        Checker {
            level,
            seen: HashSet::new(),
            diags: Vec::new(),
            elapsed: Duration::ZERO,
            checks_run: 0,
        }
    }

    /// A checker that does nothing (level [`CheckLevel::Off`]).
    pub fn disabled() -> Self {
        Checker::new(CheckLevel::Off)
    }

    /// The configured level.
    pub fn level(&self) -> CheckLevel {
        self.level
    }

    /// True when checks actually run.
    pub fn is_enabled(&self) -> bool {
        self.level.is_enabled()
    }

    /// Records the input program's pre-existing defects under origin
    /// [`INPUT_ORIGIN`], so later passes are not blamed for them.
    pub fn baseline(&mut self, p: &Program) {
        self.check(p, INPUT_ORIGIN);
    }

    /// Runs the battery on `p`; any finding not seen before is recorded
    /// with `pass` as its origin.
    pub fn check(&mut self, p: &Program, pass: &str) {
        if !self.is_enabled() {
            return;
        }
        let start = Instant::now();
        let found = match self.level {
            CheckLevel::Off => Vec::new(),
            CheckLevel::Structural => structural_diagnostics(p),
            CheckLevel::Strict => full_diagnostics(p, &LintOptions::default()),
        };
        for mut d in found {
            if self.seen.insert(d.key()) {
                d.pass_origin = Some(pass.to_string());
                self.diags.push(d);
            }
        }
        self.checks_run += 1;
        self.elapsed += start.elapsed();
    }

    /// Function-granular variant of [`Checker::check`], for sub-pass
    /// boundaries inside the scalar-optimization pipeline where only one
    /// function changed. Runs [`hlo_ir::verify_function_all`] plus the
    /// per-function lints (program-level call checks need the whole
    /// program and are covered by the surrounding [`Checker::check`]
    /// boundaries).
    pub fn check_function(&mut self, f: &Function, pass: &str) {
        if !self.is_enabled() {
            return;
        }
        let start = Instant::now();
        let mut found: Vec<Diagnostic> = hlo_ir::verify_function_all(f)
            .iter()
            .map(Diagnostic::from_verify)
            .collect();
        if self.level == CheckLevel::Strict {
            found.extend(lint_function(f, &LintOptions::default()));
        }
        for mut d in found {
            if self.seen.insert(d.key()) {
                d.pass_origin = Some(pass.to_string());
                self.diags.push(d);
            }
        }
        self.checks_run += 1;
        self.elapsed += start.elapsed();
    }

    /// A child checker for one shard of a parallel stage: same level, a
    /// snapshot of the parent's already-seen keys, and no findings yet.
    /// Each worker drives its shard's sub-pass boundaries through the
    /// child; the parent then [`Checker::absorb`]s the children *in
    /// deterministic shard order*, which reproduces the sequential run's
    /// diagnostics exactly (per-function batteries only emit findings
    /// keyed to that function, and cross-shard duplicates are resolved by
    /// absorb order, same as sequential discovery order).
    pub fn fork(&self) -> Checker {
        Checker {
            level: self.level,
            seen: if self.is_enabled() {
                self.seen.clone()
            } else {
                HashSet::new()
            },
            diags: Vec::new(),
            elapsed: Duration::ZERO,
            checks_run: 0,
        }
    }

    /// Merges a [`Checker::fork`]ed child back: its new findings are
    /// appended (parent-side dedup still applies), its battery time counts
    /// toward cumulative work, and its boundary count is added.
    pub fn absorb(&mut self, child: Checker) {
        for d in child.diags {
            if self.seen.insert(d.key()) {
                self.diags.push(d);
            }
        }
        self.elapsed += child.elapsed;
        self.checks_run += child.checks_run;
    }

    /// All findings recorded so far, in discovery order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Findings attributed to an actual pass (i.e. excluding input defects)
    /// — the pipeline is healthy iff this is empty.
    pub fn introduced(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags
            .iter()
            .filter(|d| d.pass_origin.as_deref() != Some(INPUT_ORIGIN))
    }

    /// Total time spent inside check batteries.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// How many pass boundaries were checked.
    pub fn checks_run(&self) -> u32 {
        self.checks_run
    }

    /// Consumes the checker into a report.
    pub fn into_report(self) -> LintReport {
        LintReport::new(self.diags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_ir::{
        BinOp, FuncId, FunctionBuilder, Inst, Linkage, Operand, ProgramBuilder, Reg, Type,
    };

    fn clean_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut f = FunctionBuilder::new("f", m, 2);
        let e = f.entry_block();
        let r = f.bin(e, BinOp::Add, Operand::Reg(Reg(0)), Operand::Reg(Reg(1)));
        f.ret(e, Some(Operand::Reg(r)));
        let id = pb.add_function(f.finish(Linkage::Public, Type::I64));
        pb.finish(Some(id))
    }

    #[test]
    fn parses_levels() {
        assert_eq!("off".parse::<CheckLevel>().unwrap(), CheckLevel::Off);
        assert_eq!("strict".parse::<CheckLevel>().unwrap(), CheckLevel::Strict);
        assert!("bogus".parse::<CheckLevel>().is_err());
    }

    #[test]
    fn attributes_new_defect_to_the_introducing_pass() {
        let mut p = clean_program();
        let mut ck = Checker::new(CheckLevel::Strict);
        ck.baseline(&p);
        assert!(ck.diagnostics().is_empty(), "{:?}", ck.diagnostics());
        ck.check(&p, "constprop");
        assert!(ck.diagnostics().is_empty());

        // Simulate a buggy pass: make the add read a register nothing wrote.
        let bad = Reg(p.funcs[0].num_regs); // fresh, never defined
        p.funcs[0].num_regs += 1;
        if let Inst::Bin { a, .. } = &mut p.funcs[0].blocks[0].insts[0] {
            *a = Operand::Reg(bad);
        }
        ck.check(&p, "cse");
        let introduced: Vec<_> = ck.introduced().collect();
        assert_eq!(introduced.len(), 1, "{:?}", ck.diagnostics());
        assert_eq!(introduced[0].pass_origin.as_deref(), Some("cse"));
        assert!(introduced[0].message.contains("never initialized"));

        // The same defect is not re-reported at the next boundary.
        ck.check(&p, "dce");
        assert_eq!(ck.introduced().count(), 1);
        assert_eq!(ck.checks_run(), 4);
    }

    #[test]
    fn input_defects_are_not_blamed_on_passes() {
        let mut p = clean_program();
        let bad = Reg(p.funcs[0].num_regs);
        p.funcs[0].num_regs += 1;
        if let Inst::Bin { a, .. } = &mut p.funcs[0].blocks[0].insts[0] {
            *a = Operand::Reg(bad);
        }
        let mut ck = Checker::new(CheckLevel::Strict);
        ck.baseline(&p);
        ck.check(&p, "inline");
        assert_eq!(ck.introduced().count(), 0);
        assert_eq!(ck.diagnostics().len(), 1);
        assert_eq!(
            ck.diagnostics()[0].pass_origin.as_deref(),
            Some(INPUT_ORIGIN)
        );
    }

    #[test]
    fn disabled_checker_is_free() {
        let p = clean_program();
        let mut ck = Checker::disabled();
        ck.baseline(&p);
        ck.check(&p, "anything");
        assert_eq!(ck.checks_run(), 0);
        assert!(ck.diagnostics().is_empty());
    }

    #[test]
    fn fork_absorb_matches_sequential_checking() {
        // Two functions, each given a distinct defect; checking them via
        // two forked children absorbed in order must equal checking both
        // sequentially through one checker.
        let make_broken_pair = || {
            let mut pb = ProgramBuilder::new();
            let m = pb.add_module("m");
            for name in ["f", "g"] {
                let mut f = FunctionBuilder::new(name, m, 0);
                let e = f.entry_block();
                let r = f.bin(e, BinOp::Add, Operand::imm(1), Operand::imm(2));
                f.ret(e, Some(Operand::Reg(r)));
                pb.add_function(f.finish(Linkage::Public, Type::I64));
            }
            let mut p = pb.finish(Some(FuncId(0)));
            for i in 0..2 {
                let bad = Reg(p.funcs[i].num_regs);
                p.funcs[i].num_regs += 1;
                if let Inst::Bin { a, .. } = &mut p.funcs[i].blocks[0].insts[0] {
                    *a = Operand::Reg(bad);
                }
            }
            p
        };
        let p = make_broken_pair();

        let mut seq = Checker::new(CheckLevel::Strict);
        for f in &p.funcs {
            seq.check_function(f, "cleanup");
        }

        let mut par = Checker::new(CheckLevel::Strict);
        let children: Vec<Checker> = p
            .funcs
            .iter()
            .map(|f| {
                let mut child = par.fork();
                child.check_function(f, "cleanup");
                child
            })
            .collect();
        for child in children {
            par.absorb(child);
        }

        let seq_msgs: Vec<_> = seq.diagnostics().iter().map(|d| d.key()).collect();
        let par_msgs: Vec<_> = par.diagnostics().iter().map(|d| d.key()).collect();
        assert_eq!(seq_msgs, par_msgs);
        assert_eq!(seq.checks_run(), par.checks_run());
        assert_eq!(par.introduced().count(), 2);
    }

    #[test]
    fn absorb_deduplicates_across_children() {
        let p = clean_program();
        let mut parent = Checker::new(CheckLevel::Strict);
        let mut broken = p;
        let bad = Reg(broken.funcs[0].num_regs);
        broken.funcs[0].num_regs += 1;
        if let Inst::Bin { a, .. } = &mut broken.funcs[0].blocks[0].insts[0] {
            *a = Operand::Reg(bad);
        }
        // Both children see the same defect; only the first absorb lands.
        let mut c1 = parent.fork();
        c1.check_function(&broken.funcs[0], "shard0");
        let mut c2 = parent.fork();
        c2.check_function(&broken.funcs[0], "shard1");
        parent.absorb(c1);
        parent.absorb(c2);
        assert_eq!(parent.diagnostics().len(), 1);
        assert_eq!(
            parent.diagnostics()[0].pass_origin.as_deref(),
            Some("shard0")
        );
        assert_eq!(parent.checks_run(), 2);
    }

    #[test]
    fn structural_level_skips_lints_but_sees_broken_structure() {
        let mut p = clean_program();
        let mut ck = Checker::new(CheckLevel::Structural);
        ck.baseline(&p);
        // Drop the terminator: a structural defect.
        p.funcs[0].blocks[0].insts.pop();
        ck.check(&p, "straighten");
        assert_eq!(ck.introduced().count(), 1);
        assert_eq!(
            ck.introduced().next().unwrap().pass_origin.as_deref(),
            Some("straighten")
        );
    }
}
