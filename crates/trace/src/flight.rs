//! The flight recorder: a fixed-capacity, lock-sharded ring buffer of the
//! last N request summaries.
//!
//! Always on and cheap enough to leave on: recording takes one shard
//! mutex, never allocates beyond the summary it stores, and old records
//! fall off the ring instead of growing it. When something goes wrong —
//! a trap, a refusal, a request past the slow threshold — the daemon
//! dumps the ring into the event log, reconstructing what it was doing
//! leading up to the incident; `hloc remote flight` pulls the same dump
//! over the wire on demand.
//!
//! Records are ordered by a global sequence number so a dump reads in
//! admission order even though records land in different shards.

use crate::event::{Event, EventLevel};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One request's summary, as kept by the recorder.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlightRecord {
    /// Global admission order (assigned by [`FlightRecorder::record`]).
    pub seq: u64,
    /// The request's 16-hex trace id, or `-` when it carried none.
    pub trace_id: String,
    /// Request kind (`optimize`, …).
    pub kind: String,
    /// What happened: `hit`, `miss`, `stale`, `refused`, `error`, `trap`.
    pub outcome: String,
    /// Reason code qualifying the outcome (`ok`, `busy`, `draining`,
    /// `deadline`, `slow`, or an error class).
    pub reason: String,
    /// Request payload size on the wire.
    pub req_bytes: u64,
    /// Response payload size on the wire.
    pub resp_bytes: u64,
    /// Measured `(phase, microseconds)` pairs, in phase order.
    pub phases: Vec<(String, u64)>,
}

impl FlightRecord {
    /// Renders the record as one event-encoded line (level `info`, name
    /// `flight`), phases as `<phase>_us` fields.
    pub fn to_line(&self) -> String {
        let mut e = Event::new(EventLevel::Info, "flight")
            .field("seq", self.seq)
            .field(
                "id",
                if self.trace_id.is_empty() {
                    "-"
                } else {
                    &self.trace_id
                },
            )
            .field("kind", &self.kind)
            .field("outcome", &self.outcome)
            .field("reason", &self.reason)
            .field("req_bytes", self.req_bytes)
            .field("resp_bytes", self.resp_bytes);
        for (phase, us) in &self.phases {
            e = e.field(&format!("{phase}_us"), us);
        }
        e.to_line()
    }

    /// Parses one [`FlightRecord::to_line`] line. Any field key ending in
    /// `_us` is read back as a phase; unknown other fields are ignored
    /// for forward compatibility.
    ///
    /// # Errors
    /// Describes the malformed line or field.
    pub fn from_line(line: &str) -> Result<FlightRecord, String> {
        let e = Event::parse(line)?;
        if e.name != "flight" {
            return Err(format!("not a flight record: `{}`", e.name));
        }
        let mut r = FlightRecord::default();
        let num = |k: &str, v: &str| {
            v.parse::<u64>()
                .map_err(|_| format!("bad numeric field `{k}={v}`"))
        };
        for (k, v) in &e.fields {
            match k.as_str() {
                "seq" => r.seq = num(k, v)?,
                "id" => r.trace_id = v.clone(),
                "kind" => r.kind = v.clone(),
                "outcome" => r.outcome = v.clone(),
                "reason" => r.reason = v.clone(),
                "req_bytes" => r.req_bytes = num(k, v)?,
                "resp_bytes" => r.resp_bytes = num(k, v)?,
                _ => {
                    if let Some(phase) = k.strip_suffix("_us") {
                        r.phases.push((phase.to_string(), num(k, v)?));
                    }
                }
            }
        }
        Ok(r)
    }
}

const SHARD_COUNT: usize = 8;

/// The ring. Capacity is split across [`SHARD_COUNT`] independently
/// locked shards; records are assigned to shards round-robin by sequence
/// number, so concurrent recorders rarely contend and a dump still
/// reconstructs global admission order from the sequence numbers.
#[derive(Debug)]
pub struct FlightRecorder {
    shards: Vec<Mutex<VecDeque<FlightRecord>>>,
    seq: AtomicU64,
    shard_cap: usize,
}

impl FlightRecorder {
    /// A recorder keeping roughly the last `cap` records (rounded up to a
    /// multiple of the shard count; `cap == 0` keeps one per shard).
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            seq: AtomicU64::new(0),
            shard_cap: cap.div_ceil(SHARD_COUNT).max(1),
        }
    }

    /// Admits one record, stamping its sequence number (returned). The
    /// shard's oldest record is dropped past capacity.
    pub fn record(&self, mut rec: FlightRecord) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        rec.seq = seq;
        let mut shard = self.shards[(seq % SHARD_COUNT as u64) as usize]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        shard.push_back(rec);
        while shard.len() > self.shard_cap {
            shard.pop_front();
        }
        seq
    }

    /// Total records ever admitted.
    pub fn admitted(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Records currently resident.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// True when nothing has been recorded (or everything fell off).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the resident records, sorted by admission order.
    pub fn dump(&self) -> Vec<FlightRecord> {
        let mut all: Vec<FlightRecord> = Vec::new();
        for shard in &self.shards {
            all.extend(
                shard
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .iter()
                    .cloned(),
            );
        }
        all.sort_by_key(|r| r.seq);
        all
    }

    /// The dump as text, one [`FlightRecord::to_line`] line each.
    pub fn dump_text(&self) -> String {
        let mut out = String::new();
        for r in self.dump() {
            out.push_str(&r.to_line());
            out.push('\n');
        }
        out
    }
}

/// Parses a [`FlightRecorder::dump_text`] document.
///
/// # Errors
/// Describes the first malformed line.
pub fn parse_flight_dump(text: &str) -> Result<Vec<FlightRecord>, String> {
    text.lines().map(FlightRecord::from_line).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: &str, outcome: &str) -> FlightRecord {
        FlightRecord {
            seq: 0,
            trace_id: id.to_string(),
            kind: "optimize".to_string(),
            outcome: outcome.to_string(),
            reason: "ok".to_string(),
            req_bytes: 100,
            resp_bytes: 2000,
            phases: vec![
                ("queue_wait".to_string(), 12),
                ("cache_probe".to_string(), 3),
                ("optimize".to_string(), 4500),
                ("reply".to_string(), 9),
            ],
        }
    }

    #[test]
    fn record_line_roundtrips() {
        let mut r = rec("00ab34cd56ef7890", "miss");
        r.seq = 41;
        let back = FlightRecord::from_line(&r.to_line()).unwrap();
        assert_eq!(back, r);
        assert!(FlightRecord::from_line("info notflight seq=0").is_err());
        assert!(FlightRecord::from_line("info flight seq=x").is_err());
    }

    #[test]
    fn dump_is_in_admission_order_and_bounded() {
        let fr = FlightRecorder::new(16);
        for i in 0..40 {
            fr.record(rec(&format!("{i:016x}"), "hit"));
        }
        assert_eq!(fr.admitted(), 40);
        let dump = fr.dump();
        assert!(dump.len() <= 16 + SHARD_COUNT); // shard rounding slack
        assert!(dump.windows(2).all(|w| w[0].seq < w[1].seq));
        // The newest record always survives.
        assert_eq!(dump.last().unwrap().seq, 39);
        let parsed = parse_flight_dump(&fr.dump_text()).unwrap();
        assert_eq!(parsed, dump);
    }

    #[test]
    fn concurrent_recording_keeps_every_seq_unique() {
        let fr = FlightRecorder::new(1024);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..64 {
                        fr.record(rec("-", "hit"));
                    }
                });
            }
        });
        let dump = fr.dump();
        assert_eq!(dump.len(), 512);
        assert!(dump.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn zero_cap_keeps_the_ring_tiny_but_alive() {
        let fr = FlightRecorder::new(0);
        for _ in 0..100 {
            fr.record(rec("-", "hit"));
        }
        assert!(!fr.is_empty());
        assert!(fr.len() <= SHARD_COUNT);
    }
}
