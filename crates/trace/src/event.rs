//! The structured event log: leveled, key=value events with a canonical
//! one-line text encoding and a strict parser.
//!
//! The daemon narrates its lifecycle here — request start/finish/refusal,
//! cache evictions, PGO re-optimizations, incremental fallbacks, drain,
//! persisted-store save errors — one [`Event`] per occurrence. Encoding is
//! dependency-free and lossless: every event renders to exactly one line
//! (`<level> <name> key=value key=value …`), values escape whitespace and
//! backslashes, and [`Event::parse`] rejects anything the encoder could
//! not have produced. [`Event::normalized`] strips the time-valued fields
//! (`ts` and any `*_us`/`*_ms` key), which is what lets the determinism
//! gate compare event-log *content* across `--jobs` values.
//!
//! Sinks are deliberately boring: an append-mode file written one
//! `write + flush` per line (crash-safe — a torn write loses at most the
//! final line), and/or stderr. The log itself never reads a clock;
//! callers supply timestamps as ordinary fields.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Event severity. Ordered: `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum EventLevel {
    /// Chatty diagnostics.
    Debug,
    /// Normal lifecycle events.
    #[default]
    Info,
    /// Something degraded but handled (fallback, refusal, slow request).
    Warn,
    /// Something failed (save error, trap).
    Error,
}

impl EventLevel {
    /// The canonical wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            EventLevel::Debug => "debug",
            EventLevel::Info => "info",
            EventLevel::Warn => "warn",
            EventLevel::Error => "error",
        }
    }
}

impl std::fmt::Display for EventLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for EventLevel {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "debug" => Ok(EventLevel::Debug),
            "info" => Ok(EventLevel::Info),
            "warn" => Ok(EventLevel::Warn),
            "error" => Ok(EventLevel::Error),
            other => Err(format!("bad event level `{other}`")),
        }
    }
}

/// True for the identifier charset event names and field keys share:
/// lowercase alphanumerics plus `_`, `.` and `-`, non-empty.
fn is_token(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "_.-".contains(c))
}

/// Escapes a field value for the one-line encoding: `\\` for backslash,
/// `\s` for space, `\n`/`\r`/`\t` for the control whitespace. Everything
/// else (including `=`, quotes and non-ASCII) passes through literally.
fn escape_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\s"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

/// Strictly reverses [`escape_value`]: a backslash must introduce one of
/// the five defined escapes, and no raw whitespace may appear.
fn unescape_value(v: &str) -> Result<String, String> {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some('\\') => out.push('\\'),
                Some('s') => out.push(' '),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                other => return Err(format!("bad escape `\\{}`", other.unwrap_or(' '))),
            },
            ' ' | '\n' | '\r' | '\t' => return Err("raw whitespace in value".to_string()),
            c => out.push(c),
        }
    }
    Ok(out)
}

/// One structured event: a level, a name, and ordered key=value fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Severity.
    pub level: EventLevel,
    /// Event name (`request.finish`, `cache.evict`, …): a lowercase
    /// `[a-z0-9_.-]+` token.
    pub name: String,
    /// Ordered fields. Keys share the name's token charset; values are
    /// arbitrary text (escaped on the wire).
    pub fields: Vec<(String, String)>,
}

impl Event {
    /// An event with no fields yet. `name` must be a valid token
    /// (debug-asserted; [`Event::to_line`] output would otherwise not
    /// re-parse).
    pub fn new(level: EventLevel, name: &str) -> Event {
        debug_assert!(is_token(name), "bad event name `{name}`");
        Event {
            level,
            name: name.to_string(),
            fields: Vec::new(),
        }
    }

    /// Appends a field (builder-style).
    pub fn field(mut self, key: &str, value: impl std::fmt::Display) -> Event {
        debug_assert!(is_token(key), "bad field key `{key}`");
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// First value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The canonical one-line encoding (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut s = format!("{} {}", self.level, self.name);
        for (k, v) in &self.fields {
            s.push(' ');
            s.push_str(k);
            s.push('=');
            s.push_str(&escape_value(v));
        }
        s
    }

    /// Strictly parses one encoded line: the level must be a known
    /// spelling, name and keys must be valid tokens, every field must
    /// carry `=`, and values may use only the defined escapes.
    ///
    /// # Errors
    /// Describes the first malformed token.
    pub fn parse(line: &str) -> Result<Event, String> {
        let mut parts = line.split(' ');
        let level: EventLevel = parts.next().unwrap_or("").parse()?;
        let name = parts.next().ok_or("missing event name")?;
        if !is_token(name) {
            return Err(format!("bad event name `{name}`"));
        }
        let mut fields = Vec::new();
        for part in parts {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("field `{part}` has no `=`"))?;
            if !is_token(k) {
                return Err(format!("bad field key `{k}`"));
            }
            fields.push((k.to_string(), unescape_value(v)?));
        }
        Ok(Event {
            level,
            name: name.to_string(),
            fields,
        })
    }

    /// The event with measured fields removed: `ts`, and any key ending
    /// in `_us`, `_ms`, or `_bytes` (payload sizes embed rendered wall
    /// times, so they are measured too). Two runs doing the same work
    /// produce the same normalized events regardless of scheduling or
    /// `--jobs` — the form the determinism gate compares.
    pub fn normalized(&self) -> Event {
        Event {
            level: self.level,
            name: self.name.clone(),
            fields: self
                .fields
                .iter()
                .filter(|(k, _)| {
                    k != "ts"
                        && !k.ends_with("_us")
                        && !k.ends_with("_ms")
                        && !k.ends_with("_bytes")
                })
                .cloned()
                .collect(),
        }
    }
}

/// Normalizes a whole event-log text: parses each line, drops time-valued
/// fields (see [`Event::normalized`]), re-encodes. Unparsable lines are
/// kept verbatim so the comparison still fails loudly on garbage.
pub fn normalize_log(text: &str) -> String {
    let mut out = String::new();
    for line in text.lines() {
        match Event::parse(line) {
            Ok(e) => out.push_str(&e.normalized().to_line()),
            Err(_) => out.push_str(line),
        }
        out.push('\n');
    }
    out
}

enum Sink {
    File(File),
    Stderr,
    Memory(Vec<String>),
}

/// A leveled event log fanning out to any combination of sinks. Emission
/// is one formatted line per event, written and flushed atomically per
/// sink under one lock — crash-safe append for the file sink.
pub struct EventLog {
    sinks: Mutex<Vec<Sink>>,
    min_level: EventLevel,
    emitted: AtomicU64,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("min_level", &self.min_level)
            .field("emitted", &self.emitted.load(Ordering::Relaxed))
            .finish()
    }
}

impl EventLog {
    /// A log with no sinks: emissions count but go nowhere.
    pub fn disabled() -> EventLog {
        EventLog {
            sinks: Mutex::new(Vec::new()),
            min_level: EventLevel::Debug,
            emitted: AtomicU64::new(0),
        }
    }

    /// Builds a log from the daemon's knobs: an append-mode file when
    /// `path` is given, stderr when `stderr` is set (both may be active).
    ///
    /// # Errors
    /// Propagates the file open failure.
    pub fn new(path: Option<&Path>, stderr: bool) -> std::io::Result<EventLog> {
        let mut sinks = Vec::new();
        if let Some(p) = path {
            sinks.push(Sink::File(
                OpenOptions::new().create(true).append(true).open(p)?,
            ));
        }
        if stderr {
            sinks.push(Sink::Stderr);
        }
        Ok(EventLog {
            sinks: Mutex::new(sinks),
            min_level: EventLevel::Debug,
            emitted: AtomicU64::new(0),
        })
    }

    /// A log capturing lines in memory — for tests.
    pub fn in_memory() -> EventLog {
        EventLog {
            sinks: Mutex::new(vec![Sink::Memory(Vec::new())]),
            min_level: EventLevel::Debug,
            emitted: AtomicU64::new(0),
        }
    }

    /// True when at least one sink is attached — lets callers skip
    /// building events nobody will see.
    pub fn enabled(&self) -> bool {
        !self
            .sinks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
    }

    /// Events emitted so far (counted whether or not any sink is
    /// attached).
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Emits one event to every sink.
    pub fn emit(&self, event: &Event) {
        self.emitted.fetch_add(1, Ordering::Relaxed);
        if event.level < self.min_level {
            return;
        }
        let mut sinks = self.sinks.lock().unwrap_or_else(|e| e.into_inner());
        if sinks.is_empty() {
            return;
        }
        let mut line = event.to_line();
        line.push('\n');
        for sink in sinks.iter_mut() {
            match sink {
                Sink::File(f) => {
                    // One write + flush per line: a crash tears at most
                    // the final line, never reorders earlier ones.
                    let _ = f.write_all(line.as_bytes());
                    let _ = f.flush();
                }
                Sink::Stderr => {
                    let _ = std::io::stderr().lock().write_all(line.as_bytes());
                }
                Sink::Memory(lines) => lines.push(event.to_line()),
            }
        }
    }

    /// Lines captured by the in-memory sink (empty for other sinks).
    pub fn memory_lines(&self) -> Vec<String> {
        let sinks = self.sinks.lock().unwrap_or_else(|e| e.into_inner());
        for s in sinks.iter() {
            if let Sink::Memory(lines) = s {
                return lines.clone();
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_roundtrips_with_escapes() {
        let e = Event::new(EventLevel::Warn, "request.finish")
            .field("id", "00ab34cd56ef7890")
            .field("msg", "bad profile: line `f g`\nsecond\tline \\ end")
            .field("wall_us", 1234u64);
        let line = e.to_line();
        assert!(!line.contains('\n'));
        assert_eq!(Event::parse(&line).unwrap(), e);
    }

    #[test]
    fn empty_values_and_no_fields_roundtrip() {
        let bare = Event::new(EventLevel::Info, "daemon.drain");
        assert_eq!(Event::parse(&bare.to_line()).unwrap(), bare);
        let empty = Event::new(EventLevel::Info, "x").field("k", "");
        assert_eq!(Event::parse(&empty.to_line()).unwrap(), empty);
    }

    #[test]
    fn parser_is_strict() {
        assert!(Event::parse("").is_err());
        assert!(Event::parse("loud name").is_err()); // bad level
        assert!(Event::parse("info").is_err()); // no name
        assert!(Event::parse("info Bad.Name").is_err()); // uppercase name
        assert!(Event::parse("info ok novalue").is_err()); // field without =
        assert!(Event::parse("info ok K=v").is_err()); // bad key charset
        assert!(Event::parse("info ok k=\\q").is_err()); // unknown escape
        assert!(Event::parse("info ok k=\\").is_err()); // dangling backslash
    }

    #[test]
    fn normalized_strips_measured_fields_only() {
        let e = Event::new(EventLevel::Info, "request.finish")
            .field("id", "aa")
            .field("outcome", "miss")
            .field("ts", "123456")
            .field("wall_us", 88u64)
            .field("uptime_ms", 9u64)
            .field("resp_bytes", 400u64);
        let n = e.normalized();
        assert_eq!(
            n.fields,
            vec![
                ("id".to_string(), "aa".to_string()),
                ("outcome".to_string(), "miss".to_string())
            ]
        );
        let text = format!("{}\n", e.to_line());
        assert_eq!(normalize_log(&text), format!("{}\n", n.to_line()));
    }

    #[test]
    fn levels_order_and_roundtrip() {
        assert!(EventLevel::Debug < EventLevel::Info);
        assert!(EventLevel::Warn < EventLevel::Error);
        for l in [
            EventLevel::Debug,
            EventLevel::Info,
            EventLevel::Warn,
            EventLevel::Error,
        ] {
            assert_eq!(l.as_str().parse::<EventLevel>().unwrap(), l);
        }
    }

    #[test]
    fn file_sink_appends_and_memory_sink_captures() {
        let dir = std::env::temp_dir().join(format!("hlo-event-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.log");
        let _ = std::fs::remove_file(&path);
        {
            let log = EventLog::new(Some(&path), false).unwrap();
            assert!(log.enabled());
            log.emit(&Event::new(EventLevel::Info, "a").field("n", 1));
        }
        {
            // Re-opening appends rather than truncating.
            let log = EventLog::new(Some(&path), false).unwrap();
            log.emit(&Event::new(EventLevel::Info, "b").field("n", 2));
            assert_eq!(log.emitted(), 1);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "info a n=1\ninfo b n=2\n");
        std::fs::remove_file(&path).unwrap();

        let mem = EventLog::in_memory();
        mem.emit(&Event::new(EventLevel::Error, "oops"));
        assert_eq!(mem.memory_lines(), vec!["error oops".to_string()]);

        let off = EventLog::disabled();
        assert!(!off.enabled());
        off.emit(&Event::new(EventLevel::Info, "nowhere"));
        assert_eq!(off.emitted(), 1);
        assert!(off.memory_lines().is_empty());
    }
}
