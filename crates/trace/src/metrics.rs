//! A lock-sharded metrics registry: counters, gauges and fixed-bucket
//! histograms with a Prometheus-style text exposition.
//!
//! Updates take `&self` and are safe from the `par.rs` worker pool. Every
//! update commutes (counters add, histograms add per bucket, gauges are
//! last-write-wins and reserved for daemon-side occupancy numbers), so
//! for the optimizer's deterministic counters the exposed text is
//! byte-identical at any `--jobs` value. The exposition sorts series by
//! name, which removes the only other ordering freedom.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Bucket upper bounds (microseconds) used for request/phase latency
/// histograms: 100 µs to 10 s in half-decade steps.
pub const LATENCY_BUCKETS_US: &[u64] = &[
    100, 300, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000, 10_000_000,
];

/// Bucket upper bounds for profile-drift scores, in thousandths of the
/// maximum drift (a score of 1000 means total divergence). The top
/// bound equals the maximum, so the `+Inf` bucket stays empty.
pub const DRIFT_BUCKETS_MILLIS: &[u64] = &[10, 25, 50, 100, 250, 500, 750, 1000];

#[derive(Debug, Clone)]
enum Metric {
    Counter(u64),
    Gauge(i64),
    Histogram {
        bounds: Vec<u64>,
        /// One count per bound, plus the trailing `+Inf` bucket.
        counts: Vec<u64>,
        sum: u64,
        count: u64,
    },
}

const SHARD_COUNT: usize = 8;

/// The registry. Series names may carry Prometheus-style labels inline
/// (`requests_total{kind="optimize"}`); the exposition groups series by
/// base name.
#[derive(Debug)]
pub struct MetricsRegistry {
    shards: Vec<Mutex<HashMap<String, Metric>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

fn shard_of(name: &str) -> usize {
    // FNV-1a, reduced to a shard index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % SHARD_COUNT as u64) as usize
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn with_shard<R>(&self, name: &str, f: impl FnOnce(&mut HashMap<String, Metric>) -> R) -> R {
        let mut guard = self.shards[shard_of(name)]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        f(&mut guard)
    }

    /// Adds `delta` to the counter `name`, creating it at zero.
    pub fn add(&self, name: &str, delta: u64) {
        self.with_shard(name, |m| {
            match m.entry(name.to_string()).or_insert(Metric::Counter(0)) {
                Metric::Counter(c) => *c += delta,
                _ => debug_assert!(false, "metric `{name}` is not a counter"),
            }
        });
    }

    /// Increments the counter `name` by one.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Sets the gauge `name` (last write wins — not deterministic under
    /// concurrency; use only for occupancy-style values).
    pub fn set_gauge(&self, name: &str, value: i64) {
        self.with_shard(name, |m| {
            m.insert(name.to_string(), Metric::Gauge(value));
        });
    }

    /// Records `value` into the fixed-bucket histogram `name`. The first
    /// observation fixes the bucket bounds; later calls may pass the same
    /// bounds (or any slice — only the first registration counts).
    pub fn observe(&self, name: &str, bounds: &[u64], value: u64) {
        self.with_shard(name, |m| {
            let metric = m
                .entry(name.to_string())
                .or_insert_with(|| Metric::Histogram {
                    bounds: bounds.to_vec(),
                    counts: vec![0; bounds.len() + 1],
                    sum: 0,
                    count: 0,
                });
            if let Metric::Histogram {
                bounds,
                counts,
                sum,
                count,
            } = metric
            {
                let idx = bounds
                    .iter()
                    .position(|&b| value <= b)
                    .unwrap_or(bounds.len());
                counts[idx] += 1;
                *sum = sum.saturating_add(value);
                *count += 1;
            } else {
                debug_assert!(false, "metric `{name}` is not a histogram");
            }
        });
    }

    /// Reads a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.with_shard(name, |m| match m.get(name) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        })
    }

    /// Reads a gauge (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.with_shard(name, |m| match m.get(name) {
            Some(Metric::Gauge(g)) => *g,
            _ => 0,
        })
    }

    /// Reads a histogram's `(count, sum)` (zeros when absent).
    pub fn histogram(&self, name: &str) -> (u64, u64) {
        self.with_shard(name, |m| match m.get(name) {
            Some(Metric::Histogram { count, sum, .. }) => (*count, *sum),
            _ => (0, 0),
        })
    }

    /// Renders every series as Prometheus-style text exposition, sorted by
    /// series name. Counter and gauge series print as `name value`;
    /// histograms expand to `_bucket{le=…}`, `_sum` and `_count` lines.
    /// One `# TYPE` comment precedes each base name.
    pub fn expose(&self) -> String {
        let mut all: Vec<(String, Metric)> = Vec::new();
        for shard in &self.shards {
            let guard = shard.lock().unwrap_or_else(|e| e.into_inner());
            for (k, v) in guard.iter() {
                all.push((k.clone(), v.clone()));
            }
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::new();
        let mut last_base = String::new();
        for (name, metric) in &all {
            let base = name.split('{').next().unwrap_or(name);
            if base != last_base {
                let kind = match metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram { .. } => "histogram",
                };
                out.push_str(&format!("# TYPE {base} {kind}\n"));
                last_base = base.to_string();
            }
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{name} {c}\n")),
                Metric::Gauge(g) => out.push_str(&format!("{name} {g}\n")),
                Metric::Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                } => {
                    let mut cum = 0u64;
                    for (i, b) in bounds.iter().enumerate() {
                        cum += counts[i];
                        out.push_str(&format!("{name}_bucket{{le=\"{b}\"}} {cum}\n"));
                    }
                    cum += counts[bounds.len()];
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cum}\n"));
                    out.push_str(&format!("{name}_sum {sum}\n"));
                    out.push_str(&format!("{name}_count {count}\n"));
                }
            }
        }
        out
    }
}

/// One parsed exposition series: `(series name with labels, value)`.
/// Histogram expansions appear as their individual `_bucket`/`_sum`/
/// `_count` series.
pub type ExpositionSeries = (String, i128);

/// Strictly parses a [`MetricsRegistry::expose`] document back into its
/// series. Accepted lines are exactly the two shapes the encoder emits:
/// `# TYPE <base> counter|gauge|histogram` comments and
/// `<series> <integer>` samples (series = identifier, optionally with a
/// `{key="value",…}` label block). Anything else is an error — this is
/// the "strict reader" contract the exposition promises scrapers.
///
/// # Errors
/// Describes the first malformed line.
pub fn parse_exposition(text: &str) -> Result<Vec<ExpositionSeries>, String> {
    fn valid_series(name: &str) -> bool {
        let (base, labels) = match name.split_once('{') {
            Some((b, l)) => (b, Some(l)),
            None => (name, None),
        };
        let base_ok = !base.is_empty()
            && base
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
        let labels_ok = match labels {
            None => true,
            // `key="value",key="value"` with a closing brace; values may
            // hold anything except a raw quote.
            Some(l) => match l.strip_suffix('}') {
                None => false,
                Some(body) => body.split(',').all(|pair| {
                    pair.split_once('=').is_some_and(|(k, v)| {
                        !k.is_empty()
                            && k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                            && v.len() >= 2
                            && v.starts_with('"')
                            && v.ends_with('"')
                            && !v[1..v.len() - 1].contains('"')
                    })
                }),
            },
        };
        base_ok && labels_ok
    }
    let mut out = Vec::new();
    for line in text.lines() {
        if let Some(comment) = line.strip_prefix("# TYPE ") {
            let mut parts = comment.split(' ');
            let (base, kind) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
            if !valid_series(base) || parts.next().is_some() {
                return Err(format!("bad TYPE comment `{line}`"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("bad metric kind in `{line}`"));
            }
            continue;
        }
        // Labels may contain spaces inside quoted values, so split at the
        // *last* space: everything before is the series name.
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("bad exposition line `{line}`"))?;
        if !valid_series(name) {
            return Err(format!("bad series name `{name}`"));
        }
        let value: i128 = value
            .parse()
            .map_err(|_| format!("bad sample value in `{line}`"))?;
        out.push((name.to_string(), value));
    }
    Ok(out)
}

/// Bucket upper bounds of the [`QuantileSketch`]: `0, 1, 2, …` growing by
/// `max(1, b/4)` per step — at most 25% relative spacing — until the last
/// bound, `u64::MAX`. Computed once; identical in every process.
fn sketch_bounds() -> &'static [u64] {
    static BOUNDS: OnceLock<Vec<u64>> = OnceLock::new();
    BOUNDS.get_or_init(|| {
        let mut b = vec![0u64];
        let mut v = 0u64;
        while v < u64::MAX {
            // Step by ≤ 25% all the way to saturation, so the top bucket
            // honours the same relative bound as the rest of the range.
            v = v.saturating_add((v / 4).max(1));
            b.push(v);
        }
        b
    })
}

/// The documented relative error bound of [`QuantileSketch::quantile`],
/// in percent: a reported quantile `q` satisfies `v ≤ q ≤ v·1.25` for the
/// true order statistic `v` (exact for `v ≤ 4`, where buckets are
/// single-valued).
pub const SKETCH_ERROR_PERCENT: u64 = 25;

/// A deterministic streaming quantile sketch: fixed-size geometric
/// buckets, integer-only, mergeable.
///
/// Values land in buckets whose upper bounds grow by at most 25% per
/// step ([`sketch_bounds`]); a quantile query returns the upper bound of
/// the bucket holding the requested rank, so the answer overshoots the
/// true order statistic by at most [`SKETCH_ERROR_PERCENT`] percent and
/// never undershoots. No clocks, no floats — the text form
/// ([`QuantileSketch::to_text`]) is integers only and byte-stable, and
/// merging two sketches is per-bucket addition, so merged totals are
/// independent of merge order (the same property the registry's counters
/// rely on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> QuantileSketch {
        QuantileSketch {
            counts: vec![0; sketch_bounds().len()],
            count: 0,
            sum: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let idx = sketch_bounds().partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Folds another sketch in (per-bucket addition; order-independent).
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The quantile at `permille` (e.g. 500 = p50, 990 = p99): the upper
    /// bound of the bucket holding that rank. Returns 0 on an empty
    /// sketch; `permille` is clamped to 1000.
    pub fn quantile(&self, permille: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // ceil(permille/1000 · count), at least rank 1.
        let rank = (self.count.saturating_mul(permille.min(1000)))
            .div_ceil(1000)
            .max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return sketch_bounds()[i];
            }
        }
        u64::MAX
    }

    /// Serializes as integer-only text: a version line, totals, then one
    /// `bucket <index> <count>` line per occupied bucket.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "quantile-sketch v1\ncount {}\nsum {}\n",
            self.count, self.sum
        );
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                out.push_str(&format!("bucket {i} {c}\n"));
            }
        }
        out
    }

    /// Parses [`QuantileSketch::to_text`]; bucket counts must re-total to
    /// the `count` line.
    ///
    /// # Errors
    /// Describes the malformed or inconsistent line.
    pub fn from_text(text: &str) -> Result<QuantileSketch, String> {
        let mut lines = text.lines();
        if lines.next() != Some("quantile-sketch v1") {
            return Err("missing `quantile-sketch v1` header".to_string());
        }
        let mut s = QuantileSketch::new();
        let mut total = 0u64;
        for line in lines {
            let mut parts = line.split(' ');
            match parts.next() {
                Some("count") => {
                    s.count = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| format!("bad count line `{line}`"))?;
                }
                Some("sum") => {
                    s.sum = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| format!("bad sum line `{line}`"))?;
                }
                Some("bucket") => {
                    let idx: usize = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&i| i < s.counts.len())
                        .ok_or_else(|| format!("bad bucket index in `{line}`"))?;
                    let c: u64 = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| format!("bad bucket count in `{line}`"))?;
                    s.counts[idx] = c;
                    total += c;
                }
                _ => return Err(format!("bad sketch line `{line}`")),
            }
        }
        if total != s.count {
            return Err(format!(
                "bucket counts total {total}, count line says {}",
                s.count
            ));
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_expose_sorted() {
        let m = MetricsRegistry::new();
        m.inc("zeta_total");
        m.add("alpha_total", 41);
        m.inc("alpha_total");
        assert_eq!(m.counter("alpha_total"), 42);
        assert_eq!(m.counter("absent"), 0);
        let text = m.expose();
        let alpha = text.find("alpha_total 42").unwrap();
        let zeta = text.find("zeta_total 1").unwrap();
        assert!(alpha < zeta, "{text}");
        assert!(text.contains("# TYPE alpha_total counter"));
    }

    #[test]
    fn labeled_series_share_one_type_comment() {
        let m = MetricsRegistry::new();
        m.inc("req_total{kind=\"a\"}");
        m.inc("req_total{kind=\"b\"}");
        let text = m.expose();
        assert_eq!(text.matches("# TYPE req_total counter").count(), 1);
        assert!(text.contains("req_total{kind=\"a\"} 1"));
        assert!(text.contains("req_total{kind=\"b\"} 1"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = MetricsRegistry::new();
        for v in [50, 150, 150, 5_000_000_000] {
            m.observe("lat_us", &[100, 1000], v);
        }
        let (count, sum) = m.histogram("lat_us");
        assert_eq!(count, 4);
        assert_eq!(sum, 50 + 150 + 150 + 5_000_000_000);
        let text = m.expose();
        assert!(text.contains("lat_us_bucket{le=\"100\"} 1"), "{text}");
        assert!(text.contains("lat_us_bucket{le=\"1000\"} 3"), "{text}");
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 4"), "{text}");
        assert!(text.contains("lat_us_count 4"), "{text}");
    }

    #[test]
    fn gauges_overwrite() {
        let m = MetricsRegistry::new();
        m.set_gauge("entries", 3);
        m.set_gauge("entries", 7);
        assert_eq!(m.gauge("entries"), 7);
        assert!(m.expose().contains("# TYPE entries gauge"));
    }

    #[test]
    fn exposition_reparses_strictly() {
        let m = MetricsRegistry::new();
        m.inc("req_total{kind=\"a b\"}");
        m.set_gauge("entries", -3);
        m.observe("lat_us", &[100, 1000], 150);
        let series = parse_exposition(&m.expose()).unwrap();
        assert!(series.contains(&("req_total{kind=\"a b\"}".to_string(), 1)));
        assert!(series.contains(&("entries".to_string(), -3)));
        assert!(series.contains(&("lat_us_bucket{le=\"+Inf\"}".to_string(), 1)));
        assert!(series.contains(&("lat_us_count".to_string(), 1)));

        assert!(parse_exposition("name\n").is_err()); // no value
        assert!(parse_exposition("name x\n").is_err()); // non-integer
        assert!(parse_exposition("bad name 1\n").is_err()); // space in name
        assert!(parse_exposition("name{k=v} 1\n").is_err()); // unquoted label
        assert!(parse_exposition("# TYPE t welp\n").is_err()); // bad kind
        assert!(parse_exposition("# TYPE t\n").is_err()); // missing kind
    }

    #[test]
    fn sketch_bounds_are_error_bounded_and_cover_u64() {
        let b = sketch_bounds();
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().unwrap(), u64::MAX);
        for w in b.windows(2) {
            assert!(w[1] > w[0]);
            // ≤ 25% spacing past the unit-step region, everywhere.
            assert!(w[1] - w[0] <= (w[0] / 4).max(1), "{} -> {}", w[0], w[1]);
        }
        assert!(b.len() < 300, "sketch stays small: {} buckets", b.len());
    }

    #[test]
    fn sketch_quantiles_stay_within_the_documented_bound() {
        // A known synthetic distribution: 1..=1000 once each.
        let mut s = QuantileSketch::new();
        for v in 1..=1000u64 {
            s.record(v);
        }
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum(), 500_500);
        for (permille, truth) in [(500u64, 500u64), (950, 950), (990, 990), (1000, 1000)] {
            let q = s.quantile(permille);
            assert!(q >= truth, "p{permille}: {q} < {truth}");
            assert!(
                q <= truth + truth * SKETCH_ERROR_PERCENT / 100,
                "p{permille}: {q} overshoots {truth}"
            );
        }
        assert_eq!(QuantileSketch::new().quantile(500), 0);
        // Small values are exact (unit-width buckets).
        let mut small = QuantileSketch::new();
        for v in [1u64, 2, 3, 4] {
            small.record(v);
        }
        assert_eq!(small.quantile(500), 2);
        assert_eq!(small.quantile(1000), 4);
    }

    #[test]
    fn sketch_merge_is_order_independent_and_text_roundtrips() {
        let (mut a, mut b) = (QuantileSketch::new(), QuantileSketch::new());
        for v in [5u64, 70, 70, 9_000] {
            a.record(v);
        }
        for v in [1u64, 1_000_000, 33] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 7);

        let back = QuantileSketch::from_text(&ab.to_text()).unwrap();
        assert_eq!(back, ab);
        assert!(QuantileSketch::from_text("nope").is_err());
        assert!(QuantileSketch::from_text("quantile-sketch v1\ncount 2\n").is_err());
        assert!(
            QuantileSketch::from_text("quantile-sketch v1\ncount 0\nsum 0\nbucket 999999 1\n")
                .is_err()
        );
    }

    #[test]
    fn concurrent_updates_total_deterministically() {
        let m = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..1000u64 {
                        m.inc("spins_total");
                        m.observe("spin_us", LATENCY_BUCKETS_US, i);
                    }
                });
            }
        });
        assert_eq!(m.counter("spins_total"), 8000);
        assert_eq!(m.histogram("spin_us").0, 8000);
    }
}
