//! A lock-sharded metrics registry: counters, gauges and fixed-bucket
//! histograms with a Prometheus-style text exposition.
//!
//! Updates take `&self` and are safe from the `par.rs` worker pool. Every
//! update commutes (counters add, histograms add per bucket, gauges are
//! last-write-wins and reserved for daemon-side occupancy numbers), so
//! for the optimizer's deterministic counters the exposed text is
//! byte-identical at any `--jobs` value. The exposition sorts series by
//! name, which removes the only other ordering freedom.

use std::collections::HashMap;
use std::sync::Mutex;

/// Bucket upper bounds (microseconds) used for request/phase latency
/// histograms: 100 µs to 10 s in half-decade steps.
pub const LATENCY_BUCKETS_US: &[u64] = &[
    100, 300, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000, 10_000_000,
];

/// Bucket upper bounds for profile-drift scores, in thousandths of the
/// maximum drift (a score of 1000 means total divergence). The top
/// bound equals the maximum, so the `+Inf` bucket stays empty.
pub const DRIFT_BUCKETS_MILLIS: &[u64] = &[10, 25, 50, 100, 250, 500, 750, 1000];

#[derive(Debug, Clone)]
enum Metric {
    Counter(u64),
    Gauge(i64),
    Histogram {
        bounds: Vec<u64>,
        /// One count per bound, plus the trailing `+Inf` bucket.
        counts: Vec<u64>,
        sum: u64,
        count: u64,
    },
}

const SHARD_COUNT: usize = 8;

/// The registry. Series names may carry Prometheus-style labels inline
/// (`requests_total{kind="optimize"}`); the exposition groups series by
/// base name.
#[derive(Debug)]
pub struct MetricsRegistry {
    shards: Vec<Mutex<HashMap<String, Metric>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

fn shard_of(name: &str) -> usize {
    // FNV-1a, reduced to a shard index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % SHARD_COUNT as u64) as usize
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn with_shard<R>(&self, name: &str, f: impl FnOnce(&mut HashMap<String, Metric>) -> R) -> R {
        let mut guard = self.shards[shard_of(name)]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        f(&mut guard)
    }

    /// Adds `delta` to the counter `name`, creating it at zero.
    pub fn add(&self, name: &str, delta: u64) {
        self.with_shard(name, |m| {
            match m.entry(name.to_string()).or_insert(Metric::Counter(0)) {
                Metric::Counter(c) => *c += delta,
                _ => debug_assert!(false, "metric `{name}` is not a counter"),
            }
        });
    }

    /// Increments the counter `name` by one.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Sets the gauge `name` (last write wins — not deterministic under
    /// concurrency; use only for occupancy-style values).
    pub fn set_gauge(&self, name: &str, value: i64) {
        self.with_shard(name, |m| {
            m.insert(name.to_string(), Metric::Gauge(value));
        });
    }

    /// Records `value` into the fixed-bucket histogram `name`. The first
    /// observation fixes the bucket bounds; later calls may pass the same
    /// bounds (or any slice — only the first registration counts).
    pub fn observe(&self, name: &str, bounds: &[u64], value: u64) {
        self.with_shard(name, |m| {
            let metric = m
                .entry(name.to_string())
                .or_insert_with(|| Metric::Histogram {
                    bounds: bounds.to_vec(),
                    counts: vec![0; bounds.len() + 1],
                    sum: 0,
                    count: 0,
                });
            if let Metric::Histogram {
                bounds,
                counts,
                sum,
                count,
            } = metric
            {
                let idx = bounds
                    .iter()
                    .position(|&b| value <= b)
                    .unwrap_or(bounds.len());
                counts[idx] += 1;
                *sum = sum.saturating_add(value);
                *count += 1;
            } else {
                debug_assert!(false, "metric `{name}` is not a histogram");
            }
        });
    }

    /// Reads a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.with_shard(name, |m| match m.get(name) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        })
    }

    /// Reads a gauge (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.with_shard(name, |m| match m.get(name) {
            Some(Metric::Gauge(g)) => *g,
            _ => 0,
        })
    }

    /// Reads a histogram's `(count, sum)` (zeros when absent).
    pub fn histogram(&self, name: &str) -> (u64, u64) {
        self.with_shard(name, |m| match m.get(name) {
            Some(Metric::Histogram { count, sum, .. }) => (*count, *sum),
            _ => (0, 0),
        })
    }

    /// Renders every series as Prometheus-style text exposition, sorted by
    /// series name. Counter and gauge series print as `name value`;
    /// histograms expand to `_bucket{le=…}`, `_sum` and `_count` lines.
    /// One `# TYPE` comment precedes each base name.
    pub fn expose(&self) -> String {
        let mut all: Vec<(String, Metric)> = Vec::new();
        for shard in &self.shards {
            let guard = shard.lock().unwrap_or_else(|e| e.into_inner());
            for (k, v) in guard.iter() {
                all.push((k.clone(), v.clone()));
            }
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::new();
        let mut last_base = String::new();
        for (name, metric) in &all {
            let base = name.split('{').next().unwrap_or(name);
            if base != last_base {
                let kind = match metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram { .. } => "histogram",
                };
                out.push_str(&format!("# TYPE {base} {kind}\n"));
                last_base = base.to_string();
            }
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{name} {c}\n")),
                Metric::Gauge(g) => out.push_str(&format!("{name} {g}\n")),
                Metric::Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                } => {
                    let mut cum = 0u64;
                    for (i, b) in bounds.iter().enumerate() {
                        cum += counts[i];
                        out.push_str(&format!("{name}_bucket{{le=\"{b}\"}} {cum}\n"));
                    }
                    cum += counts[bounds.len()];
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cum}\n"));
                    out.push_str(&format!("{name}_sum {sum}\n"));
                    out.push_str(&format!("{name}_count {count}\n"));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_expose_sorted() {
        let m = MetricsRegistry::new();
        m.inc("zeta_total");
        m.add("alpha_total", 41);
        m.inc("alpha_total");
        assert_eq!(m.counter("alpha_total"), 42);
        assert_eq!(m.counter("absent"), 0);
        let text = m.expose();
        let alpha = text.find("alpha_total 42").unwrap();
        let zeta = text.find("zeta_total 1").unwrap();
        assert!(alpha < zeta, "{text}");
        assert!(text.contains("# TYPE alpha_total counter"));
    }

    #[test]
    fn labeled_series_share_one_type_comment() {
        let m = MetricsRegistry::new();
        m.inc("req_total{kind=\"a\"}");
        m.inc("req_total{kind=\"b\"}");
        let text = m.expose();
        assert_eq!(text.matches("# TYPE req_total counter").count(), 1);
        assert!(text.contains("req_total{kind=\"a\"} 1"));
        assert!(text.contains("req_total{kind=\"b\"} 1"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = MetricsRegistry::new();
        for v in [50, 150, 150, 5_000_000_000] {
            m.observe("lat_us", &[100, 1000], v);
        }
        let (count, sum) = m.histogram("lat_us");
        assert_eq!(count, 4);
        assert_eq!(sum, 50 + 150 + 150 + 5_000_000_000);
        let text = m.expose();
        assert!(text.contains("lat_us_bucket{le=\"100\"} 1"), "{text}");
        assert!(text.contains("lat_us_bucket{le=\"1000\"} 3"), "{text}");
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 4"), "{text}");
        assert!(text.contains("lat_us_count 4"), "{text}");
    }

    #[test]
    fn gauges_overwrite() {
        let m = MetricsRegistry::new();
        m.set_gauge("entries", 3);
        m.set_gauge("entries", 7);
        assert_eq!(m.gauge("entries"), 7);
        assert!(m.expose().contains("# TYPE entries gauge"));
    }

    #[test]
    fn concurrent_updates_total_deterministically() {
        let m = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..1000u64 {
                        m.inc("spins_total");
                        m.observe("spin_us", LATENCY_BUCKETS_US, i);
                    }
                });
            }
        });
        assert_eq!(m.counter("spins_total"), 8000);
        assert_eq!(m.histogram("spin_us").0, 8000);
    }
}
