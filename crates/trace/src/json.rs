//! A minimal, dependency-free JSON reader.
//!
//! Exists so the exporter can be validated (the tier-2 gate parses the
//! emitted trace and checks it against the Chrome trace-event shape)
//! without pulling a JSON crate into the workspace. It is a strict
//! recursive-descent parser over the JSON grammar — good enough for
//! machine-produced documents; it is not meant as a general-purpose
//! deserializer.

/// A parsed JSON value. Object keys keep their document order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document. Trailing whitespace is allowed;
/// trailing content is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4(self.pos + 1)?;
                            self.pos += 4;
                            if (0xd800..0xdc00).contains(&code)
                                && self.bytes.get(self.pos + 1..self.pos + 3) == Some(b"\\u")
                            {
                                // High surrogate followed by another \u
                                // escape: combine the pair into one
                                // astral scalar (the exporter emits
                                // non-BMP names this way).
                                let low = self.hex4(self.pos + 3)?;
                                if (0xdc00..0xe000).contains(&low) {
                                    let astral = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                    out.push(char::from_u32(astral).unwrap_or('\u{fffd}'));
                                    self.pos += 6;
                                    self.pos += 1;
                                    continue;
                                }
                            }
                            // Lone surrogates map to the replacement
                            // character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are sound).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads the four hex digits of a `\u` escape starting at byte `at`.
    fn hex4(&self, at: usize) -> Result<u32, String> {
        let hex = self.bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?;
        u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape `{hex}`"))
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e1").unwrap(), Json::Num(-125.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".to_string()));
        let v = parse("{\"k\": [1, {\"n\": \"v\"}, []], \"e\": {}}").unwrap();
        let arr = v.get("k").and_then(Json::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("n").and_then(Json::as_str), Some("v"));
        assert_eq!(v.get("e"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            parse("\"\\u0041\\u00e9\"").unwrap(),
            Json::Str("Aé".to_string())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"x", "{1: 2}"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
