//! Hierarchical spans and the [`Tracer`] that records them.
//!
//! The tracer never reads a clock. Callers measure durations themselves
//! (they already do, for `HloReport::stage_timings`) and stamp spans when
//! closing them; the tracer lays spans onto a synthetic timeline by
//! advancing a cursor. Same work ⇒ same tree, regardless of scheduling —
//! only the stamped durations vary run to run, and those are exactly what
//! [`Tracer::span_tree_text`] normalizes away.

use crate::decision::DecisionEvent;
use crate::metrics::MetricsRegistry;
use crate::TraceLevel;
use std::time::Duration;

/// Index of a span within its [`Tracer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub(crate) u32);

/// One recorded span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Span name (`optimize`, `pass0`, `inline.plan`, …).
    pub name: String,
    /// Enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Nesting depth (root spans are 0).
    pub depth: u32,
    /// Start offset on the synthetic timeline, microseconds.
    pub start_us: u64,
    /// Caller-supplied wall-clock duration, microseconds.
    pub dur_us: u64,
    /// Cumulative worker busy time, microseconds (== `dur_us` for
    /// sequential stages, up to `jobs × dur_us` for parallel ones).
    pub work_us: u64,
    /// Whether this is a *stage* span (a timed leaf that contributes to
    /// `HloReport::stage_timings`) rather than a structural grouping span.
    pub stage: bool,
}

/// Records spans, decision events and metrics for one traced activity.
#[derive(Debug)]
pub struct Tracer {
    level: TraceLevel,
    spans: Vec<Span>,
    stack: Vec<SpanId>,
    cursor_us: u64,
    decisions: Vec<DecisionEvent>,
    metrics: MetricsRegistry,
}

impl Tracer {
    /// Creates a tracer recording at `level`.
    pub fn new(level: TraceLevel) -> Self {
        Tracer {
            level,
            spans: Vec::new(),
            stack: Vec::new(),
            cursor_us: 0,
            decisions: Vec::new(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// A tracer that records spans but no decisions — the throwaway used
    /// by untraced entry points.
    pub fn disabled() -> Self {
        Tracer::new(TraceLevel::Off)
    }

    /// The recording level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// True when decision provenance is being collected. Passes check this
    /// before building event strings, so `Off`/`Spans` runs pay nothing.
    pub fn decisions_enabled(&self) -> bool {
        self.level == TraceLevel::Decisions
    }

    /// Opens a structural span at the current timeline cursor. Close it
    /// with [`Tracer::pop`].
    pub fn push(&mut self, name: &str) -> SpanId {
        let id = SpanId(self.spans.len() as u32);
        self.spans.push(Span {
            name: name.to_string(),
            parent: self.stack.last().copied(),
            depth: self.stack.len() as u32,
            start_us: self.cursor_us,
            dur_us: 0,
            work_us: 0,
            stage: false,
        });
        self.stack.push(id);
        id
    }

    /// Closes a structural span with its measured wall duration. The
    /// span's work is the sum of its children's work (a structural span
    /// does no work of its own).
    pub fn pop(&mut self, id: SpanId, wall: Duration) {
        debug_assert_eq!(self.stack.last(), Some(&id), "span stack discipline");
        self.stack.pop();
        let dur_us = wall.as_micros() as u64;
        let work_us: u64 = self
            .spans
            .iter()
            .filter(|s| s.parent == Some(id))
            .map(|s| s.work_us)
            .sum();
        let span = &mut self.spans[id.0 as usize];
        span.dur_us = dur_us;
        span.work_us = work_us;
        // Siblings must not overlap: the cursor moves past both the span's
        // own duration and whatever its children consumed.
        self.cursor_us = self.cursor_us.max(span.start_us + dur_us);
    }

    /// Records a closed *stage* span (a timed leaf) with caller-supplied
    /// wall and cumulative-work durations.
    pub fn leaf(&mut self, name: &str, wall: Duration, work: Duration) {
        let dur_us = wall.as_micros() as u64;
        self.spans.push(Span {
            name: name.to_string(),
            parent: self.stack.last().copied(),
            depth: self.stack.len() as u32,
            start_us: self.cursor_us,
            dur_us,
            work_us: work.as_micros() as u64,
            stage: true,
        });
        self.cursor_us += dur_us;
    }

    /// Records a sequential stage span (`work == wall`).
    pub fn leaf_seq(&mut self, name: &str, wall: Duration) {
        self.leaf(name, wall, wall);
    }

    /// All recorded spans, in creation order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of spans recorded so far (a resume point for
    /// [`Tracer::stage_totals_since`]).
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Records a decision event (no-op unless the level collects
    /// decisions). Every event also bumps the
    /// `decisions_total{kind,verdict,reason}` counter, so metric content
    /// stays a pure function of the decisions taken.
    pub fn decision(&mut self, e: DecisionEvent) {
        if !self.decisions_enabled() {
            return;
        }
        self.metrics.add(
            &format!(
                "decisions_total{{kind=\"{}\",verdict=\"{}\",reason=\"{}\"}}",
                e.kind, e.verdict, e.reason
            ),
            1,
        );
        self.decisions.push(e);
    }

    /// All recorded decision events, in emission order.
    pub fn decisions(&self) -> &[DecisionEvent] {
        &self.decisions
    }

    /// Aggregates stage (leaf) spans recorded since `start` by name, in
    /// first-seen order, summing wall and work — the exact shape of
    /// `HloReport::stage_timings`.
    pub fn stage_totals_since(&self, start: usize) -> Vec<(String, u64, u64)> {
        let mut totals: Vec<(String, u64, u64)> = Vec::new();
        for s in &self.spans[start.min(self.spans.len())..] {
            if !s.stage {
                continue;
            }
            if let Some(t) = totals.iter_mut().find(|t| t.0 == s.name) {
                t.1 += s.dur_us;
                t.2 += s.work_us;
            } else {
                totals.push((s.name.clone(), s.dur_us, s.work_us));
            }
        }
        totals
    }

    /// Aggregates every stage span (see [`Tracer::stage_totals_since`]).
    pub fn stage_totals(&self) -> Vec<(String, u64, u64)> {
        self.stage_totals_since(0)
    }

    /// The span tree with timestamps normalized away: one indented line
    /// per span, in creation order. Two runs of the same work produce the
    /// same text regardless of `--jobs` or scheduling.
    pub fn span_tree_text(&self) -> String {
        let mut s = String::new();
        for span in &self.spans {
            for _ in 0..span.depth {
                s.push_str("  ");
            }
            s.push_str(&span.name);
            s.push('\n');
        }
        s
    }

    /// The decision events as a sorted text report, one event per line,
    /// optionally filtered by `fn` or `fn:bN.iM` (matches the caller side
    /// of the site, or the callee name).
    pub fn decision_report(&self, filter: Option<&str>) -> String {
        let mut lines: Vec<String> = self
            .decisions
            .iter()
            .filter(|e| match filter {
                None => true,
                Some(f) => match f.split_once(':') {
                    Some((name, coord)) => e.site == format!("{name}@{coord}"),
                    None => e.callee == f || e.site.split('@').next() == Some(f),
                },
            })
            .map(|e| e.line())
            .collect();
        lines.sort();
        lines.join("\n") + if lines.is_empty() { "" } else { "\n" }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DecisionKind, Verdict};

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    #[test]
    fn spans_nest_and_lay_out_without_overlap() {
        let mut t = Tracer::disabled();
        let root = t.push("optimize");
        t.leaf("annotate", us(10), us(30));
        let p0 = t.push("pass0");
        t.leaf("inline.plan", us(5), us(5));
        t.leaf("inline.apply", us(7), us(7));
        t.pop(p0, us(12));
        t.pop(root, us(25));
        let spans = t.spans();
        assert_eq!(spans.len(), 5);
        assert_eq!(spans[0].name, "optimize");
        assert_eq!(spans[0].dur_us, 25);
        assert_eq!(spans[0].work_us, 30 + 12); // annotate + pass0
        assert_eq!(spans[2].parent, Some(SpanId(0)));
        assert_eq!(spans[3].parent, Some(SpanId(2)));
        // inline.apply starts after inline.plan ends
        assert_eq!(spans[4].start_us, spans[3].start_us + spans[3].dur_us);
    }

    #[test]
    fn stage_totals_aggregate_by_name_in_first_seen_order() {
        let mut t = Tracer::disabled();
        let root = t.push("optimize");
        t.leaf("inline.plan", us(10), us(30));
        t.leaf("delete", us(7), us(7));
        t.leaf("inline.plan", us(5), us(15));
        t.pop(root, us(22));
        let totals = t.stage_totals();
        assert_eq!(
            totals,
            vec![
                ("inline.plan".to_string(), 15, 45),
                ("delete".to_string(), 7, 7)
            ]
        );
        // Structural spans never appear in the totals.
        assert!(totals.iter().all(|t| t.0 != "optimize"));
    }

    #[test]
    fn tree_text_is_indented_and_time_free() {
        let mut t = Tracer::disabled();
        let root = t.push("optimize");
        t.leaf("annotate", us(1234), us(5678));
        t.pop(root, us(9999));
        assert_eq!(t.span_tree_text(), "optimize\n  annotate\n");
    }

    fn event(site: &str, callee: &str, verdict: Verdict, reason: &'static str) -> DecisionEvent {
        DecisionEvent {
            pass: 0,
            kind: DecisionKind::Inline,
            site: site.to_string(),
            callee: callee.to_string(),
            verdict,
            reason,
            benefit: 1.0,
            cost: 2,
            budget_before: 10,
            budget_after: 8,
            profile_weight: 1.0,
        }
    }

    #[test]
    fn decisions_respect_level_and_feed_metrics() {
        let mut off = Tracer::new(TraceLevel::Spans);
        off.decision(event("main@b0.i0", "f", Verdict::Performed, "accepted"));
        assert!(off.decisions().is_empty());

        let mut on = Tracer::new(TraceLevel::Decisions);
        on.decision(event("main@b0.i0", "f", Verdict::Performed, "accepted"));
        on.decision(event(
            "main@b0.i1",
            "g",
            Verdict::Deferred,
            "budget-deferred",
        ));
        assert_eq!(on.decisions().len(), 2);
        let exposed = on.metrics().expose();
        assert!(
            exposed.contains(
                "decisions_total{kind=\"inline\",verdict=\"performed\",reason=\"accepted\"} 1"
            ),
            "{exposed}"
        );
    }

    #[test]
    fn decision_report_sorts_and_filters() {
        let mut t = Tracer::new(TraceLevel::Decisions);
        t.decision(event(
            "zeta@b1.i0",
            "g",
            Verdict::Deferred,
            "budget-deferred",
        ));
        t.decision(event("main@b0.i0", "f", Verdict::Performed, "accepted"));
        let all = t.decision_report(None);
        let first = all.lines().next().unwrap();
        assert!(first.contains("main@b0.i0"), "{all}");
        // Filter by callee name, caller name, and exact site.
        assert_eq!(t.decision_report(Some("g")).lines().count(), 1);
        assert_eq!(t.decision_report(Some("zeta")).lines().count(), 1);
        assert_eq!(t.decision_report(Some("main:b0.i0")).lines().count(), 1);
        assert_eq!(t.decision_report(Some("main:b9.i9")).lines().count(), 0);
        assert_eq!(t.decision_report(Some("nosuch")), "");
    }
}
