//! Chrome `trace_event` JSON export (the format Perfetto and
//! `chrome://tracing` load).
//!
//! Every span becomes one complete event (`"ph":"X"`) with the
//! caller-supplied timestamps from the tracer's synthetic timeline, so the
//! exported file is a pure function of the run's recorded durations.

use crate::span::Tracer;

/// Escapes a string for embedding in a JSON string literal.
///
/// Everything outside printable ASCII is `\u`-escaped (astral characters
/// as surrogate pairs), so the document stays pure ASCII no matter what
/// fuzz-generated function names flow into span names.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 || (c as u32) > 0x7e => {
                let mut units = [0u16; 2];
                for unit in c.encode_utf16(&mut units) {
                    out.push_str(&format!("\\u{unit:04x}"));
                }
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the tracer's spans as a Chrome trace-event JSON document.
///
/// Decisions ride along as instant events (`"ph":"i"`) at the end of the
/// timeline so a Perfetto query can pull `args.reason` per site; metrics
/// are not exported here (use [`crate::MetricsRegistry::expose`]).
pub fn chrome_trace_json(tracer: &Tracer) -> String {
    let mut events: Vec<String> = Vec::new();
    events.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":1,\
         \"args\":{\"name\":\"hlo\"}}"
            .to_string(),
    );
    for s in tracer.spans() {
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"hlo\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":1,\"args\":{{\"work_us\":{}}}}}",
            escape(&s.name),
            s.start_us,
            s.dur_us,
            s.work_us
        ));
    }
    let end_us = tracer
        .spans()
        .iter()
        .map(|s| s.start_us + s.dur_us)
        .max()
        .unwrap_or(0);
    for e in tracer.decisions() {
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"decision\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
             \"pid\":1,\"tid\":1,\"args\":{{\"callee\":\"{}\",\"verdict\":\"{}\",\
             \"reason\":\"{}\",\"pass\":{},\"cost\":{}}}}}",
            escape(&e.site),
            end_us,
            escape(&e.callee),
            e.verdict,
            e.reason,
            e.pass,
            e.cost
        ));
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}\n",
        events.join(",")
    )
}

/// Checks that `text` is valid JSON shaped like a Chrome trace-event
/// document: a `traceEvents` array whose entries all carry `name`/`ph`/
/// `ts`, with at least one complete (`"ph":"X"`) span. Returns the event
/// count. This is the schema `cargo tier2 -- trace-schema` enforces.
///
/// # Errors
/// Describes the first schema violation.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    use crate::json::{parse, Json};
    let doc = parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("missing `traceEvents` array")?;
    let mut complete = 0;
    for (i, e) in events.iter().enumerate() {
        e.get("name")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing `name`"))?;
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing `ph`"))?;
        e.get("ts")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: missing `ts`"))?;
        if ph == "X" {
            e.get("dur")
                .and_then(Json::as_f64)
                .ok_or(format!("event {i}: complete event without `dur`"))?;
            complete += 1;
        }
    }
    if complete == 0 {
        return Err("no complete (`ph:\"X\"`) span events".to_string());
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Json};
    use crate::{DecisionEvent, DecisionKind, TraceLevel, Verdict};
    use std::time::Duration;

    #[test]
    fn export_parses_as_json_with_complete_events() {
        let mut t = Tracer::new(TraceLevel::Decisions);
        let root = t.push("optimize");
        t.leaf(
            "annotate \"q\"",
            Duration::from_micros(10),
            Duration::from_micros(10),
        );
        t.pop(root, Duration::from_micros(10));
        t.decision(DecisionEvent {
            pass: 0,
            kind: DecisionKind::Inline,
            site: "main@b0.i0".to_string(),
            callee: "f".to_string(),
            verdict: Verdict::Performed,
            reason: "accepted",
            benefit: 1.0,
            cost: 4,
            budget_before: 10,
            budget_after: 6,
            profile_weight: 1.0,
        });
        let out = chrome_trace_json(&t);
        let doc = json::parse(&out).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        // metadata + 2 spans + 1 decision
        assert_eq!(events.len(), 4);
        for e in events {
            assert!(e.get("name").and_then(Json::as_str).is_some());
            assert!(e.get("ph").and_then(Json::as_str).is_some());
            assert!(e.get("ts").and_then(Json::as_f64).is_some());
        }
        let x = &events[2];
        assert_eq!(x.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(x.get("name").and_then(Json::as_str), Some("annotate \"q\""));
        assert!(x.get("dur").and_then(Json::as_f64).is_some());
    }

    #[test]
    fn hostile_span_names_are_escaped_to_pure_ascii() {
        let mut t = Tracer::new(TraceLevel::Spans);
        let root = t.push("na\"me \\ with\nnewline\tand μ≠ascii 𝄞");
        t.pop(root, Duration::from_micros(1));
        let out = chrome_trace_json(&t);
        assert!(out.is_ascii(), "export must be pure ASCII: {out}");
        let doc = json::parse(&out).expect("still valid JSON");
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let name = events[1].get("name").and_then(Json::as_str).unwrap();
        assert!(name.contains("na\"me"));
        assert!(name.contains('\\'));
        assert!(name.contains('\n'));
        assert!(name.contains('\t'));
        assert!(name.contains('μ'), "BMP char survives the round trip");
        assert!(name.contains('𝄞'), "astral char survives via surrogates");
        // The raw text spells the astral char as a surrogate pair.
        assert!(out.contains("\\ud834\\udd1e"));
    }

    #[test]
    fn validator_accepts_real_exports_and_rejects_malformed_ones() {
        let mut t = Tracer::new(TraceLevel::Spans);
        let root = t.push("optimize");
        t.leaf(
            "annotate",
            Duration::from_micros(5),
            Duration::from_micros(5),
        );
        t.pop(root, Duration::from_micros(5));
        let n = validate_chrome_trace(&chrome_trace_json(&t)).unwrap();
        assert_eq!(n, 3); // metadata + 2 spans

        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": 3}").is_err());
        // Parses, but has no complete span events.
        assert!(validate_chrome_trace(
            "{\"traceEvents\":[{\"name\":\"m\",\"ph\":\"M\",\"ts\":0}]}"
        )
        .is_err());
    }
}
