//! Chrome `trace_event` JSON export (the format Perfetto and
//! `chrome://tracing` load).
//!
//! Every span becomes one complete event (`"ph":"X"`) with the
//! caller-supplied timestamps from the tracer's synthetic timeline, so the
//! exported file is a pure function of the run's recorded durations.

use crate::span::Tracer;

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the tracer's spans as a Chrome trace-event JSON document.
///
/// Decisions ride along as instant events (`"ph":"i"`) at the end of the
/// timeline so a Perfetto query can pull `args.reason` per site; metrics
/// are not exported here (use [`crate::MetricsRegistry::expose`]).
pub fn chrome_trace_json(tracer: &Tracer) -> String {
    let mut events: Vec<String> = Vec::new();
    events.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":1,\
         \"args\":{\"name\":\"hlo\"}}"
            .to_string(),
    );
    for s in tracer.spans() {
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"hlo\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":1,\"args\":{{\"work_us\":{}}}}}",
            escape(&s.name),
            s.start_us,
            s.dur_us,
            s.work_us
        ));
    }
    let end_us = tracer
        .spans()
        .iter()
        .map(|s| s.start_us + s.dur_us)
        .max()
        .unwrap_or(0);
    for e in tracer.decisions() {
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"decision\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
             \"pid\":1,\"tid\":1,\"args\":{{\"callee\":\"{}\",\"verdict\":\"{}\",\
             \"reason\":\"{}\",\"pass\":{},\"cost\":{}}}}}",
            escape(&e.site),
            end_us,
            escape(&e.callee),
            e.verdict,
            e.reason,
            e.pass,
            e.cost
        ));
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}\n",
        events.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Json};
    use crate::{DecisionEvent, DecisionKind, TraceLevel, Verdict};
    use std::time::Duration;

    #[test]
    fn export_parses_as_json_with_complete_events() {
        let mut t = Tracer::new(TraceLevel::Decisions);
        let root = t.push("optimize");
        t.leaf(
            "annotate \"q\"",
            Duration::from_micros(10),
            Duration::from_micros(10),
        );
        t.pop(root, Duration::from_micros(10));
        t.decision(DecisionEvent {
            pass: 0,
            kind: DecisionKind::Inline,
            site: "main@b0.i0".to_string(),
            callee: "f".to_string(),
            verdict: Verdict::Performed,
            reason: "accepted",
            benefit: 1.0,
            cost: 4,
            budget_before: 10,
            budget_after: 6,
            profile_weight: 1.0,
        });
        let out = chrome_trace_json(&t);
        let doc = json::parse(&out).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        // metadata + 2 spans + 1 decision
        assert_eq!(events.len(), 4);
        for e in events {
            assert!(e.get("name").and_then(Json::as_str).is_some());
            assert!(e.get("ph").and_then(Json::as_str).is_some());
            assert!(e.get("ts").and_then(Json::as_f64).is_some());
        }
        let x = &events[2];
        assert_eq!(x.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(x.get("name").and_then(Json::as_str), Some("annotate \"q\""));
        assert!(x.get("dur").and_then(Json::as_f64).is_some());
    }
}
