#![warn(missing_docs)]
//! **hlo-trace** — the structured observability layer of the Aggressive
//! Inlining reproduction.
//!
//! The paper's entire evaluation is an observability exercise: Table 1
//! counts inlines, clones and deletions; Figure 7 attributes cycles. This
//! crate is the substrate that makes those numbers drill-downable:
//!
//! * [`Tracer`] — hierarchical spans (program → pass → stage) stamped with
//!   *caller-supplied* durations, so the recorded tree is a pure function
//!   of the work performed and replays deterministically;
//! * [`MetricsRegistry`] — a lock-sharded registry of counters, gauges and
//!   fixed-bucket histograms, safe to update from the `par.rs` worker pool
//!   (all updates commute, so totals are deterministic at any `--jobs`);
//! * [`DecisionEvent`] — provenance for every inline/clone/outline/
//!   pure-call decision: site, callee, verdict, reason code, benefit,
//!   cost, and budget state, queryable as a sorted text report;
//! * [`EventLog`] — a leveled, structured `key=value` event log with a
//!   canonical one-line text encoding and a strict parser, the daemon's
//!   operational record (request lifecycle, evictions, drains, errors);
//! * [`FlightRecorder`] — an always-on, lock-sharded ring of the last N
//!   request summaries, dumped on demand or when something goes wrong;
//! * [`QuantileSketch`] — a deterministic, mergeable streaming quantile
//!   sketch (integer bucket bounds, documented error bound) behind the
//!   daemon's rolling p50/p95/p99 phase latencies;
//! * exporters — Chrome `trace_event` JSON ([`chrome_trace_json`],
//!   loadable in Perfetto, validated by [`validate_chrome_trace`]) and a
//!   Prometheus-style text exposition ([`MetricsRegistry::expose`],
//!   re-read strictly by [`parse_exposition`]).
//!
//! The crate is dependency-free (std only) and never reads a clock: every
//! duration is supplied by the caller, which is what keeps trace *content*
//! byte-identical across worker counts once timestamps are normalized.

mod chrome;
mod decision;
mod event;
mod flight;
pub mod json;
mod metrics;
mod span;

pub use chrome::{chrome_trace_json, validate_chrome_trace};
pub use decision::{DecisionEvent, DecisionKind, Verdict};
pub use event::{normalize_log, Event, EventLevel, EventLog};
pub use flight::{parse_flight_dump, FlightRecord, FlightRecorder};
pub use metrics::{
    parse_exposition, ExpositionSeries, MetricsRegistry, QuantileSketch, DRIFT_BUCKETS_MILLIS,
    LATENCY_BUCKETS_US, SKETCH_ERROR_PERCENT,
};
pub use span::{Span, SpanId, Tracer};

/// How much the optimizer records into its [`Tracer`].
///
/// The level is a pure observability knob: it never changes the produced
/// program, so it is normalized out of option fingerprints the same way
/// `jobs` is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceLevel {
    /// Record only the stage spans the report's timings are built from.
    #[default]
    Off,
    /// Same spans, flagged for export (`hloc build --trace out.json`).
    Spans,
    /// Spans plus per-site decision provenance (`hloc build --explain`).
    Decisions,
}

impl TraceLevel {
    /// The wire spelling used by `HloOptions::to_text`.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Spans => "spans",
            TraceLevel::Decisions => "decisions",
        }
    }
}

impl std::fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for TraceLevel {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(TraceLevel::Off),
            "spans" => Ok(TraceLevel::Spans),
            "decisions" => Ok(TraceLevel::Decisions),
            other => Err(format!("bad trace level `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_level_round_trips() {
        for l in [TraceLevel::Off, TraceLevel::Spans, TraceLevel::Decisions] {
            assert_eq!(l.as_str().parse::<TraceLevel>().unwrap(), l);
        }
        assert!("loud".parse::<TraceLevel>().is_err());
    }
}
