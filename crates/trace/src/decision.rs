//! Decision provenance: why each call site was (or was not) transformed.

/// Which transformation family took the decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// An inline-pass decision (paper Figure 4).
    Inline,
    /// A clone-group decision (paper Figure 3).
    Clone,
    /// A cold-region outlining decision (paper §5).
    Outline,
    /// A pure-call elimination decision.
    PureCall,
}

impl std::fmt::Display for DecisionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DecisionKind::Inline => "inline",
            DecisionKind::Clone => "clone",
            DecisionKind::Outline => "outline",
            DecisionKind::PureCall => "pure-call",
        })
    }
}

/// The outcome of one decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The transformation was applied.
    Performed,
    /// The site is viable but did not fit the budget this pass; it may be
    /// reconsidered when a later stage releases more headroom.
    Deferred,
    /// The site was rejected outright (a legality/technical/pragmatic/user
    /// restriction — see the reason code).
    Rejected,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Verdict::Performed => "performed",
            Verdict::Deferred => "deferred",
            Verdict::Rejected => "rejected",
        })
    }
}

/// One audited decision: everything needed to answer "why was this call
/// site inlined (or not), in which pass, at what budget level, and what
/// did it cost?".
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionEvent {
    /// Clone+Inline pass number (0-based; 0 for pre-pass stages such as
    /// outlining and input cleanup).
    pub pass: u32,
    /// Transformation family.
    pub kind: DecisionKind,
    /// The call site, as `caller@bBLOCK.iINST`.
    pub site: String,
    /// The callee (for outlining: the extracted routine).
    pub callee: String,
    /// The outcome.
    pub verdict: Verdict,
    /// Stable kebab-case reason code (`accepted`, `budget-deferred`,
    /// `arity-mismatch`, …). The full table lives in DESIGN.md §11.
    pub reason: &'static str,
    /// The figure of merit that ranked this decision (inline merit or
    /// clone-group benefit).
    pub benefit: f64,
    /// Compile-cost delta the decision would add (0 for rejections and
    /// free reuses).
    pub cost: u64,
    /// Budget headroom before the decision, in `Σ size²` units. For
    /// inline decisions this is the partition's remaining share (planning
    /// is per-partition); for clones the global budget estimate.
    pub budget_before: u64,
    /// Budget headroom (or estimate) after the decision.
    pub budget_after: u64,
    /// Execution count of the site's block in the profile that drove the
    /// decision.
    pub profile_weight: f64,
}

impl DecisionEvent {
    /// One stable, sortable report line. Site first so the sorted report
    /// groups by location.
    pub fn line(&self) -> String {
        format!(
            "{site} -> {callee}: {kind} pass={pass} verdict={verdict} reason={reason} \
             benefit={benefit:.2} weight={weight:.2} cost={cost} budget={before}->{after}",
            site = self.site,
            callee = self.callee,
            kind = self.kind,
            pass = self.pass,
            verdict = self.verdict,
            reason = self.reason,
            benefit = self.benefit,
            weight = self.profile_weight,
            cost = self.cost,
            before = self.budget_before,
            after = self.budget_after,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_is_stable_and_complete() {
        let e = DecisionEvent {
            pass: 1,
            kind: DecisionKind::Inline,
            site: "main@b2.i0".to_string(),
            callee: "sq".to_string(),
            verdict: Verdict::Performed,
            reason: "accepted",
            benefit: 100.0,
            cost: 25,
            budget_before: 1200,
            budget_after: 1175,
            profile_weight: 100.0,
        };
        assert_eq!(
            e.line(),
            "main@b2.i0 -> sq: inline pass=1 verdict=performed reason=accepted \
             benefit=100.00 weight=100.00 cost=25 budget=1200->1175"
        );
    }
}
