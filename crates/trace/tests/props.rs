//! Property tests for the observability wire formats: event-log lines,
//! quantile-sketch text, and the metrics exposition contract.

use hlo_trace::{
    parse_exposition, Event, EventLevel, MetricsRegistry, QuantileSketch, SKETCH_ERROR_PERCENT,
};
use proptest::prelude::*;

fn level_strategy() -> impl Strategy<Value = EventLevel> {
    prop_oneof![
        Just(EventLevel::Debug),
        Just(EventLevel::Info),
        Just(EventLevel::Warn),
        Just(EventLevel::Error),
    ]
}

/// Arbitrary field values: printable ASCII plus, half the time, a tail of
/// every character the escaper special-cases.
fn value_strategy() -> impl Strategy<Value = String> {
    ("[ -~]{0,12}", any::<bool>()).prop_map(|(mut s, spice)| {
        if spice {
            s.push_str(" \\\n\r\tend");
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn event_lines_roundtrip(
        level in level_strategy(),
        name in "[a-z]{1,10}",
        fields in prop::collection::vec(("[a-z]{1,8}", value_strategy()), 0..6),
    ) {
        let mut e = Event::new(level, &name);
        for (k, v) in &fields {
            e = e.field(k, v);
        }
        let line = e.to_line();
        prop_assert!(!line.contains('\n'), "encoding is one line: {line:?}");
        prop_assert_eq!(Event::parse(&line).unwrap(), e);
    }

    #[test]
    fn sketch_roundtrips_and_honours_its_error_bound(
        values in prop::collection::vec(any::<u64>(), 1..200),
        split in any::<u8>(),
    ) {
        let mut whole = QuantileSketch::new();
        for &v in &values {
            whole.record(v);
        }
        prop_assert_eq!(whole.count(), values.len() as u64);

        // Text form loses nothing.
        let back = QuantileSketch::from_text(&whole.to_text()).unwrap();
        prop_assert_eq!(&back, &whole);

        // Merging partial sketches equals recording everything in one.
        let cut = split as usize % values.len();
        let (mut a, mut b) = (QuantileSketch::new(), QuantileSketch::new());
        for &v in &values[..cut] {
            a.record(v);
        }
        for &v in &values[cut..] {
            b.record(v);
        }
        a.merge(&b);
        prop_assert_eq!(&a, &whole);

        // Never undershoots; overshoots by at most the documented bound.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for permille in [500u64, 950, 990, 1000] {
            let rank = (permille * sorted.len() as u64).div_ceil(1000).max(1);
            let truth = sorted[rank as usize - 1];
            let q = whole.quantile(permille);
            prop_assert!(q >= truth, "p{} undershoot: {} < {}", permille, q, truth);
            // `truth / (100 / pct)` instead of `truth * pct / 100`: same
            // bound, no overflow near u64::MAX.
            prop_assert!(
                q <= truth.saturating_add(truth / (100 / SKETCH_ERROR_PERCENT)),
                "p{} overshoot: {} vs {}",
                permille,
                q,
                truth
            );
        }
    }

    #[test]
    fn exposition_is_sorted_unique_and_reparseable(
        counters in prop::collection::vec(("[a-z]{1,8}", 0u64..100), 1..8),
        gauges in prop::collection::vec(("[f-m]{2,8}", any::<i64>()), 0..6),
        observations in prop::collection::vec(0u64..5_000, 0..20),
    ) {
        let m = MetricsRegistry::new();
        let mut expect_counter = std::collections::BTreeMap::new();
        for (name, n) in &counters {
            m.add(name, *n);
            *expect_counter.entry(name.clone()).or_insert(0u64) += n;
        }
        for (name, g) in &gauges {
            // Suffix keeps gauge names from colliding with counters.
            m.set_gauge(&format!("{name}_g"), *g);
        }
        for &v in &observations {
            m.observe("lat_us", &[100, 1000], v);
        }
        let text = m.expose();
        let series = parse_exposition(&text).unwrap();

        // Series names are unique.
        let names: Vec<&String> = series.iter().map(|(n, _)| n).collect();
        let unique: std::collections::BTreeSet<&&String> = names.iter().collect();
        prop_assert!(unique.len() == names.len(), "duplicate series in:\n{}", text);

        // `# TYPE` groups appear in sorted base-name order.
        let bases: Vec<&str> = text
            .lines()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .filter_map(|l| l.split(' ').next())
            .collect();
        let mut sorted_bases = bases.clone();
        sorted_bases.sort_unstable();
        prop_assert_eq!(&bases, &sorted_bases);

        // Counter values survive the re-parse.
        for (name, total) in &expect_counter {
            let got = series.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
            prop_assert_eq!(got, Some(*total as i128));
        }
        if !observations.is_empty() {
            let inf = series
                .iter()
                .find(|(n, _)| n == "lat_us_bucket{le=\"+Inf\"}")
                .map(|(_, v)| *v);
            prop_assert_eq!(inf, Some(observations.len() as i128));
        }
    }
}
