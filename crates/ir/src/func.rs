//! Functions, basic blocks, linkage and profile annotations.

use crate::{BlockId, Inst, ModuleId, Reg, SlotId, Type};

/// Symbol visibility, mirroring C file-scope semantics.
///
/// The optimizer must promote `Static` symbols to unique `Public` names when
/// inlining or cloning moves references to them into another module
/// (paper §2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Linkage {
    /// Visible to all modules.
    #[default]
    Public,
    /// Visible only within the defining module (C `static`).
    Static,
}

/// A basic block: straight-line instructions ending in one terminator.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The instructions; the last must be a terminator in a valid function.
    pub insts: Vec<Inst>,
}

impl Block {
    /// Creates an empty block (invalid until a terminator is appended).
    pub fn new() -> Self {
        Block::default()
    }

    /// The block's terminator, if the block is non-empty and well-formed.
    pub fn terminator(&self) -> Option<&Inst> {
        self.insts.last().filter(|i| i.is_terminator())
    }

    /// Successor block ids of this block's terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        self.terminator()
            .map(|t| t.successors())
            .unwrap_or_default()
    }
}

/// Per-function option flags relevant to inline/clone legality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FuncFlags {
    /// User `#[noinline]` pragma: never inline this callee.
    pub noinline: bool,
    /// User `#[inline]` pragma: bonus priority when ranking sites.
    pub inline_hint: bool,
    /// Compiled with strict floating-point semantics (no reassociation).
    /// Inlining may not mix strict and relaxed bodies — the paper's
    /// "technical restriction" example.
    pub strict_fp: bool,
    /// Declared with varargs; such callees are illegal to inline or clone.
    pub varargs: bool,
}

/// Block execution frequencies attached to a function.
///
/// Frequencies originate either from a training run (profile-based
/// optimization) or from static loop-depth estimation, and are *maintained*
/// by the inline and clone transforms (spliced bodies are scaled by the call
/// site's share of the callee's entry count), so that later passes see
/// sharpened information — the reason the paper's optimizer is multi-pass.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FuncProfile {
    /// Executions of the function entry.
    pub entry: f64,
    /// Executions of each block, parallel to `Function::blocks`.
    pub blocks: Vec<f64>,
}

impl FuncProfile {
    /// A profile with every block at the entry count (flat).
    pub fn flat(entry: f64, num_blocks: usize) -> Self {
        FuncProfile {
            entry,
            blocks: vec![entry; num_blocks],
        }
    }

    /// Frequency of `b` relative to the entry (1.0 = as hot as entry).
    /// Returns 1.0 when the entry count is zero.
    pub fn relative(&self, b: BlockId) -> f64 {
        if self.entry <= 0.0 {
            return 1.0;
        }
        self.blocks.get(b.index()).copied().unwrap_or(0.0) / self.entry
    }
}

/// A function: a register machine over a control-flow graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Source-level name (unique within the defining module; the optimizer
    /// appends suffixes for clones and promoted statics).
    pub name: String,
    /// The module this function belongs to.
    pub module: ModuleId,
    /// Number of parameters; registers `0..params` hold arguments on entry.
    pub params: u32,
    /// Total virtual registers used (`>= params`).
    pub num_regs: u32,
    /// Return type (`Void` for procedures).
    pub ret: Type,
    /// Frame slots: statically sized local storage, in bytes.
    pub slots: Vec<u32>,
    /// The CFG; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Visibility.
    pub linkage: Linkage,
    /// Legality-relevant flags.
    pub flags: FuncFlags,
    /// Optional block-frequency annotation.
    pub profile: Option<FuncProfile>,
}

impl Function {
    /// Creates a function with a single empty entry block.
    pub fn new(name: impl Into<String>, module: ModuleId, params: u32) -> Self {
        Function {
            name: name.into(),
            module,
            params,
            num_regs: params,
            ret: Type::I64,
            slots: Vec::new(),
            blocks: vec![Block::new()],
            linkage: Linkage::Public,
            flags: FuncFlags::default(),
            profile: None,
        }
    }

    /// The entry block id (always block 0).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Number of instructions — the paper's `sizeof(R)` used by the
    /// compile-time budget (`cost = sizeof(R)^2`).
    pub fn size(&self) -> u64 {
        self.blocks.iter().map(|b| b.insts.len() as u64).sum()
    }

    /// Allocates a fresh virtual register.
    pub fn new_reg(&mut self) -> Reg {
        let r = Reg(self.num_regs);
        self.num_regs += 1;
        r
    }

    /// Allocates a fresh frame slot of `bytes` bytes.
    pub fn new_slot(&mut self, bytes: u32) -> SlotId {
        let s = SlotId(self.slots.len() as u32);
        self.slots.push(bytes);
        s
    }

    /// Appends a fresh empty block and returns its id.
    pub fn new_block(&mut self) -> BlockId {
        let b = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::new());
        b
    }

    /// Shared access to a block.
    ///
    /// # Panics
    /// Panics if `b` is out of range.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    /// Panics if `b` is out of range.
    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.index()]
    }

    /// Iterates `(BlockId, &Block)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// True if the function contains a dynamic `Alloca` — the paper's
    /// pragmatic restriction on inlining such callees.
    pub fn has_dynamic_alloca(&self) -> bool {
        self.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::Alloca { .. }))
    }

    /// True if the function body contains any floating-point operation.
    pub fn uses_float(&self) -> bool {
        self.blocks.iter().flat_map(|b| &b.insts).any(|i| match i {
            Inst::Bin { op, .. } => op.is_float(),
            Inst::Un { op, .. } => op.is_float(),
            _ => false,
        })
    }

    /// Predecessor lists for every block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (id, b) in self.iter_blocks() {
            for s in b.successors() {
                preds[s.index()].push(id);
            }
        }
        preds
    }

    /// Renumbers every register through `map` (both defs and uses). `map`
    /// must be injective over the registers actually used.
    pub fn remap_regs(&mut self, mut map: impl FnMut(Reg) -> Reg) {
        for block in &mut self.blocks {
            for inst in &mut block.insts {
                if let Some(d) = inst.dst_mut() {
                    *d = map(*d);
                }
                inst.for_each_use_mut(|op| {
                    if let Operand::Reg(r) = op {
                        *r = map(*r);
                    }
                });
            }
        }
    }

    /// Invokes `f` on a mutable reference to every [`crate::FuncId`] this
    /// body mentions (direct call targets and `FuncAddr` constants); see
    /// [`crate::Inst::for_each_func_ref_mut`].
    pub fn for_each_func_ref_mut(&mut self, mut f: impl FnMut(&mut crate::FuncId)) {
        for block in &mut self.blocks {
            for inst in &mut block.insts {
                inst.for_each_func_ref_mut(&mut f);
            }
        }
    }

    /// The relative frequency of block `b` (1.0 when no profile is
    /// attached — every block assumed as hot as entry).
    pub fn rel_freq(&self, b: BlockId) -> f64 {
        self.profile.as_ref().map(|p| p.relative(b)).unwrap_or(1.0)
    }

    /// The absolute entry count, if profiled.
    pub fn entry_count(&self) -> Option<f64> {
        self.profile.as_ref().map(|p| p.entry)
    }
}

use crate::Operand;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinOp, ConstVal};

    fn sample() -> Function {
        let mut f = Function::new("t", ModuleId(0), 2);
        let r = f.new_reg();
        let exit = f.new_block();
        f.block_mut(BlockId(0)).insts.extend([
            Inst::Bin {
                dst: r,
                op: BinOp::Add,
                a: Operand::Reg(Reg(0)),
                b: Operand::Reg(Reg(1)),
            },
            Inst::Jump { target: exit },
        ]);
        f.block_mut(exit).insts.push(Inst::Ret {
            value: Some(Operand::Reg(r)),
        });
        f
    }

    #[test]
    fn size_counts_instructions() {
        assert_eq!(sample().size(), 3);
    }

    #[test]
    fn predecessors_follow_edges() {
        let f = sample();
        let preds = f.predecessors();
        assert!(preds[0].is_empty());
        assert_eq!(preds[1], vec![BlockId(0)]);
    }

    #[test]
    fn remap_regs_rewrites_defs_and_uses() {
        let mut f = sample();
        f.remap_regs(|r| Reg(r.0 + 100));
        match &f.blocks[0].insts[0] {
            Inst::Bin { dst, a, b, .. } => {
                assert_eq!(*dst, Reg(102));
                assert_eq!(*a, Operand::Reg(Reg(100)));
                assert_eq!(*b, Operand::Reg(Reg(101)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn profile_relative_frequency() {
        let p = FuncProfile {
            entry: 10.0,
            blocks: vec![10.0, 2.0],
        };
        assert_eq!(p.relative(BlockId(0)), 1.0);
        assert_eq!(p.relative(BlockId(1)), 0.2);
        let zero = FuncProfile {
            entry: 0.0,
            blocks: vec![0.0],
        };
        assert_eq!(zero.relative(BlockId(0)), 1.0);
    }

    #[test]
    fn dynamic_alloca_detection() {
        let mut f = sample();
        assert!(!f.has_dynamic_alloca());
        let r = f.new_reg();
        f.block_mut(BlockId(0)).insts.insert(
            0,
            Inst::Alloca {
                dst: r,
                bytes: Operand::imm(16),
            },
        );
        assert!(f.has_dynamic_alloca());
    }

    #[test]
    fn float_detection() {
        let mut f = sample();
        assert!(!f.uses_float());
        let r = f.new_reg();
        f.block_mut(BlockId(0)).insts.insert(
            0,
            Inst::Bin {
                dst: r,
                op: BinOp::FAdd,
                a: Operand::Const(ConstVal::float(1.0)),
                b: Operand::Const(ConstVal::float(2.0)),
            },
        );
        assert!(f.uses_float());
    }
}
