//! Modules, globals and external declarations.

use crate::{FuncId, Linkage, ModuleId};

/// A compilation unit. Functions live in `Program::funcs` and carry their
/// owning `ModuleId`; the module records name and membership for
/// cross-module bookkeeping (code layout order, Figure 5 classification).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// Source-file-like name, unique within the program.
    pub name: String,
    /// Functions defined in this module, in definition order.
    pub funcs: Vec<FuncId>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            funcs: Vec::new(),
        }
    }
}

/// A global variable: `words` 8-byte cells, with an optional initializer
/// prefix (remaining cells are zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Symbol name (unique within its visibility scope).
    pub name: String,
    /// Defining module (used for `Static` visibility).
    pub module: ModuleId,
    /// Visibility.
    pub linkage: Linkage,
    /// Size in 8-byte words.
    pub words: u32,
    /// Initial values for the first `init.len()` words.
    pub init: Vec<i64>,
}

impl Global {
    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        self.words as u64 * 8
    }
}

/// An external routine the optimizer cannot see into: library calls in the
/// paper's Figure 5 "external" category. Executed by VM builtins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Extern {
    /// Symbol name (e.g. `print_i64`).
    pub name: String,
    /// Declared parameter count; `None` means varargs.
    pub params: Option<u32>,
    /// Whether the routine produces a value.
    pub has_ret: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_bytes() {
        let g = Global {
            name: "g".into(),
            module: ModuleId(0),
            linkage: Linkage::Public,
            words: 3,
            init: vec![],
        };
        assert_eq!(g.bytes(), 24);
    }
}
