#![warn(missing_docs)]
//! Mid-level intermediate representation for the Aggressive Inlining
//! reproduction.
//!
//! This crate plays the role of HP's *ucode* in the original system: a
//! language-neutral intermediate form that front ends produce and that the
//! high-level optimizer (HLO, crate `hlo`) transforms. The design goals
//! mirror what the paper needs:
//!
//! * **Modules with linkage** — programs are collections of modules;
//!   functions and globals are either `Public` or module-`Static`, so the
//!   optimizer can distinguish within-module from cross-module call sites
//!   and must promote statics when code moves between modules.
//! * **Every call variety** — direct calls, calls to externals (precompiled
//!   libraries, invisible to the optimizer), and indirect calls through
//!   function-pointer values. Function addresses are first-class constants,
//!   which is what lets cloning + constant propagation promote indirect
//!   calls to direct ones across optimizer passes.
//! * **Non-SSA register machine** — each function has an unbounded set of
//!   mutable virtual registers (the first `params` of which receive
//!   arguments), a control-flow graph of basic blocks, and a frame of
//!   statically sized slots for arrays and address-taken locals. This keeps
//!   the inline and clone transforms simple and faithful to a 1990s
//!   intermediate form.
//!
//! # Example
//!
//! ```
//! use hlo_ir::{ProgramBuilder, FunctionBuilder, Operand, BinOp, Linkage, Type};
//!
//! let mut pb = ProgramBuilder::new();
//! let m = pb.add_module("main");
//! let mut f = FunctionBuilder::new("add1", m, 1);
//! let entry = f.entry_block();
//! let p0 = f.param(0);
//! let r = f.bin(entry, BinOp::Add, Operand::Reg(p0), Operand::imm(1));
//! f.ret(entry, Some(Operand::Reg(r)));
//! let id = pb.add_function(f.finish(Linkage::Public, Type::I64));
//! let program = pb.finish(Some(id));
//! assert_eq!(program.func(id).name, "add1");
//! ```

mod builder;
mod display;
mod func;
mod hash;
mod inst;
mod layout;
mod module;
mod program;
mod text;
mod types;
mod verify;

pub use builder::{FunctionBuilder, ProgramBuilder};
pub use display::dump_program;
pub use func::{Block, FuncFlags, FuncProfile, Function, Linkage};
pub use hash::{fnv1a_64, hash_function, hash_program, Fnv64};
pub use inst::{BinOp, Callee, Inst, Operand, UnOp};
pub use layout::{CodeLayout, FuncLayout, INST_BYTES};
pub use module::{Extern, Global, Module};
pub use program::Program;
pub use text::{function_to_text, parse_inst, parse_program_text, program_to_text, IrParseError};
pub use types::{ConstVal, F64Bits, Type};
pub use verify::{
    verify_function, verify_function_all, verify_program, verify_program_all, VerifyError,
};

/// Identifies a module within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModuleId(pub u32);

/// Identifies a function within a [`Program`] (program-wide, not per-module).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

/// Identifies a basic block within a [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

/// A virtual register within a [`Function`]. Registers `0..params` hold the
/// incoming arguments on entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u32);

/// Identifies a frame slot (statically sized local storage) of a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(pub u32);

/// Identifies a global variable within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalId(pub u32);

/// Identifies an external routine (precompiled library code the optimizer
/// cannot see into; executed by VM builtins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExternId(pub u32);

impl ModuleId {
    /// Index into `Program::modules`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl FuncId {
    /// Index into `Program::funcs`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl BlockId {
    /// Index into `Function::blocks`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl Reg {
    /// Index into a register file of `Function::num_regs` registers.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl SlotId {
    /// Index into `Function::slots`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl GlobalId {
    /// Index into `Program::globals`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl ExternId {
    /// Index into `Program::externs`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ModuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}
impl std::fmt::Display for FuncId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}
impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}", self.0)
    }
}
impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}
impl std::fmt::Display for SlotId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}
impl std::fmt::Display for GlobalId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}
impl std::fmt::Display for ExternId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}
