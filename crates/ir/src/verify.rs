//! Structural verification of IR.

use crate::{BlockId, Callee, FuncId, Function, Inst, Operand, Program, Reg};

/// A structural defect found by [`verify_function`] or [`verify_program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A block is empty or does not end with a terminator.
    MissingTerminator {
        /// Offending function name.
        func: String,
        /// Offending block.
        block: BlockId,
    },
    /// A terminator appears before the end of a block.
    EarlyTerminator {
        /// Offending function name.
        func: String,
        /// Offending block.
        block: BlockId,
    },
    /// A branch targets a block id that does not exist.
    BadBlockTarget {
        /// Offending function name.
        func: String,
        /// Block containing the branch.
        block: BlockId,
    },
    /// An instruction references a register `>= num_regs`.
    BadReg {
        /// Offending function name.
        func: String,
        /// The out-of-range register.
        reg: Reg,
    },
    /// An instruction references a frame slot that does not exist.
    BadSlot {
        /// Offending function name.
        func: String,
    },
    /// More declared parameters than registers.
    ParamsExceedRegs {
        /// Offending function name.
        func: String,
    },
    /// A call references a function id outside the program.
    BadCallee {
        /// Offending function name.
        func: String,
        /// The missing callee id.
        callee: FuncId,
    },
    /// A constant references a global or extern outside the program.
    BadSymbol {
        /// Offending function name.
        func: String,
    },
    /// A profile annotation's block vector length mismatches the CFG.
    ProfileShape {
        /// Offending function name.
        func: String,
    },
    /// The designated entry function does not exist or is not public.
    BadEntry,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::MissingTerminator { func, block } => {
                write!(f, "function {func}: block {block} lacks a terminator")
            }
            VerifyError::EarlyTerminator { func, block } => {
                write!(f, "function {func}: terminator mid-block in {block}")
            }
            VerifyError::BadBlockTarget { func, block } => {
                write!(f, "function {func}: branch from {block} to missing block")
            }
            VerifyError::BadReg { func, reg } => {
                write!(f, "function {func}: register {reg} out of range")
            }
            VerifyError::BadSlot { func } => write!(f, "function {func}: slot out of range"),
            VerifyError::ParamsExceedRegs { func } => {
                write!(f, "function {func}: params exceed num_regs")
            }
            VerifyError::BadCallee { func, callee } => {
                write!(f, "function {func}: call to missing function {callee}")
            }
            VerifyError::BadSymbol { func } => {
                write!(f, "function {func}: reference to missing global/extern")
            }
            VerifyError::ProfileShape { func } => {
                write!(f, "function {func}: profile shape mismatch")
            }
            VerifyError::BadEntry => write!(f, "program entry is missing or not public"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Checks one function's structural invariants (terminators, register and
/// block ranges, slot references, profile shape).
///
/// # Errors
/// Returns the first defect found.
pub fn verify_function(f: &Function) -> Result<(), VerifyError> {
    let name = || f.name.clone();
    if f.params > f.num_regs {
        return Err(VerifyError::ParamsExceedRegs { func: name() });
    }
    if let Some(p) = &f.profile {
        if p.blocks.len() != f.blocks.len() {
            return Err(VerifyError::ProfileShape { func: name() });
        }
    }
    let nblocks = f.blocks.len() as u32;
    let check_reg = |r: Reg| -> Result<(), VerifyError> {
        if r.0 >= f.num_regs {
            Err(VerifyError::BadReg {
                func: f.name.clone(),
                reg: r,
            })
        } else {
            Ok(())
        }
    };
    for (bid, block) in f.iter_blocks() {
        match block.insts.last() {
            Some(t) if t.is_terminator() => {}
            _ => {
                return Err(VerifyError::MissingTerminator {
                    func: name(),
                    block: bid,
                })
            }
        }
        for (i, inst) in block.insts.iter().enumerate() {
            if inst.is_terminator() && i + 1 != block.insts.len() {
                return Err(VerifyError::EarlyTerminator {
                    func: name(),
                    block: bid,
                });
            }
            if let Some(d) = inst.dst() {
                check_reg(d)?;
            }
            let mut bad_use = None;
            inst.for_each_use(|op| {
                if let Operand::Reg(r) = op {
                    if r.0 >= f.num_regs && bad_use.is_none() {
                        bad_use = Some(*r);
                    }
                }
            });
            if let Some(r) = bad_use {
                return Err(VerifyError::BadReg { func: name(), reg: r });
            }
            if let Inst::FrameAddr { slot, .. } = inst {
                if slot.index() >= f.slots.len() {
                    return Err(VerifyError::BadSlot { func: name() });
                }
            }
            for s in inst.successors() {
                if s.0 >= nblocks {
                    return Err(VerifyError::BadBlockTarget {
                        func: name(),
                        block: bid,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Checks the whole program: every function individually, plus that call
/// targets, globals, externs and the entry point resolve.
///
/// # Errors
/// Returns the first defect found.
pub fn verify_program(p: &Program) -> Result<(), VerifyError> {
    if let Some(e) = p.entry {
        if e.index() >= p.funcs.len() {
            return Err(VerifyError::BadEntry);
        }
    }
    for f in &p.funcs {
        verify_function(f)?;
        for block in &f.blocks {
            for inst in &block.insts {
                if let Inst::Call { callee, .. } = inst {
                    match callee {
                        Callee::Func(id) if id.index() >= p.funcs.len() => {
                            return Err(VerifyError::BadCallee {
                                func: f.name.clone(),
                                callee: *id,
                            });
                        }
                        Callee::Extern(id) if id.index() >= p.externs.len() => {
                            return Err(VerifyError::BadSymbol {
                                func: f.name.clone(),
                            });
                        }
                        _ => {}
                    }
                }
                let mut bad = false;
                let mut check_const = |c: crate::ConstVal| match c {
                    crate::ConstVal::FuncAddr(id) if id.index() >= p.funcs.len() => bad = true,
                    crate::ConstVal::GlobalAddr(id) if id.index() >= p.globals.len() => bad = true,
                    _ => {}
                };
                if let Inst::Const { value, .. } = inst {
                    check_const(*value);
                }
                inst.for_each_use(|op| {
                    if let Operand::Const(c) = op {
                        check_const(*c);
                    }
                });
                if bad {
                    return Err(VerifyError::BadSymbol {
                        func: f.name.clone(),
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstVal, Function, ModuleId, Operand};

    fn ret1() -> Function {
        let mut f = Function::new("f", ModuleId(0), 0);
        f.blocks[0].insts.push(Inst::Ret {
            value: Some(Operand::imm(1)),
        });
        f
    }

    #[test]
    fn accepts_minimal_function() {
        assert!(verify_function(&ret1()).is_ok());
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut f = ret1();
        f.blocks[0].insts.pop();
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::MissingTerminator { .. })
        ));
    }

    #[test]
    fn rejects_early_terminator() {
        let mut f = ret1();
        f.blocks[0].insts.push(Inst::Ret { value: None });
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::EarlyTerminator { .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_register() {
        let mut f = ret1();
        f.blocks[0].insts.insert(
            0,
            Inst::Const {
                dst: Reg(10),
                value: ConstVal::int(0),
            },
        );
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::BadReg { .. })
        ));
    }

    #[test]
    fn rejects_bad_branch_target() {
        let mut f = ret1();
        f.blocks[0].insts.pop();
        f.blocks[0].insts.push(Inst::Jump { target: BlockId(7) });
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::BadBlockTarget { .. })
        ));
    }

    #[test]
    fn rejects_bad_callee_in_program() {
        let mut p = Program::new();
        p.modules.push(crate::Module::new("m"));
        let mut f = ret1();
        f.blocks[0].insts.insert(
            0,
            Inst::Call {
                dst: None,
                callee: Callee::Func(FuncId(5)),
                args: vec![],
            },
        );
        p.funcs.push(f);
        p.modules[0].funcs.push(FuncId(0));
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::BadCallee { .. })
        ));
    }

    #[test]
    fn rejects_profile_shape_mismatch() {
        let mut f = ret1();
        f.profile = Some(crate::FuncProfile {
            entry: 1.0,
            blocks: vec![1.0, 2.0],
        });
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::ProfileShape { .. })
        ));
    }
}
