//! Structural verification of IR.
//!
//! Two API layers exist: [`verify_function_all`]/[`verify_program_all`]
//! collect *every* defect (the form the `hlo-lint` diagnostics layer and
//! the driver's verify-each mode consume), while [`verify_function`]/
//! [`verify_program`] are thin first-error wrappers kept for callers that
//! only need a pass/fail answer.

use crate::{BlockId, Callee, FuncId, Function, Inst, Operand, Program, Reg};

/// A structural defect found by [`verify_function`] or [`verify_program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A block is empty or does not end with a terminator.
    MissingTerminator {
        /// Offending function name.
        func: String,
        /// Offending block.
        block: BlockId,
    },
    /// A terminator appears before the end of a block.
    EarlyTerminator {
        /// Offending function name.
        func: String,
        /// Offending block.
        block: BlockId,
    },
    /// A branch targets a block id that does not exist.
    BadBlockTarget {
        /// Offending function name.
        func: String,
        /// Block containing the branch.
        block: BlockId,
    },
    /// An instruction references a register `>= num_regs`.
    BadReg {
        /// Offending function name.
        func: String,
        /// The out-of-range register.
        reg: Reg,
    },
    /// An instruction references a frame slot that does not exist.
    BadSlot {
        /// Offending function name.
        func: String,
    },
    /// More declared parameters than registers.
    ParamsExceedRegs {
        /// Offending function name.
        func: String,
    },
    /// A call references a function id outside the program.
    BadCallee {
        /// Offending function name.
        func: String,
        /// The missing callee id.
        callee: FuncId,
    },
    /// A direct call passes a different number of arguments than the
    /// callee declares. The VM tolerates this at run time (missing
    /// arguments read as 0), but no front end or transform should ever
    /// produce such a site, so the verifier rejects it.
    ArityMismatch {
        /// Offending (calling) function name.
        func: String,
        /// The callee whose signature is violated.
        callee: FuncId,
        /// Arguments the callee declares.
        expected: u32,
        /// Arguments the call site passes.
        got: usize,
    },
    /// A constant references a global or extern outside the program.
    BadSymbol {
        /// Offending function name.
        func: String,
    },
    /// A profile annotation's block vector length mismatches the CFG.
    ProfileShape {
        /// Offending function name.
        func: String,
    },
    /// The designated entry function does not exist or is not public.
    BadEntry,
}

impl VerifyError {
    /// The function the defect was found in (`None` for program-level
    /// defects such as [`VerifyError::BadEntry`]).
    pub fn func_name(&self) -> Option<&str> {
        match self {
            VerifyError::MissingTerminator { func, .. }
            | VerifyError::EarlyTerminator { func, .. }
            | VerifyError::BadBlockTarget { func, .. }
            | VerifyError::BadReg { func, .. }
            | VerifyError::BadSlot { func }
            | VerifyError::ParamsExceedRegs { func }
            | VerifyError::BadCallee { func, .. }
            | VerifyError::ArityMismatch { func, .. }
            | VerifyError::BadSymbol { func }
            | VerifyError::ProfileShape { func } => Some(func),
            VerifyError::BadEntry => None,
        }
    }

    /// The block the defect was found in, when block-granular.
    pub fn block(&self) -> Option<BlockId> {
        match self {
            VerifyError::MissingTerminator { block, .. }
            | VerifyError::EarlyTerminator { block, .. }
            | VerifyError::BadBlockTarget { block, .. } => Some(*block),
            _ => None,
        }
    }
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::MissingTerminator { func, block } => {
                write!(f, "function {func}: block {block} lacks a terminator")
            }
            VerifyError::EarlyTerminator { func, block } => {
                write!(f, "function {func}: terminator mid-block in {block}")
            }
            VerifyError::BadBlockTarget { func, block } => {
                write!(f, "function {func}: branch from {block} to missing block")
            }
            VerifyError::BadReg { func, reg } => {
                write!(f, "function {func}: register {reg} out of range")
            }
            VerifyError::BadSlot { func } => write!(f, "function {func}: slot out of range"),
            VerifyError::ParamsExceedRegs { func } => {
                write!(f, "function {func}: params exceed num_regs")
            }
            VerifyError::BadCallee { func, callee } => {
                write!(f, "function {func}: call to missing function {callee}")
            }
            VerifyError::ArityMismatch {
                func,
                callee,
                expected,
                got,
            } => {
                write!(
                    f,
                    "function {func}: call to {callee} passes {got} args, callee takes {expected}"
                )
            }
            VerifyError::BadSymbol { func } => {
                write!(f, "function {func}: reference to missing global/extern")
            }
            VerifyError::ProfileShape { func } => {
                write!(f, "function {func}: profile shape mismatch")
            }
            VerifyError::BadEntry => write!(f, "program entry is missing or not public"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Collects every structural defect of one function: terminators, register
/// and block ranges, slot references, profile shape.
pub fn verify_function_all(f: &Function) -> Vec<VerifyError> {
    let mut errs = Vec::new();
    let name = || f.name.clone();
    if f.params > f.num_regs {
        errs.push(VerifyError::ParamsExceedRegs { func: name() });
    }
    if let Some(p) = &f.profile {
        if p.blocks.len() != f.blocks.len() {
            errs.push(VerifyError::ProfileShape { func: name() });
        }
    }
    let nblocks = f.blocks.len() as u32;
    for (bid, block) in f.iter_blocks() {
        match block.insts.last() {
            Some(t) if t.is_terminator() => {}
            _ => {
                errs.push(VerifyError::MissingTerminator {
                    func: name(),
                    block: bid,
                });
            }
        }
        for (i, inst) in block.insts.iter().enumerate() {
            if inst.is_terminator() && i + 1 != block.insts.len() {
                errs.push(VerifyError::EarlyTerminator {
                    func: name(),
                    block: bid,
                });
            }
            if let Some(d) = inst.dst() {
                if d.0 >= f.num_regs {
                    errs.push(VerifyError::BadReg {
                        func: name(),
                        reg: d,
                    });
                }
            }
            let mut bad_use = None;
            inst.for_each_use(|op| {
                if let Operand::Reg(r) = op {
                    if r.0 >= f.num_regs && bad_use.is_none() {
                        bad_use = Some(*r);
                    }
                }
            });
            if let Some(r) = bad_use {
                errs.push(VerifyError::BadReg {
                    func: name(),
                    reg: r,
                });
            }
            if let Inst::FrameAddr { slot, .. } = inst {
                if slot.index() >= f.slots.len() {
                    errs.push(VerifyError::BadSlot { func: name() });
                }
            }
            for s in inst.successors() {
                if s.0 >= nblocks {
                    errs.push(VerifyError::BadBlockTarget {
                        func: name(),
                        block: bid,
                    });
                }
            }
        }
    }
    errs
}

/// Checks one function's structural invariants (terminators, register and
/// block ranges, slot references, profile shape).
///
/// # Errors
/// Returns the first defect found.
pub fn verify_function(f: &Function) -> Result<(), VerifyError> {
    match verify_function_all(f).into_iter().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Collects every structural defect of the whole program: each function
/// individually, plus call-target resolution and arity, global/extern
/// references, and the entry point.
pub fn verify_program_all(p: &Program) -> Vec<VerifyError> {
    let mut errs = Vec::new();
    if let Some(e) = p.entry {
        if e.index() >= p.funcs.len() {
            errs.push(VerifyError::BadEntry);
        }
    }
    for f in &p.funcs {
        errs.extend(verify_function_all(f));
        for block in &f.blocks {
            for inst in &block.insts {
                if let Inst::Call { callee, args, .. } = inst {
                    match callee {
                        Callee::Func(id) if id.index() >= p.funcs.len() => {
                            errs.push(VerifyError::BadCallee {
                                func: f.name.clone(),
                                callee: *id,
                            });
                        }
                        Callee::Func(id) if p.func(*id).params as usize != args.len() => {
                            errs.push(VerifyError::ArityMismatch {
                                func: f.name.clone(),
                                callee: *id,
                                expected: p.func(*id).params,
                                got: args.len(),
                            });
                        }
                        Callee::Extern(id) if id.index() >= p.externs.len() => {
                            errs.push(VerifyError::BadSymbol {
                                func: f.name.clone(),
                            });
                        }
                        _ => {}
                    }
                }
                let mut bad = false;
                let mut check_const = |c: crate::ConstVal| match c {
                    crate::ConstVal::FuncAddr(id) if id.index() >= p.funcs.len() => bad = true,
                    crate::ConstVal::GlobalAddr(id) if id.index() >= p.globals.len() => bad = true,
                    _ => {}
                };
                if let Inst::Const { value, .. } = inst {
                    check_const(*value);
                }
                inst.for_each_use(|op| {
                    if let Operand::Const(c) = op {
                        check_const(*c);
                    }
                });
                if bad {
                    errs.push(VerifyError::BadSymbol {
                        func: f.name.clone(),
                    });
                }
            }
        }
    }
    errs
}

/// Checks the whole program: every function individually, plus that call
/// targets resolve with matching arity, globals, externs and the entry
/// point exist.
///
/// # Errors
/// Returns the first defect found.
pub fn verify_program(p: &Program) -> Result<(), VerifyError> {
    match verify_program_all(p).into_iter().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstVal, Function, ModuleId, Operand};

    fn ret1() -> Function {
        let mut f = Function::new("f", ModuleId(0), 0);
        f.blocks[0].insts.push(Inst::Ret {
            value: Some(Operand::imm(1)),
        });
        f
    }

    #[test]
    fn accepts_minimal_function() {
        assert!(verify_function(&ret1()).is_ok());
        assert!(verify_function_all(&ret1()).is_empty());
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut f = ret1();
        f.blocks[0].insts.pop();
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::MissingTerminator { .. })
        ));
    }

    #[test]
    fn rejects_early_terminator() {
        let mut f = ret1();
        f.blocks[0].insts.push(Inst::Ret { value: None });
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::EarlyTerminator { .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_register() {
        let mut f = ret1();
        f.blocks[0].insts.insert(
            0,
            Inst::Const {
                dst: Reg(10),
                value: ConstVal::int(0),
            },
        );
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::BadReg { .. })
        ));
    }

    #[test]
    fn rejects_bad_branch_target() {
        let mut f = ret1();
        f.blocks[0].insts.pop();
        f.blocks[0].insts.push(Inst::Jump { target: BlockId(7) });
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::BadBlockTarget { .. })
        ));
    }

    #[test]
    fn rejects_bad_callee_in_program() {
        let mut p = Program::new();
        p.modules.push(crate::Module::new("m"));
        let mut f = ret1();
        f.blocks[0].insts.insert(
            0,
            Inst::Call {
                dst: None,
                callee: Callee::Func(FuncId(5)),
                args: vec![],
            },
        );
        p.funcs.push(f);
        p.modules[0].funcs.push(FuncId(0));
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::BadCallee { .. })
        ));
    }

    #[test]
    fn rejects_arity_mismatch_in_program() {
        // callee takes 2 params, the site passes 1
        let mut p = Program::new();
        p.modules.push(crate::Module::new("m"));
        let mut caller = ret1();
        caller.name = "caller".into();
        caller.num_regs = 1;
        caller.blocks[0].insts.insert(
            0,
            Inst::Call {
                dst: Some(Reg(0)),
                callee: Callee::Func(FuncId(1)),
                args: vec![Operand::imm(1)],
            },
        );
        p.funcs.push(caller);
        let mut callee = Function::new("callee", ModuleId(0), 2);
        callee.blocks[0].insts.push(Inst::Ret {
            value: Some(Operand::imm(0)),
        });
        p.funcs.push(callee);
        p.modules[0].funcs.push(FuncId(0));
        p.modules[0].funcs.push(FuncId(1));
        match verify_program(&p) {
            Err(VerifyError::ArityMismatch {
                func,
                callee,
                expected,
                got,
            }) => {
                assert_eq!(func, "caller");
                assert_eq!(callee, FuncId(1));
                assert_eq!(expected, 2);
                assert_eq!(got, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_profile_shape_mismatch() {
        let mut f = ret1();
        f.profile = Some(crate::FuncProfile {
            entry: 1.0,
            blocks: vec![1.0, 2.0],
        });
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::ProfileShape { .. })
        ));
    }

    #[test]
    fn collects_multiple_defects() {
        // Missing terminator in one block AND a bad register in another.
        let mut f = ret1();
        f.blocks[0].insts.insert(
            0,
            Inst::Const {
                dst: Reg(10),
                value: ConstVal::int(0),
            },
        );
        let b = f.new_block(); // left without a terminator
        let _ = b;
        let errs = verify_function_all(&f);
        assert!(errs.len() >= 2, "{errs:?}");
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::MissingTerminator { .. })));
        assert!(errs.iter().any(|e| matches!(e, VerifyError::BadReg { .. })));
    }
}
