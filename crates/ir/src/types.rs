//! Value types and compile-time constants.

use crate::{FuncId, GlobalId};

/// The small type universe of the IR.
///
/// Like many 1990s intermediate forms, the IR is mostly untyped at the
/// register level: registers hold 64-bit values that instructions interpret
/// as integers, floats, or addresses. `Type` records declared intent for
/// function returns and is used by legality checks ("gross type mismatch"
/// in the paper disallows inlining and cloning).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Type {
    /// 64-bit signed integer (also used for addresses).
    #[default]
    I64,
    /// 64-bit IEEE float.
    F64,
    /// No value (procedures).
    Void,
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Type::I64 => write!(f, "i64"),
            Type::F64 => write!(f, "f64"),
            Type::Void => write!(f, "void"),
        }
    }
}

/// An IEEE-754 double stored as raw bits so that constants are `Eq + Hash`
/// (clone specifications are hashed in the clone database).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct F64Bits(pub u64);

impl F64Bits {
    /// Wraps a float value.
    pub fn from_f64(v: f64) -> Self {
        F64Bits(v.to_bits())
    }

    /// Recovers the float value.
    pub fn to_f64(self) -> f64 {
        f64::from_bits(self.0)
    }
}

impl From<f64> for F64Bits {
    fn from(v: f64) -> Self {
        F64Bits::from_f64(v)
    }
}

/// A compile-time constant value.
///
/// Function and global addresses are first-class constants: this is what
/// allows the constant-propagation lattice to carry function pointers to
/// indirect call sites so that a later pass can promote and then inline
/// them (the staged optimization of paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstVal {
    /// Integer constant.
    I64(i64),
    /// Float constant (bit-exact).
    F64(F64Bits),
    /// Address of a function (a function pointer).
    FuncAddr(FuncId),
    /// Address of a global variable.
    GlobalAddr(GlobalId),
}

impl ConstVal {
    /// Convenience constructor for integer constants.
    pub fn int(v: i64) -> Self {
        ConstVal::I64(v)
    }

    /// Convenience constructor for float constants.
    pub fn float(v: f64) -> Self {
        ConstVal::F64(F64Bits::from_f64(v))
    }

    /// Returns the integer payload, if this is an integer constant.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            ConstVal::I64(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the function referenced, if this is a function address.
    pub fn as_func_addr(self) -> Option<FuncId> {
        match self {
            ConstVal::FuncAddr(f) => Some(f),
            _ => None,
        }
    }
}

impl std::fmt::Display for ConstVal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConstVal::I64(v) => write!(f, "{v}"),
            ConstVal::F64(b) => write!(f, "{}f", b.to_f64()),
            ConstVal::FuncAddr(id) => write!(f, "&{id}"),
            ConstVal::GlobalAddr(id) => write!(f, "&{id}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_bits_roundtrip() {
        for v in [0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, std::f64::consts::PI] {
            assert_eq!(F64Bits::from_f64(v).to_f64(), v);
        }
    }

    #[test]
    fn f64_bits_distinguishes_zero_signs() {
        assert_ne!(F64Bits::from_f64(0.0), F64Bits::from_f64(-0.0));
    }

    #[test]
    fn const_accessors() {
        assert_eq!(ConstVal::int(7).as_i64(), Some(7));
        assert_eq!(ConstVal::float(1.0).as_i64(), None);
        assert_eq!(
            ConstVal::FuncAddr(FuncId(3)).as_func_addr(),
            Some(FuncId(3))
        );
        assert_eq!(ConstVal::int(1).as_func_addr(), None);
    }

    #[test]
    fn const_display() {
        assert_eq!(ConstVal::int(-4).to_string(), "-4");
        assert_eq!(ConstVal::FuncAddr(FuncId(1)).to_string(), "&f1");
        assert_eq!(ConstVal::GlobalAddr(GlobalId(2)).to_string(), "&g2");
    }
}
