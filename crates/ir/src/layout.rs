//! Static code layout: assigns every instruction a byte address.
//!
//! The PA8000-style simulator (crate `hlo-sim`) fetches instructions by
//! address, so I-cache behaviour depends on where the optimizer's output is
//! laid out. Functions are placed module-by-module in program order, each
//! instruction occupying [`INST_BYTES`] bytes — a fixed-width RISC encoding,
//! as on PA-RISC.

use crate::{BlockId, FuncId, Program};

/// Bytes per encoded instruction (PA-RISC instructions are 4 bytes).
pub const INST_BYTES: u64 = 4;

/// Per-function placement: base address plus per-block offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncLayout {
    /// Address of the function's first instruction.
    pub base: u64,
    /// Byte offset of each block's first instruction from `base`.
    pub block_offsets: Vec<u64>,
    /// Total code bytes for the function.
    pub bytes: u64,
}

/// A full program layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeLayout {
    funcs: Vec<FuncLayout>,
    total: u64,
}

impl CodeLayout {
    /// Computes a layout for `p`: modules in order, functions in module
    /// definition order, blocks in CFG order.
    pub fn of(p: &Program) -> Self {
        let order: Vec<FuncId> = p
            .modules
            .iter()
            .flat_map(|m| m.funcs.iter().copied())
            .collect();
        Self::with_order(p, &order)
    }

    /// Computes a layout placing functions in the given order (e.g. a
    /// profile-guided ordering from procedure positioning). Functions not
    /// listed — and deleted functions (absent from their module's list) —
    /// get zero-sized placements at the end of the image.
    pub fn with_order(p: &Program, order: &[FuncId]) -> Self {
        let mut funcs: Vec<Option<FuncLayout>> = vec![None; p.funcs.len()];
        let mut cursor = 0u64;
        for &fid in order {
            if funcs[fid.index()].is_some() {
                continue; // duplicate entry: first placement wins
            }
            if !p.module(p.func(fid).module).funcs.contains(&fid) {
                continue; // deleted function: no code emitted
            }
            let f = p.func(fid);
            let mut block_offsets = Vec::with_capacity(f.blocks.len());
            let mut off = 0u64;
            for b in &f.blocks {
                block_offsets.push(off);
                off += b.insts.len() as u64 * INST_BYTES;
            }
            funcs[fid.index()] = Some(FuncLayout {
                base: cursor,
                block_offsets,
                bytes: off,
            });
            cursor += off;
        }
        let funcs = funcs
            .into_iter()
            .map(|fl| {
                fl.unwrap_or(FuncLayout {
                    base: cursor,
                    block_offsets: Vec::new(),
                    bytes: 0,
                })
            })
            .collect();
        CodeLayout {
            funcs,
            total: cursor,
        }
    }

    /// Address of instruction `idx` of block `b` in function `f`.
    ///
    /// # Panics
    /// Panics if the function or block is out of range.
    pub fn addr(&self, f: FuncId, b: BlockId, idx: usize) -> u64 {
        let fl = &self.funcs[f.index()];
        fl.base + fl.block_offsets[b.index()] + idx as u64 * INST_BYTES
    }

    /// The placement of one function.
    ///
    /// # Panics
    /// Panics if `f` is out of range.
    pub fn func(&self, f: FuncId) -> &FuncLayout {
        &self.funcs[f.index()]
    }

    /// Total code bytes in the program image.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionBuilder, Linkage, Operand, ProgramBuilder, Type};

    fn program() -> Program {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        for name in ["a", "b"] {
            let mut fb = FunctionBuilder::new(name, m, 0);
            let e = fb.entry_block();
            let x = fb.iconst(e, 1);
            fb.ret(e, Some(Operand::Reg(x)));
            pb.add_function(fb.finish(Linkage::Public, Type::I64));
        }
        pb.finish(None)
    }

    #[test]
    fn functions_are_packed_contiguously() {
        let p = program();
        let l = CodeLayout::of(&p);
        assert_eq!(l.func(FuncId(0)).base, 0);
        assert_eq!(l.func(FuncId(0)).bytes, 2 * INST_BYTES);
        assert_eq!(l.func(FuncId(1)).base, 2 * INST_BYTES);
        assert_eq!(l.total_bytes(), 4 * INST_BYTES);
    }

    #[test]
    fn instruction_addresses_advance_by_inst_bytes() {
        let p = program();
        let l = CodeLayout::of(&p);
        let a0 = l.addr(FuncId(0), BlockId(0), 0);
        let a1 = l.addr(FuncId(0), BlockId(0), 1);
        assert_eq!(a1 - a0, INST_BYTES);
    }

    #[test]
    fn layouts_do_not_overlap() {
        let p = program();
        let l = CodeLayout::of(&p);
        let f0 = l.func(FuncId(0));
        let f1 = l.func(FuncId(1));
        assert!(f0.base + f0.bytes <= f1.base);
    }
}
