//! Convenience builders for constructing IR by hand (tests, examples and
//! the front end's lowering all use these).

use crate::{
    BinOp, BlockId, Callee, ConstVal, Extern, ExternId, FuncId, Function, Global, GlobalId, Inst,
    Linkage, Module, ModuleId, Operand, Program, Reg, SlotId, Type, UnOp,
};

/// Incrementally builds a [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Adds a module and returns its id.
    pub fn add_module(&mut self, name: impl Into<String>) -> ModuleId {
        let id = ModuleId(self.program.modules.len() as u32);
        self.program.modules.push(Module::new(name));
        id
    }

    /// Adds a finished function, returning its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        self.program.push_function(f)
    }

    /// Adds a global variable.
    pub fn add_global(
        &mut self,
        name: impl Into<String>,
        module: ModuleId,
        linkage: Linkage,
        words: u32,
        init: Vec<i64>,
    ) -> GlobalId {
        let id = GlobalId(self.program.globals.len() as u32);
        self.program.globals.push(Global {
            name: name.into(),
            module,
            linkage,
            words,
            init,
        });
        id
    }

    /// Declares (or finds) an external routine.
    pub fn declare_extern(
        &mut self,
        name: impl Into<String>,
        params: Option<u32>,
        has_ret: bool,
    ) -> ExternId {
        let name = name.into();
        if let Some(id) = self.program.find_extern(&name) {
            return id;
        }
        let id = ExternId(self.program.externs.len() as u32);
        self.program.externs.push(Extern {
            name,
            params,
            has_ret,
        });
        id
    }

    /// Finalizes the program with the given entry point.
    pub fn finish(mut self, entry: Option<FuncId>) -> Program {
        self.program.entry = entry;
        self.program
    }

    /// Read access to the program built so far.
    pub fn program(&self) -> &Program {
        &self.program
    }
}

/// Incrementally builds a [`Function`]. Instructions are appended to a
/// designated block, so builders can interleave work on several blocks.
#[derive(Debug)]
pub struct FunctionBuilder {
    f: Function,
}

impl FunctionBuilder {
    /// Starts a function with `params` parameters and an empty entry block.
    pub fn new(name: impl Into<String>, module: ModuleId, params: u32) -> Self {
        FunctionBuilder {
            f: Function::new(name, module, params),
        }
    }

    /// The entry block id.
    pub fn entry_block(&self) -> BlockId {
        BlockId(0)
    }

    /// The register holding parameter `i`.
    ///
    /// # Panics
    /// Panics if `i >= params`.
    pub fn param(&self, i: u32) -> Reg {
        assert!(i < self.f.params, "parameter index out of range");
        Reg(i)
    }

    /// Appends a fresh empty block.
    pub fn new_block(&mut self) -> BlockId {
        self.f.new_block()
    }

    /// Allocates a fresh register.
    pub fn new_reg(&mut self) -> Reg {
        self.f.new_reg()
    }

    /// Allocates a frame slot of `bytes` bytes.
    pub fn new_slot(&mut self, bytes: u32) -> SlotId {
        self.f.new_slot(bytes)
    }

    /// Appends a raw instruction to `b`.
    pub fn push(&mut self, b: BlockId, inst: Inst) {
        self.f.block_mut(b).insts.push(inst);
    }

    /// `dst = value`, in a fresh register.
    pub fn const_(&mut self, b: BlockId, value: ConstVal) -> Reg {
        let dst = self.new_reg();
        self.push(b, Inst::Const { dst, value });
        dst
    }

    /// Integer constant convenience.
    pub fn iconst(&mut self, b: BlockId, v: i64) -> Reg {
        self.const_(b, ConstVal::I64(v))
    }

    /// `dst = a <op> b`, in a fresh register.
    pub fn bin(&mut self, b: BlockId, op: BinOp, a: Operand, c: Operand) -> Reg {
        let dst = self.new_reg();
        self.push(b, Inst::Bin { dst, op, a, b: c });
        dst
    }

    /// `dst = <op> a`, in a fresh register.
    pub fn un(&mut self, b: BlockId, op: UnOp, a: Operand) -> Reg {
        let dst = self.new_reg();
        self.push(b, Inst::Un { dst, op, a });
        dst
    }

    /// `dst = src`, into an existing register.
    pub fn copy_to(&mut self, b: BlockId, dst: Reg, src: Operand) {
        self.push(b, Inst::Copy { dst, src });
    }

    /// `dst = mem[base + offset]`, in a fresh register.
    pub fn load(&mut self, b: BlockId, base: Operand, offset: Operand) -> Reg {
        let dst = self.new_reg();
        self.push(b, Inst::Load { dst, base, offset });
        dst
    }

    /// `mem[base + offset] = value`.
    pub fn store(&mut self, b: BlockId, base: Operand, offset: Operand, value: Operand) {
        self.push(
            b,
            Inst::Store {
                base,
                offset,
                value,
            },
        );
    }

    /// `dst = &slot`, in a fresh register.
    pub fn frame_addr(&mut self, b: BlockId, slot: SlotId) -> Reg {
        let dst = self.new_reg();
        self.push(b, Inst::FrameAddr { dst, slot });
        dst
    }

    /// Direct call returning a value in a fresh register.
    pub fn call(&mut self, b: BlockId, callee: FuncId, args: Vec<Operand>) -> Reg {
        let dst = self.new_reg();
        self.push(
            b,
            Inst::Call {
                dst: Some(dst),
                callee: Callee::Func(callee),
                args,
            },
        );
        dst
    }

    /// Direct call discarding any result.
    pub fn call_void(&mut self, b: BlockId, callee: FuncId, args: Vec<Operand>) {
        self.push(
            b,
            Inst::Call {
                dst: None,
                callee: Callee::Func(callee),
                args,
            },
        );
    }

    /// Call to an external routine.
    pub fn call_extern(
        &mut self,
        b: BlockId,
        callee: ExternId,
        args: Vec<Operand>,
        want_ret: bool,
    ) -> Option<Reg> {
        let dst = want_ret.then(|| self.new_reg());
        self.push(
            b,
            Inst::Call {
                dst,
                callee: Callee::Extern(callee),
                args,
            },
        );
        dst
    }

    /// Indirect call through a function-pointer operand.
    pub fn call_indirect(&mut self, b: BlockId, fptr: Operand, args: Vec<Operand>) -> Reg {
        let dst = self.new_reg();
        self.push(
            b,
            Inst::Call {
                dst: Some(dst),
                callee: Callee::Indirect(fptr),
                args,
            },
        );
        dst
    }

    /// `ret value`.
    pub fn ret(&mut self, b: BlockId, value: Option<Operand>) {
        self.push(b, Inst::Ret { value });
    }

    /// `jump target`.
    pub fn jump(&mut self, b: BlockId, target: BlockId) {
        self.push(b, Inst::Jump { target });
    }

    /// `br cond ? then_ : else_`.
    pub fn br(&mut self, b: BlockId, cond: Operand, then_: BlockId, else_: BlockId) {
        self.push(b, Inst::Br { cond, then_, else_ });
    }

    /// Sets user pragmas and flags.
    pub fn flags_mut(&mut self) -> &mut crate::FuncFlags {
        &mut self.f.flags
    }

    /// Finalizes into a [`Function`] with the given linkage and return type.
    pub fn finish(mut self, linkage: Linkage, ret: Type) -> Function {
        self.f.linkage = linkage;
        self.f.ret = ret;
        self.f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_function() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut fb = FunctionBuilder::new("f", m, 2);
        let e = fb.entry_block();
        let a = fb.param(0);
        let b = fb.param(1);
        let sum = fb.bin(e, BinOp::Add, a.into(), b.into());
        fb.ret(e, Some(sum.into()));
        let id = pb.add_function(fb.finish(Linkage::Public, Type::I64));
        let p = pb.finish(Some(id));
        crate::verify_program(&p).unwrap();
        assert_eq!(p.func(id).size(), 2);
    }

    #[test]
    fn extern_declaration_dedups() {
        let mut pb = ProgramBuilder::new();
        let a = pb.declare_extern("print", Some(1), false);
        let b = pb.declare_extern("print", Some(1), false);
        assert_eq!(a, b);
        assert_eq!(pb.program().externs.len(), 1);
    }

    #[test]
    #[should_panic(expected = "parameter index out of range")]
    fn param_out_of_range_panics() {
        let fb = FunctionBuilder::new("f", ModuleId(0), 1);
        let _ = fb.param(1);
    }

    #[test]
    fn block_helpers() {
        let mut fb = FunctionBuilder::new("f", ModuleId(0), 0);
        let e = fb.entry_block();
        let t = fb.new_block();
        let z = fb.new_block();
        let c = fb.iconst(e, 1);
        fb.br(e, c.into(), t, z);
        fb.ret(t, Some(Operand::imm(1)));
        fb.ret(z, Some(Operand::imm(0)));
        let f = fb.finish(Linkage::Public, Type::I64);
        assert_eq!(f.blocks.len(), 3);
        assert_eq!(f.block(BlockId(0)).successors(), vec![t, z]);
    }
}
