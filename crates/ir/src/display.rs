//! Human-readable IR printing (for debugging, tests and examples).

use crate::{Callee, Function, Inst, Operand, Program};
use std::fmt::{self, Write as _};

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Const(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Display for Callee {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Callee::Func(id) => write!(f, "{id}"),
            Callee::Extern(id) => write!(f, "{id}"),
            Callee::Indirect(op) => write!(f, "*{op}"),
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Const { dst, value } => write!(f, "{dst} = const {value}"),
            Inst::Copy { dst, src } => write!(f, "{dst} = {src}"),
            Inst::Bin { dst, op, a, b } => write!(f, "{dst} = {op:?} {a}, {b}"),
            Inst::Un { dst, op, a } => write!(f, "{dst} = {op:?} {a}"),
            Inst::Load { dst, base, offset } => write!(f, "{dst} = load [{base} + {offset}]"),
            Inst::Store {
                base,
                offset,
                value,
            } => write!(f, "store [{base} + {offset}] = {value}"),
            Inst::FrameAddr { dst, slot } => write!(f, "{dst} = frameaddr {slot}"),
            Inst::Alloca { dst, bytes } => write!(f, "{dst} = alloca {bytes}"),
            Inst::Call { dst, callee, args } => {
                if let Some(d) = dst {
                    write!(f, "{d} = ")?;
                }
                write!(f, "call {callee}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Inst::Ret { value } => match value {
                Some(v) => write!(f, "ret {v}"),
                None => write!(f, "ret"),
            },
            Inst::Jump { target } => write!(f, "jump {target}"),
            Inst::Br { cond, then_, else_ } => write!(f, "br {cond} ? {then_} : {else_}"),
        }
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fn {}({} params, {} regs, {:?})",
            self.name, self.params, self.num_regs, self.linkage
        )?;
        writeln!(f, " {{")?;
        for (bid, block) in self.iter_blocks() {
            let freq = self
                .profile
                .as_ref()
                .and_then(|p| p.blocks.get(bid.index()))
                .map(|c| format!("  ; freq {c:.0}"))
                .unwrap_or_default();
            writeln!(f, "{bid}:{freq}")?;
            for inst in &block.insts {
                writeln!(f, "  {inst}")?;
            }
        }
        write!(f, "}}")
    }
}

/// Renders the whole program as text, grouped by module.
pub fn dump_program(p: &Program) -> String {
    let mut out = String::new();
    for (mi, m) in p.modules.iter().enumerate() {
        let _ = writeln!(out, "module {} ({}):", m.name, mi);
        for &fid in &m.funcs {
            let _ = writeln!(out, "{}  ; {}", p.func(fid), fid);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinOp, BlockId, ConstVal, ModuleId, Reg};

    #[test]
    fn instruction_rendering() {
        let i = Inst::Bin {
            dst: Reg(2),
            op: BinOp::Add,
            a: Operand::Reg(Reg(0)),
            b: Operand::imm(3),
        };
        assert_eq!(i.to_string(), "r2 = Add r0, 3");
        let c = Inst::Call {
            dst: Some(Reg(1)),
            callee: Callee::Indirect(Operand::Reg(Reg(0))),
            args: vec![Operand::imm(1), Operand::imm(2)],
        };
        assert_eq!(c.to_string(), "r1 = call *r0(1, 2)");
    }

    #[test]
    fn function_rendering_includes_blocks() {
        let mut f = Function::new("t", ModuleId(0), 0);
        f.blocks[0].insts.push(Inst::Const {
            dst: Reg(0),
            value: ConstVal::int(1),
        });
        f.num_regs = 1;
        f.blocks[0].insts.push(Inst::Jump { target: BlockId(1) });
        f.new_block();
        f.blocks[1].insts.push(Inst::Ret { value: None });
        let s = f.to_string();
        assert!(s.contains("b0:"));
        assert!(s.contains("b1:"));
        assert!(s.contains("jump b1"));
    }
}
