//! Textual serialization of whole programs.
//!
//! The format is line-oriented and stable, so optimized IR can be dumped,
//! diffed, stored and reloaded — the role HP's *isom* files played for
//! ucode. Instructions use the same syntax as their `Display` impls.
//!
//! ```text
//! hlo-ir v1
//! extern print_i64 1 ret
//! module lex
//! global seed 0 pub 1 = 42
//! func next_token 0 pub params=0 regs=5 ret=i64
//! slots 8
//! flags noinline
//! profile 100 100 400 100
//! block
//!   r0 = const 1
//!   ret r0
//! endfunc
//! entry 0
//! ```

use crate::{
    BinOp, Block, BlockId, Callee, ConstVal, Extern, ExternId, F64Bits, FuncId, FuncProfile,
    Function, Global, GlobalId, Inst, Linkage, Module, ModuleId, Operand, Program, Reg, SlotId,
    Type, UnOp,
};
use std::fmt::Write as _;

/// Error from [`parse_program_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrParseError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for IrParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ir text line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for IrParseError {}

/// Serializes `p` to the text format.
pub fn program_to_text(p: &Program) -> String {
    let mut out = String::from("hlo-ir v1\n");
    for e in &p.externs {
        let arity = e
            .params
            .map(|n| n.to_string())
            .unwrap_or_else(|| "var".to_string());
        let ret = if e.has_ret { "ret" } else { "noret" };
        let _ = writeln!(out, "extern {} {} {}", e.name, arity, ret);
    }
    for m in &p.modules {
        let _ = writeln!(out, "module {}", m.name);
    }
    for g in &p.globals {
        let link = if g.linkage == Linkage::Public {
            "pub"
        } else {
            "static"
        };
        let _ = write!(out, "global {} {} {} {}", g.name, g.module.0, link, g.words);
        if !g.init.is_empty() {
            let _ = write!(out, " =");
            for v in &g.init {
                let _ = write!(out, " {v}");
            }
        }
        out.push('\n');
    }
    for (id, f) in p.iter_funcs() {
        let dead = !p.module(f.module).funcs.contains(&id);
        write_function(&mut out, f, dead);
    }
    if let Some(e) = p.entry {
        let _ = writeln!(out, "entry {}", e.0);
    }
    out
}

/// Serializes one function exactly as [`program_to_text`] prints it inside
/// a program (minus the surrounding program context). This is the
/// canonical form content hashing is defined over — see
/// [`crate::hash_function`].
pub fn function_to_text(f: &Function) -> String {
    let mut out = String::new();
    write_function(&mut out, f, false);
    out
}

fn write_function(out: &mut String, f: &Function, dead: bool) {
    let link = if f.linkage == Linkage::Public {
        "pub"
    } else {
        "static"
    };
    let dead = if dead { " dead" } else { "" };
    let _ = writeln!(
        out,
        "func {} {} {} params={} regs={} ret={}{}",
        f.name, f.module.0, link, f.params, f.num_regs, f.ret, dead
    );
    if !f.slots.is_empty() {
        let _ = write!(out, "slots");
        for s in &f.slots {
            let _ = write!(out, " {s}");
        }
        out.push('\n');
    }
    let mut flags = Vec::new();
    if f.flags.noinline {
        flags.push("noinline");
    }
    if f.flags.inline_hint {
        flags.push("inline_hint");
    }
    if f.flags.strict_fp {
        flags.push("strict_fp");
    }
    if f.flags.varargs {
        flags.push("varargs");
    }
    if !flags.is_empty() {
        let _ = writeln!(out, "flags {}", flags.join(" "));
    }
    if let Some(pr) = &f.profile {
        let _ = write!(out, "profile {}", pr.entry);
        for b in &pr.blocks {
            let _ = write!(out, " {b}");
        }
        out.push('\n');
    }
    for b in &f.blocks {
        out.push_str("block\n");
        for inst in &b.insts {
            let _ = writeln!(out, "  {inst}");
        }
    }
    out.push_str("endfunc\n");
}

/// Parses the text format back into a [`Program`].
///
/// # Errors
/// Returns a positioned error on any malformed line; the resulting
/// program additionally satisfies [`crate::verify_program`] when the
/// input was produced by [`program_to_text`].
pub fn parse_program_text(text: &str) -> Result<Program, IrParseError> {
    let mut p = Program::new();
    let mut cur_func: Option<(Function, bool)> = None; // (function, dead)
    let mut lines = text.lines().enumerate();

    let err = |ln: usize, msg: String| IrParseError { line: ln + 1, msg };

    let header = lines.next();
    match header {
        Some((_, l)) if l.trim() == "hlo-ir v1" => {}
        _ => {
            return Err(IrParseError {
                line: 1,
                msg: "missing `hlo-ir v1` header".to_string(),
            })
        }
    }

    for (ln, raw) in lines {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().expect("non-empty");
        match tag {
            "extern" => {
                let name = parts.next().ok_or_else(|| err(ln, "extern name".into()))?;
                let arity = parts.next().ok_or_else(|| err(ln, "extern arity".into()))?;
                let params = if arity == "var" {
                    None
                } else {
                    Some(arity.parse().map_err(|_| err(ln, "bad arity".into()))?)
                };
                let has_ret = parts.next() == Some("ret");
                p.externs.push(Extern {
                    name: name.to_string(),
                    params,
                    has_ret,
                });
            }
            "module" => {
                let name = parts.next().ok_or_else(|| err(ln, "module name".into()))?;
                p.modules.push(Module::new(name));
            }
            "global" => {
                let name = parts.next().ok_or_else(|| err(ln, "global name".into()))?;
                let module: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(ln, "global module".into()))?;
                let linkage = match parts.next() {
                    Some("pub") => Linkage::Public,
                    Some("static") => Linkage::Static,
                    _ => return Err(err(ln, "global linkage".into())),
                };
                let words: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(ln, "global words".into()))?;
                let mut init = Vec::new();
                let rest: Vec<&str> = parts.collect();
                if !rest.is_empty() {
                    if rest[0] != "=" {
                        return Err(err(ln, "expected `=` before initializers".into()));
                    }
                    for v in &rest[1..] {
                        init.push(v.parse().map_err(|_| err(ln, "bad initializer".into()))?);
                    }
                }
                p.globals.push(Global {
                    name: name.to_string(),
                    module: ModuleId(module),
                    linkage,
                    words,
                    init,
                });
            }
            "func" => {
                if cur_func.is_some() {
                    return Err(err(ln, "nested func".into()));
                }
                let name = parts.next().ok_or_else(|| err(ln, "func name".into()))?;
                let module: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(ln, "func module".into()))?;
                let linkage = match parts.next() {
                    Some("pub") => Linkage::Public,
                    Some("static") => Linkage::Static,
                    _ => return Err(err(ln, "func linkage".into())),
                };
                let mut params = 0;
                let mut regs = 0;
                let mut ret = Type::I64;
                let mut dead = false;
                for kv in parts {
                    if kv == "dead" {
                        dead = true;
                    } else if let Some(v) = kv.strip_prefix("params=") {
                        params = v.parse().map_err(|_| err(ln, "bad params".into()))?;
                    } else if let Some(v) = kv.strip_prefix("regs=") {
                        regs = v.parse().map_err(|_| err(ln, "bad regs".into()))?;
                    } else if let Some(v) = kv.strip_prefix("ret=") {
                        ret = match v {
                            "i64" => Type::I64,
                            "f64" => Type::F64,
                            "void" => Type::Void,
                            _ => return Err(err(ln, "bad ret type".into())),
                        };
                    } else {
                        return Err(err(ln, format!("unknown func attribute `{kv}`")));
                    }
                }
                let mut f = Function::new(name, ModuleId(module), params);
                f.num_regs = regs.max(params);
                f.ret = ret;
                f.linkage = linkage;
                f.blocks.clear();
                cur_func = Some((f, dead));
            }
            "slots" => {
                let f = &mut cur_func
                    .as_mut()
                    .ok_or_else(|| err(ln, "slots outside func".into()))?
                    .0;
                for s in parts {
                    f.slots
                        .push(s.parse().map_err(|_| err(ln, "bad slot".into()))?);
                }
            }
            "flags" => {
                let f = &mut cur_func
                    .as_mut()
                    .ok_or_else(|| err(ln, "flags outside func".into()))?
                    .0;
                for fl in parts {
                    match fl {
                        "noinline" => f.flags.noinline = true,
                        "inline_hint" => f.flags.inline_hint = true,
                        "strict_fp" => f.flags.strict_fp = true,
                        "varargs" => f.flags.varargs = true,
                        other => return Err(err(ln, format!("unknown flag `{other}`"))),
                    }
                }
            }
            "profile" => {
                let f = &mut cur_func
                    .as_mut()
                    .ok_or_else(|| err(ln, "profile outside func".into()))?
                    .0;
                let entry: f64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(ln, "bad profile entry".into()))?;
                let mut blocks = Vec::new();
                for b in parts {
                    blocks.push(b.parse().map_err(|_| err(ln, "bad profile count".into()))?);
                }
                f.profile = Some(FuncProfile { entry, blocks });
            }
            "block" => {
                let f = &mut cur_func
                    .as_mut()
                    .ok_or_else(|| err(ln, "block outside func".into()))?
                    .0;
                f.blocks.push(Block::new());
            }
            "endfunc" => {
                let (f, dead) = cur_func
                    .take()
                    .ok_or_else(|| err(ln, "stray endfunc".into()))?;
                if f.module.index() >= p.modules.len() {
                    return Err(err(ln, "func module out of range".into()));
                }
                let id = p.push_function(f);
                if dead {
                    let m = p.func(id).module;
                    p.modules[m.index()].funcs.retain(|&x| x != id);
                }
            }
            "entry" => {
                let id: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(ln, "bad entry".into()))?;
                p.entry = Some(FuncId(id));
            }
            _ => {
                // An instruction line inside the current block.
                let f = &mut cur_func
                    .as_mut()
                    .ok_or_else(|| err(ln, format!("unknown record `{tag}`")))?
                    .0;
                let block = f
                    .blocks
                    .last_mut()
                    .ok_or_else(|| err(ln, "instruction outside block".into()))?;
                let inst = parse_inst(line).map_err(|msg| err(ln, msg))?;
                block.insts.push(inst);
            }
        }
    }
    if cur_func.is_some() {
        return Err(IrParseError {
            line: text.lines().count(),
            msg: "unterminated func".to_string(),
        });
    }
    Ok(p)
}

// ---- instruction parsing (Display syntax) -------------------------------

fn parse_reg(s: &str) -> Result<Reg, String> {
    s.strip_prefix('r')
        .and_then(|n| n.parse().ok())
        .map(Reg)
        .ok_or_else(|| format!("expected register, found `{s}`"))
}

fn parse_block_id(s: &str) -> Result<BlockId, String> {
    s.strip_prefix('b')
        .and_then(|n| n.parse().ok())
        .map(BlockId)
        .ok_or_else(|| format!("expected block id, found `{s}`"))
}

fn parse_const(s: &str) -> Result<ConstVal, String> {
    if let Some(rest) = s.strip_prefix("&f") {
        return rest
            .parse()
            .map(|n| ConstVal::FuncAddr(FuncId(n)))
            .map_err(|_| format!("bad func addr `{s}`"));
    }
    if let Some(rest) = s.strip_prefix("&g") {
        return rest
            .parse()
            .map(|n| ConstVal::GlobalAddr(GlobalId(n)))
            .map_err(|_| format!("bad global addr `{s}`"));
    }
    if let Some(rest) = s.strip_suffix('f') {
        if let Ok(v) = rest.parse::<f64>() {
            return Ok(ConstVal::F64(F64Bits::from_f64(v)));
        }
    }
    s.parse::<i64>()
        .map(ConstVal::I64)
        .map_err(|_| format!("bad constant `{s}`"))
}

fn parse_operand(s: &str) -> Result<Operand, String> {
    if s.starts_with('r') && s[1..].chars().all(|c| c.is_ascii_digit()) && s.len() > 1 {
        Ok(Operand::Reg(parse_reg(s)?))
    } else {
        parse_const(s).map(Operand::Const)
    }
}

fn parse_bin_op(s: &str) -> Option<BinOp> {
    Some(match s {
        "Add" => BinOp::Add,
        "Sub" => BinOp::Sub,
        "Mul" => BinOp::Mul,
        "Div" => BinOp::Div,
        "Rem" => BinOp::Rem,
        "And" => BinOp::And,
        "Or" => BinOp::Or,
        "Xor" => BinOp::Xor,
        "Shl" => BinOp::Shl,
        "Shr" => BinOp::Shr,
        "Eq" => BinOp::Eq,
        "Ne" => BinOp::Ne,
        "Lt" => BinOp::Lt,
        "Le" => BinOp::Le,
        "Gt" => BinOp::Gt,
        "Ge" => BinOp::Ge,
        "FAdd" => BinOp::FAdd,
        "FSub" => BinOp::FSub,
        "FMul" => BinOp::FMul,
        "FDiv" => BinOp::FDiv,
        "FLt" => BinOp::FLt,
        "FEq" => BinOp::FEq,
        _ => return None,
    })
}

fn parse_un_op(s: &str) -> Option<UnOp> {
    Some(match s {
        "Neg" => UnOp::Neg,
        "Not" => UnOp::Not,
        "FNeg" => UnOp::FNeg,
        "IToF" => UnOp::IToF,
        "FToI" => UnOp::FToI,
        _ => return None,
    })
}

fn parse_mem_ref(s: &str) -> Result<(Operand, Operand), String> {
    // "[<op> + <op>]"
    let inner = s
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| format!("expected [base + offset], found `{s}`"))?;
    let (a, b) = inner
        .split_once(" + ")
        .ok_or_else(|| format!("expected `+` in mem ref `{s}`"))?;
    Ok((parse_operand(a.trim())?, parse_operand(b.trim())?))
}

fn parse_call(rest: &str, dst: Option<Reg>) -> Result<Inst, String> {
    // "<callee>(<args>)"
    let open = rest
        .find('(')
        .ok_or_else(|| format!("expected `(` in call `{rest}`"))?;
    let callee_s = rest[..open].trim();
    let args_s = rest[open + 1..]
        .strip_suffix(')')
        .ok_or_else(|| format!("expected `)` in call `{rest}`"))?;
    let callee = if let Some(op) = callee_s.strip_prefix('*') {
        Callee::Indirect(parse_operand(op)?)
    } else if let Some(n) = callee_s.strip_prefix('f') {
        Callee::Func(FuncId(n.parse().map_err(|_| "bad func id".to_string())?))
    } else if let Some(n) = callee_s.strip_prefix('e') {
        Callee::Extern(ExternId(
            n.parse().map_err(|_| "bad extern id".to_string())?,
        ))
    } else {
        return Err(format!("bad callee `{callee_s}`"));
    };
    let mut args = Vec::new();
    if !args_s.trim().is_empty() {
        for a in args_s.split(',') {
            args.push(parse_operand(a.trim())?);
        }
    }
    Ok(Inst::Call { dst, callee, args })
}

/// Parses one instruction in `Display` syntax.
pub fn parse_inst(line: &str) -> Result<Inst, String> {
    let line = line.trim();
    if line == "ret" {
        return Ok(Inst::Ret { value: None });
    }
    if let Some(v) = line.strip_prefix("ret ") {
        return Ok(Inst::Ret {
            value: Some(parse_operand(v.trim())?),
        });
    }
    if let Some(t) = line.strip_prefix("jump ") {
        return Ok(Inst::Jump {
            target: parse_block_id(t.trim())?,
        });
    }
    if let Some(rest) = line.strip_prefix("br ") {
        // "<op> ? b1 : b2"
        let (cond_s, arms) = rest
            .split_once(" ? ")
            .ok_or_else(|| format!("bad br `{line}`"))?;
        let (t, e) = arms
            .split_once(" : ")
            .ok_or_else(|| format!("bad br arms `{line}`"))?;
        return Ok(Inst::Br {
            cond: parse_operand(cond_s.trim())?,
            then_: parse_block_id(t.trim())?,
            else_: parse_block_id(e.trim())?,
        });
    }
    if let Some(rest) = line.strip_prefix("store ") {
        // "[b + o] = v"
        let (mem, v) = rest
            .split_once(" = ")
            .ok_or_else(|| format!("bad store `{line}`"))?;
        let (base, offset) = parse_mem_ref(mem.trim())?;
        return Ok(Inst::Store {
            base,
            offset,
            value: parse_operand(v.trim())?,
        });
    }
    if let Some(rest) = line.strip_prefix("call ") {
        return parse_call(rest.trim(), None);
    }
    // "<reg> = <rhs>"
    let (dst_s, rhs) = line
        .split_once(" = ")
        .ok_or_else(|| format!("unrecognized instruction `{line}`"))?;
    let dst = parse_reg(dst_s.trim())?;
    let rhs = rhs.trim();
    if let Some(v) = rhs.strip_prefix("const ") {
        return Ok(Inst::Const {
            dst,
            value: parse_const(v.trim())?,
        });
    }
    if let Some(m) = rhs.strip_prefix("load ") {
        let (base, offset) = parse_mem_ref(m.trim())?;
        return Ok(Inst::Load { dst, base, offset });
    }
    if let Some(s) = rhs.strip_prefix("frameaddr ") {
        let slot = s
            .trim()
            .strip_prefix('s')
            .and_then(|n| n.parse().ok())
            .map(SlotId)
            .ok_or_else(|| format!("bad slot `{s}`"))?;
        return Ok(Inst::FrameAddr { dst, slot });
    }
    if let Some(n) = rhs.strip_prefix("alloca ") {
        return Ok(Inst::Alloca {
            dst,
            bytes: parse_operand(n.trim())?,
        });
    }
    if let Some(c) = rhs.strip_prefix("call ") {
        return parse_call(c.trim(), Some(dst));
    }
    // Bin/Un: "<Op> a, b" or "<Op> a", else a bare operand (copy).
    let mut words = rhs.splitn(2, ' ');
    let head = words.next().expect("non-empty rhs");
    if let Some(op) = parse_bin_op(head) {
        let rest = words.next().ok_or_else(|| format!("bad bin `{line}`"))?;
        let (a, b) = rest
            .split_once(", ")
            .ok_or_else(|| format!("bad bin operands `{line}`"))?;
        return Ok(Inst::Bin {
            dst,
            op,
            a: parse_operand(a.trim())?,
            b: parse_operand(b.trim())?,
        });
    }
    if let Some(op) = parse_un_op(head) {
        let rest = words.next().ok_or_else(|| format!("bad un `{line}`"))?;
        return Ok(Inst::Un {
            dst,
            op,
            a: parse_operand(rest.trim())?,
        });
    }
    // Copy: "r1 = r0" or "r1 = 5"
    Ok(Inst::Copy {
        dst,
        src: parse_operand(rhs)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify_program, FunctionBuilder, ProgramBuilder};

    fn sample_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let m0 = pb.add_module("a");
        let m1 = pb.add_module("b");
        let ext = pb.declare_extern("print_i64", Some(1), false);
        pb.declare_extern("mystery", None, true);
        let g = pb.add_global("tab", m0, Linkage::Static, 3, vec![7, 8]);

        let mut f = FunctionBuilder::new("kitchen_sink", m0, 2);
        let s = f.new_slot(16);
        let e = f.entry_block();
        let b1 = f.new_block();
        let b2 = f.new_block();
        let c = f.const_(e, ConstVal::float(2.5));
        let x = f.bin(e, BinOp::FMul, c.into(), Operand::Reg(f.param(0)));
        let y = f.un(e, UnOp::FToI, x.into());
        let ga = f.const_(e, ConstVal::GlobalAddr(g));
        let v = f.load(e, ga.into(), Operand::imm(8));
        f.store(e, ga.into(), Operand::imm(0), v.into());
        let fa = f.frame_addr(e, s);
        f.store(e, fa.into(), Operand::imm(0), y.into());
        let al = f.new_reg();
        f.push(
            e,
            Inst::Alloca {
                dst: al,
                bytes: Operand::imm(32),
            },
        );
        f.br(e, y.into(), b1, b2);
        let fp = f.const_(b1, ConstVal::FuncAddr(FuncId(1)));
        let r1 = f.call_indirect(b1, fp.into(), vec![Operand::imm(1), v.into()]);
        f.call_extern(b1, ext, vec![r1.into()], false);
        f.ret(b1, Some(r1.into()));
        let r2 = f.call(b2, FuncId(1), vec![]);
        f.jump(b2, b1);
        let _ = r2;
        let mut f = f.finish(Linkage::Public, Type::I64);
        f.flags.strict_fp = true;
        f.profile = Some(FuncProfile {
            entry: 10.0,
            blocks: vec![10.0, 4.0, 6.0],
        });
        pb.add_function(f);

        let mut h = FunctionBuilder::new("helper", m1, 0);
        let e = h.entry_block();
        h.ret(e, Some(Operand::imm(9)));
        let mut h = h.finish(Linkage::Static, Type::I64);
        h.flags.noinline = true;
        pb.add_function(h);
        pb.finish(Some(FuncId(0)))
    }

    #[test]
    fn full_roundtrip() {
        let p = sample_program();
        let text = program_to_text(&p);
        let q = parse_program_text(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(p, q);
        verify_program(&q).unwrap();
    }

    #[test]
    fn roundtrip_is_fixpoint() {
        let p = sample_program();
        let t1 = program_to_text(&p);
        let t2 = program_to_text(&parse_program_text(&t1).unwrap());
        assert_eq!(t1, t2);
    }

    #[test]
    fn dead_functions_roundtrip() {
        let mut p = sample_program();
        // Mark helper dead the way delete_unreachable does.
        let helper = FuncId(1);
        let m = p.func(helper).module;
        p.modules[m.index()].funcs.retain(|&x| x != helper);
        let text = program_to_text(&p);
        assert!(text.contains(" dead"));
        let q = parse_program_text(&text).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn parse_inst_covers_every_shape() {
        for (line, ok) in [
            ("ret", true),
            ("ret r3", true),
            ("ret -12", true),
            ("jump b4", true),
            ("br r0 ? b1 : b2", true),
            ("store [r1 + 8] = r2", true),
            ("store [&g0 + r2] = -1", true),
            ("call f0(r1, 2)", true),
            ("call e1()", true),
            ("r1 = call *r0(r2)", true),
            ("r1 = const &f2", true),
            ("r1 = const 2.5f", true),
            ("r1 = load [r0 + 0]", true),
            ("r1 = frameaddr s0", true),
            ("r1 = alloca r2", true),
            ("r1 = Add r0, 1", true),
            ("r1 = FToI r0", true),
            ("r1 = r0", true),
            ("r1 = 77", true),
            ("store r1 = r2", false),
            ("br r0 ? b1", false),
            ("r1 = Frobnicate r0, r2", false),
            ("bogus", false),
        ] {
            assert_eq!(parse_inst(line).is_ok(), ok, "{line}");
        }
    }

    #[test]
    fn inst_display_parse_roundtrip() {
        let insts = vec![
            Inst::Const {
                dst: Reg(3),
                value: ConstVal::float(-0.5),
            },
            Inst::Bin {
                dst: Reg(1),
                op: BinOp::Shr,
                a: Operand::Reg(Reg(0)),
                b: Operand::imm(63),
            },
            Inst::Call {
                dst: Some(Reg(9)),
                callee: Callee::Indirect(Operand::Reg(Reg(2))),
                args: vec![Operand::imm(-4), Operand::Reg(Reg(1))],
            },
            Inst::Store {
                base: Operand::Const(ConstVal::GlobalAddr(GlobalId(5))),
                offset: Operand::Reg(Reg(2)),
                value: Operand::imm(0),
            },
        ];
        for i in insts {
            let s = i.to_string();
            let back = parse_inst(&s).unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(i, back, "{s}");
        }
    }

    #[test]
    fn parse_errors_have_positions() {
        let e = parse_program_text("nope").unwrap_err();
        assert_eq!(e.line, 1);
        let e2 = parse_program_text("hlo-ir v1\nblock\n").unwrap_err();
        assert_eq!(e2.line, 2);
    }
}
