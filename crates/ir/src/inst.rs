//! Instructions, operands and operators.

use crate::{BlockId, ConstVal, ExternId, FuncId, Reg, SlotId};

/// An instruction operand: a virtual register or an immediate constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Value of a virtual register.
    Reg(Reg),
    /// Immediate constant.
    Const(ConstVal),
}

impl Operand {
    /// Integer immediate.
    pub fn imm(v: i64) -> Self {
        Operand::Const(ConstVal::I64(v))
    }

    /// Float immediate.
    pub fn fimm(v: f64) -> Self {
        Operand::Const(ConstVal::float(v))
    }

    /// The register read, if any.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Const(_) => None,
        }
    }

    /// The constant, if this operand is an immediate.
    pub fn as_const(self) -> Option<ConstVal> {
        match self {
            Operand::Const(c) => Some(c),
            Operand::Reg(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<ConstVal> for Operand {
    fn from(c: ConstVal) -> Self {
        Operand::Const(c)
    }
}

/// Binary operators. Integer ops interpret operands as `i64`; `F*` ops as
/// `f64`. Comparison results are `0`/`1` integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division; division by zero traps at run time and is never
    /// folded at compile time.
    Div,
    /// Signed remainder; traps on zero divisor.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (count masked to 0..63).
    Shl,
    /// Arithmetic shift right (count masked to 0..63).
    Shr,
    /// Equality (0/1 result).
    Eq,
    /// Inequality (0/1 result).
    Ne,
    /// Signed less-than (0/1 result).
    Lt,
    /// Signed less-or-equal (0/1 result).
    Le,
    /// Signed greater-than (0/1 result).
    Gt,
    /// Signed greater-or-equal (0/1 result).
    Ge,
    /// Float addition.
    FAdd,
    /// Float subtraction.
    FSub,
    /// Float multiplication.
    FMul,
    /// Float division (IEEE, never traps).
    FDiv,
    /// Float less-than (0/1 result).
    FLt,
    /// Float equality (0/1 result).
    FEq,
}

impl BinOp {
    /// True for operators that compute on floats. Functions compiled with
    /// `strict_fp` forbid reassociation of these; the inliner refuses to mix
    /// strict and relaxed bodies (the paper's "technical restriction").
    pub fn is_float(self) -> bool {
        matches!(
            self,
            BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv | BinOp::FLt | BinOp::FEq
        )
    }

    /// True when the operator can trap at run time (so it is not dead-code
    /// removable and not always foldable).
    pub fn can_trap(self) -> bool {
        matches!(self, BinOp::Div | BinOp::Rem)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Integer negation.
    Neg,
    /// Bitwise complement.
    Not,
    /// Float negation.
    FNeg,
    /// Convert integer to float.
    IToF,
    /// Truncate float to integer.
    FToI,
}

impl UnOp {
    /// True for operators that compute on floats.
    pub fn is_float(self) -> bool {
        matches!(self, UnOp::FNeg | UnOp::IToF | UnOp::FToI)
    }
}

/// The target of a call instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Callee {
    /// Direct call to a function in the program.
    Func(FuncId),
    /// Call to an external routine (library code invisible to the
    /// optimizer, executed by VM builtins).
    Extern(ExternId),
    /// Indirect call through a function-pointer value.
    Indirect(Operand),
}

/// A single IR instruction.
///
/// Blocks must end with exactly one terminator ([`Inst::is_terminator`]);
/// [`crate::verify_function`] enforces this.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `dst = constant`.
    Const {
        /// Destination register.
        dst: Reg,
        /// The constant produced.
        value: ConstVal,
    },
    /// `dst = src` (register-to-register or materialized immediate).
    Copy {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = a <op> b`.
    Bin {
        /// Destination register.
        dst: Reg,
        /// Operator.
        op: BinOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = <op> a`.
    Un {
        /// Destination register.
        dst: Reg,
        /// Operator.
        op: UnOp,
        /// Operand.
        a: Operand,
    },
    /// `dst = mem[base + offset]` (byte address, must be 8-aligned).
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address.
        base: Operand,
        /// Byte offset added to the base.
        offset: Operand,
    },
    /// `mem[base + offset] = value`.
    Store {
        /// Base address.
        base: Operand,
        /// Byte offset added to the base.
        offset: Operand,
        /// Value stored.
        value: Operand,
    },
    /// `dst = address of frame slot` (local arrays, address-taken locals).
    FrameAddr {
        /// Destination register.
        dst: Reg,
        /// The frame slot whose address is taken.
        slot: SlotId,
    },
    /// `dst = allocate `bytes` bytes in the current frame` (dynamic; freed
    /// at return). A callee containing this is pragmatically non-inlinable,
    /// mirroring the paper's `alloca` concern.
    Alloca {
        /// Receives the allocation's address.
        dst: Reg,
        /// Bytes to allocate (rounded up to 8).
        bytes: Operand,
    },
    /// Call. `dst = callee(args...)`; calls whose callee returns `Void`
    /// leave `dst` `None`. Arity mismatches with the callee's signature are
    /// tolerated at run time (missing args read as 0) but make the site
    /// illegal for inlining/cloning, exactly as in the paper — and
    /// [`crate::verify_program`] rejects them, since no transform should
    /// ever introduce one.
    Call {
        /// Where the result goes (`None` discards it).
        dst: Option<Reg>,
        /// The call target.
        callee: Callee,
        /// Actual arguments.
        args: Vec<Operand>,
    },
    /// Return from the function.
    Ret {
        /// Returned value (`None` for procedures).
        value: Option<Operand>,
    },
    /// Unconditional jump.
    Jump {
        /// Destination block.
        target: BlockId,
    },
    /// Conditional branch: to `then_` when `cond != 0`, else `else_`.
    Br {
        /// Condition value (taken when non-zero).
        cond: Operand,
        /// Target when the condition is non-zero.
        then_: BlockId,
        /// Target when the condition is zero.
        else_: BlockId,
    },
}

impl Inst {
    /// The register this instruction defines, if any.
    pub fn dst(&self) -> Option<Reg> {
        match *self {
            Inst::Const { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::FrameAddr { dst, .. }
            | Inst::Alloca { dst, .. } => Some(dst),
            Inst::Call { dst, .. } => dst,
            Inst::Store { .. } | Inst::Ret { .. } | Inst::Jump { .. } | Inst::Br { .. } => None,
        }
    }

    /// Mutable access to the defined register, if any.
    pub fn dst_mut(&mut self) -> Option<&mut Reg> {
        match self {
            Inst::Const { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::FrameAddr { dst, .. }
            | Inst::Alloca { dst, .. } => Some(dst),
            Inst::Call { dst, .. } => dst.as_mut(),
            Inst::Store { .. } | Inst::Ret { .. } | Inst::Jump { .. } | Inst::Br { .. } => None,
        }
    }

    /// Invokes `f` on every operand this instruction reads.
    pub fn for_each_use(&self, mut f: impl FnMut(&Operand)) {
        match self {
            Inst::Const { .. } | Inst::FrameAddr { .. } => {}
            Inst::Copy { src, .. } => f(src),
            Inst::Bin { a, b, .. } => {
                f(a);
                f(b);
            }
            Inst::Un { a, .. } => f(a),
            Inst::Load { base, offset, .. } => {
                f(base);
                f(offset);
            }
            Inst::Store {
                base,
                offset,
                value,
            } => {
                f(base);
                f(offset);
                f(value);
            }
            Inst::Alloca { bytes, .. } => f(bytes),
            Inst::Call { callee, args, .. } => {
                if let Callee::Indirect(op) = callee {
                    f(op);
                }
                for a in args {
                    f(a);
                }
            }
            Inst::Ret { value } => {
                if let Some(v) = value {
                    f(v);
                }
            }
            Inst::Jump { .. } => {}
            Inst::Br { cond, .. } => f(cond),
        }
    }

    /// Invokes `f` on mutable references to every operand this instruction
    /// reads (used by register renaming during inline/clone splicing and by
    /// constant/copy propagation).
    pub fn for_each_use_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            Inst::Const { .. } | Inst::FrameAddr { .. } => {}
            Inst::Copy { src, .. } => f(src),
            Inst::Bin { a, b, .. } => {
                f(a);
                f(b);
            }
            Inst::Un { a, .. } => f(a),
            Inst::Load { base, offset, .. } => {
                f(base);
                f(offset);
            }
            Inst::Store {
                base,
                offset,
                value,
            } => {
                f(base);
                f(offset);
                f(value);
            }
            Inst::Alloca { bytes, .. } => f(bytes),
            Inst::Call { callee, args, .. } => {
                if let Callee::Indirect(op) = callee {
                    f(op);
                }
                for a in args {
                    f(a);
                }
            }
            Inst::Ret { value } => {
                if let Some(v) = value {
                    f(v);
                }
            }
            Inst::Jump { .. } => {}
            Inst::Br { cond, .. } => f(cond),
        }
    }

    /// Invokes `f` on a mutable reference to every [`FuncId`] this
    /// instruction mentions: direct call targets (`Callee::Func`, which
    /// [`Inst::for_each_use_mut`] does *not* visit) and `FuncAddr`
    /// constants, both as a `Const` instruction's value and as constant
    /// operands. Used to renumber function references when cached
    /// optimized bodies are spliced into a program whose function table
    /// assigns their clones different ids.
    pub fn for_each_func_ref_mut(&mut self, mut f: impl FnMut(&mut crate::FuncId)) {
        if let Inst::Call {
            callee: Callee::Func(t),
            ..
        } = self
        {
            f(t);
        }
        if let Inst::Const {
            value: crate::ConstVal::FuncAddr(t),
            ..
        } = self
        {
            f(t);
        }
        self.for_each_use_mut(|op| {
            if let Operand::Const(crate::ConstVal::FuncAddr(t)) = op {
                f(t);
            }
        });
    }

    /// True for instructions that must terminate a block.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Inst::Ret { .. } | Inst::Jump { .. } | Inst::Br { .. })
    }

    /// True if removing this instruction (when its result is unused) could
    /// change program behaviour.
    pub fn has_side_effect(&self) -> bool {
        match self {
            Inst::Store { .. }
            | Inst::Call { .. }
            | Inst::Ret { .. }
            | Inst::Jump { .. }
            | Inst::Br { .. }
            | Inst::Alloca { .. } => true,
            Inst::Bin { op, .. } => op.can_trap(),
            Inst::Load { .. } => false, // loads can trap, but our DCE keeps them only if used
            _ => false,
        }
    }

    /// Successor blocks, for terminators (empty otherwise).
    pub fn successors(&self) -> Vec<BlockId> {
        match *self {
            Inst::Jump { target } => vec![target],
            Inst::Br { then_, else_, .. } => {
                if then_ == else_ {
                    vec![then_]
                } else {
                    vec![then_, else_]
                }
            }
            _ => Vec::new(),
        }
    }

    /// Rewrites successor block ids through `map` (used when splicing CFGs).
    pub fn map_successors(&mut self, mut map: impl FnMut(BlockId) -> BlockId) {
        match self {
            Inst::Jump { target } => *target = map(*target),
            Inst::Br { then_, else_, .. } => {
                *then_ = map(*then_);
                *else_ = map(*else_);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_conversions() {
        let r = Reg(4);
        assert_eq!(Operand::from(r).as_reg(), Some(r));
        assert_eq!(Operand::imm(3).as_const(), Some(ConstVal::I64(3)));
        assert_eq!(Operand::imm(3).as_reg(), None);
    }

    #[test]
    fn uses_cover_indirect_callee() {
        let inst = Inst::Call {
            dst: None,
            callee: Callee::Indirect(Operand::Reg(Reg(9))),
            args: vec![Operand::Reg(Reg(1)), Operand::imm(2)],
        };
        let mut regs = Vec::new();
        inst.for_each_use(|op| {
            if let Some(r) = op.as_reg() {
                regs.push(r);
            }
        });
        assert_eq!(regs, vec![Reg(9), Reg(1)]);
    }

    #[test]
    fn branch_successors_dedup() {
        let b = Inst::Br {
            cond: Operand::imm(1),
            then_: BlockId(3),
            else_: BlockId(3),
        };
        assert_eq!(b.successors(), vec![BlockId(3)]);
    }

    #[test]
    fn terminators_and_side_effects() {
        assert!(Inst::Ret { value: None }.is_terminator());
        assert!(!Inst::Const {
            dst: Reg(0),
            value: ConstVal::int(1)
        }
        .is_terminator());
        assert!(Inst::Bin {
            dst: Reg(0),
            op: BinOp::Div,
            a: Operand::imm(1),
            b: Operand::imm(0)
        }
        .has_side_effect());
        assert!(!Inst::Bin {
            dst: Reg(0),
            op: BinOp::Add,
            a: Operand::imm(1),
            b: Operand::imm(0)
        }
        .has_side_effect());
    }

    #[test]
    fn map_successors_rewrites_both_arms() {
        let mut b = Inst::Br {
            cond: Operand::imm(0),
            then_: BlockId(1),
            else_: BlockId(2),
        };
        b.map_successors(|b| BlockId(b.0 + 10));
        assert_eq!(b.successors(), vec![BlockId(11), BlockId(12)]);
    }
}
