//! Whole programs.

use crate::{Extern, ExternId, FuncId, Function, Global, GlobalId, Module, ModuleId};

/// A whole program: the unit HLO optimizes on the link-time ("isom") path.
///
/// All symbol references are resolved: direct calls carry [`FuncId`]s,
/// unresolved names become [`Extern`]s. The *scope* option of the optimizer
/// decides whether transformations may cross module boundaries, which
/// models the paper's per-module vs link-time compilation paths.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Compilation units.
    pub modules: Vec<Module>,
    /// All functions, program-wide.
    pub funcs: Vec<Function>,
    /// All globals.
    pub globals: Vec<Global>,
    /// External routines.
    pub externs: Vec<Extern>,
    /// The program entry point (`main`).
    pub entry: Option<FuncId>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Shared access to a function.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Mutable access to a function.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// Shared access to a module.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn module(&self, id: ModuleId) -> &Module {
        &self.modules[id.index()]
    }

    /// Shared access to a global.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.index()]
    }

    /// Shared access to an external declaration.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn ext(&self, id: ExternId) -> &Extern {
        &self.externs[id.index()]
    }

    /// Iterates `(FuncId, &Function)` pairs.
    pub fn iter_funcs(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Function ids in program order.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> {
        (0..self.funcs.len() as u32).map(FuncId)
    }

    /// Finds a function by `(module name, function name)`.
    pub fn find_func(&self, module: &str, name: &str) -> Option<FuncId> {
        self.iter_funcs()
            .find(|(_, f)| f.name == name && self.module(f.module).name == module)
            .map(|(id, _)| id)
    }

    /// Finds a public function by name anywhere in the program.
    pub fn find_public_func(&self, name: &str) -> Option<FuncId> {
        self.iter_funcs()
            .find(|(_, f)| f.name == name && f.linkage == crate::Linkage::Public)
            .map(|(id, _)| id)
    }

    /// Finds an external by name.
    pub fn find_extern(&self, name: &str) -> Option<ExternId> {
        self.externs
            .iter()
            .position(|e| e.name == name)
            .map(|i| ExternId(i as u32))
    }

    /// Total instruction count across all functions.
    pub fn total_size(&self) -> u64 {
        self.funcs.iter().map(|f| f.size()).sum()
    }

    /// The paper's compile-time cost estimate: `sum over routines of
    /// size(R)^2` (the HP back end contains quadratic algorithms, so this is
    /// the quantity the inlining budget limits).
    pub fn compile_cost(&self) -> u64 {
        self.funcs
            .iter()
            .map(|f| {
                let s = f.size();
                s * s
            })
            .sum()
    }

    /// Appends a function, registering it with its module. Returns its id.
    pub fn push_function(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        let m = f.module;
        self.funcs.push(f);
        self.modules[m.index()].funcs.push(id);
        id
    }

    /// Produces a fresh function name not colliding with any existing
    /// function: `base`, then `base.1`, `base.2`, ...
    pub fn fresh_func_name(&self, base: &str) -> String {
        let taken: std::collections::HashSet<&str> =
            self.funcs.iter().map(|f| f.name.as_str()).collect();
        if !taken.contains(base) {
            return base.to_string();
        }
        for i in 1.. {
            let cand = format!("{base}.{i}");
            if !taken.contains(cand.as_str()) {
                return cand;
            }
        }
        unreachable!()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionBuilder, Linkage, Operand, ProgramBuilder, Type};

    fn two_module_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let m0 = pb.add_module("a");
        let m1 = pb.add_module("b");
        let mut f = FunctionBuilder::new("f", m0, 0);
        let e = f.entry_block();
        f.ret(e, Some(Operand::imm(1)));
        pb.add_function(f.finish(Linkage::Public, Type::I64));
        let mut g = FunctionBuilder::new("g", m1, 0);
        let e = g.entry_block();
        g.ret(e, Some(Operand::imm(2)));
        pb.add_function(g.finish(Linkage::Static, Type::I64));
        pb.finish(None)
    }

    #[test]
    fn find_by_module_and_name() {
        let p = two_module_program();
        assert!(p.find_func("a", "f").is_some());
        assert!(p.find_func("b", "f").is_none());
        assert!(p.find_func("b", "g").is_some());
    }

    #[test]
    fn find_public_skips_statics() {
        let p = two_module_program();
        assert!(p.find_public_func("f").is_some());
        assert!(p.find_public_func("g").is_none());
    }

    #[test]
    fn compile_cost_is_sum_of_squares() {
        let p = two_module_program();
        // each function is a single ret => size 1 => cost 1 each
        assert_eq!(p.compile_cost(), 2);
        assert_eq!(p.total_size(), 2);
    }

    #[test]
    fn fresh_names_avoid_collisions() {
        let p = two_module_program();
        assert_eq!(p.fresh_func_name("h"), "h");
        assert_eq!(p.fresh_func_name("f"), "f.1");
    }
}
