//! Stable, dependency-free content hashing.
//!
//! The optimization service addresses cached results by the *content* of
//! what it optimized, so the hash must be stable across processes, runs
//! and platforms — `std::hash` deliberately guarantees none of that. This
//! is FNV-1a over the canonical text serialization (see [`crate::text`]),
//! the same bytes `program_to_text` would emit, so two programs hash
//! equal exactly when they print equal.

use crate::{text, Function, Program};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher.
///
/// Unlike `std::hash::Hasher` implementations, the result is a stable
/// function of the input bytes — safe to persist and to compare across
/// daemon restarts.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// A hasher in its initial state.
    pub fn new() -> Self {
        Fnv64::default()
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorbs a `u64` (little-endian), e.g. a sub-hash.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a 64 of one byte string.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Content hash of one function: FNV-1a of its canonical text form
/// ([`crate::function_to_text`]). Identical bodies hash identically no
/// matter which program or process they appear in.
pub fn hash_function(f: &Function) -> u64 {
    fnv1a_64(text::function_to_text(f).as_bytes())
}

/// Content hash of a whole program: FNV-1a of [`crate::program_to_text`].
pub fn hash_program(p: &Program) -> u64 {
    fnv1a_64(text::program_to_text(p).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FuncId, FunctionBuilder, Linkage, ProgramBuilder, Type};

    fn one_func(name: &str, k: i64) -> Function {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m");
        let mut fb = FunctionBuilder::new(name, m, 0);
        let e = fb.entry_block();
        let r = fb.const_(e, crate::ConstVal::int(k));
        fb.ret(e, Some(r.into()));
        pb.add_function(fb.finish(Linkage::Public, Type::I64));
        pb.finish(Some(FuncId(0))).funcs.remove(0)
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv64::new();
        h.write(b"foo").write(b"bar");
        assert_eq!(h.finish(), fnv1a_64(b"foobar"));
    }

    #[test]
    fn function_hash_tracks_content_not_identity() {
        assert_eq!(
            hash_function(&one_func("f", 1)),
            hash_function(&one_func("f", 1))
        );
        assert_ne!(
            hash_function(&one_func("f", 1)),
            hash_function(&one_func("f", 2))
        );
        assert_ne!(
            hash_function(&one_func("f", 1)),
            hash_function(&one_func("g", 1))
        );
    }
}
