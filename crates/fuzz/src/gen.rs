//! Seeded generator of well-typed, terminating, multi-module MinC
//! programs.
//!
//! Differential fuzzing only works on programs whose behaviour is defined
//! and finite, so everything here is *correct by construction*:
//!
//! * **termination** — direct calls go strictly from lower to higher
//!   function index (a DAG); recursive functions guard on a depth
//!   parameter that every call site masks to `0..=15` and every self-call
//!   decrements; loops either count a fresh induction variable (which no
//!   generated statement may reassign) toward a fixed bound or count a
//!   dedicated counter down with the decrement as the final body
//!   statement (`continue` is only emitted inside `for` bodies, where the
//!   step always runs);
//! * **no undefined behaviour** — divisions guard the divisor with
//!   `| 1`, array indices are masked with `& (words - 1)` (all array
//!   sizes are powers of two), and local arrays are fully initialized
//!   before first read (stack memory is otherwise frame-layout dependent,
//!   which inlining legitimately changes);
//! * **linkage and scoping soundness** — `static` functions and globals
//!   are only referenced from their own module, calls match the callee's
//!   arity, and the generator mirrors MinC's block scoping so a local is
//!   never read outside the block that declared it;
//! * **stable observables** — function-pointer values never flow into
//!   arithmetic or the output channels (optimization legitimately
//!   renumbers functions); pointers are only taken of public arity-1
//!   leaves and only flow into dedicated dispatcher parameters that call
//!   them.
//!
//! Within those fences the generator aims for breadth: recursion (single
//! and double), `static` linkage, `#[noinline]`/`#[inline]`/`#[strict_fp]`
//! pragmas, function-pointer dispatch, data-dependent trip counts,
//! short-circuit operators, ternaries, global and local arrays, float
//! intrinsic chains, and observable effects (`print_i64`, `sink`,
//! `checksum`) sprinkled through the call graph.

use crate::print::print_sources;
use crate::rng::Rng;
use hlo_frontc::{BinAst, Expr, FnAttrs, FnDef, GlobalDef, Item, LValue, ModuleAst, Stmt, UnAst};

/// Tunable generator shape. The defaults match what the fuzz gate runs.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum number of modules (at least 1).
    pub max_modules: u64,
    /// Minimum number of functions, including `main`.
    pub min_funcs: u64,
    /// Maximum number of functions.
    pub max_funcs: u64,
    /// Maximum statements drawn per block.
    pub max_stmts: u64,
    /// Maximum expression nesting depth.
    pub max_expr_depth: u32,
    /// Whether to emit float intrinsic chains.
    pub float_chains: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_modules: 3,
            min_funcs: 3,
            max_funcs: 7,
            max_stmts: 4,
            max_expr_depth: 3,
            float_chains: true,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FnKind {
    /// No calls at all — safe for any argument, usable as a fptr target.
    Leaf,
    /// Calls strictly-higher-indexed functions.
    Normal,
    /// Param 0 is a depth counter; self-calls decrement it.
    Recursive,
    /// Param 0 is a function pointer that gets called with one argument.
    Dispatcher,
}

struct FnPlan {
    name: String,
    module: usize,
    params: Vec<String>,
    kind: FnKind,
    is_static: bool,
    attrs: FnAttrs,
}

struct GlobalPlan {
    name: String,
    module: usize,
    words: u32,
    is_static: bool,
    init: Vec<i64>,
}

/// Generates a deterministic multi-module program from `seed`.
pub fn generate_modules(seed: u64, cfg: &GenConfig) -> Vec<ModuleAst> {
    let mut rng = Rng::new(seed);
    let n_modules = rng.range(1, cfg.max_modules.max(1)) as usize;
    let n_funcs = rng.range(
        cfg.min_funcs.max(2),
        cfg.max_funcs.max(cfg.min_funcs.max(2)),
    ) as usize;

    let mut plans: Vec<FnPlan> = Vec::with_capacity(n_funcs);
    for i in 0..n_funcs {
        let module = if i == 0 {
            0
        } else {
            rng.below(n_modules as u64) as usize
        };
        let kind = if i == 0 {
            FnKind::Normal
        } else if i == n_funcs - 1 {
            FnKind::Leaf // the function-pointer pool target
        } else {
            match rng.below(100) {
                0..=29 => FnKind::Leaf,
                30..=49 => FnKind::Recursive,
                50..=64 if i + 2 < n_funcs => FnKind::Dispatcher,
                _ => FnKind::Normal,
            }
        };
        let n_params = match kind {
            _ if i == 0 => 1, // main(p0): the oracle passes one argument
            FnKind::Recursive => rng.range(1, 2),
            FnKind::Dispatcher => 2,
            FnKind::Leaf if i == n_funcs - 1 => 1,
            _ => rng.range(0, 3),
        } as usize;
        let params = (0..n_params).map(|k| format!("p{k}")).collect();
        // The pool leaf must stay public so any module may take its address.
        let is_static = i != 0 && i != n_funcs - 1 && rng.chance(25);
        let attrs = FnAttrs {
            noinline: i != 0 && rng.chance(12),
            inline_hint: rng.chance(12),
            strict_fp: rng.chance(8),
        };
        plans.push(FnPlan {
            name: if i == 0 {
                "main".into()
            } else {
                format!("f{i}")
            },
            module,
            params,
            kind,
            is_static,
            attrs,
        });
    }

    let n_globals = rng.range(1, 4) as usize;
    let globals: Vec<GlobalPlan> = (0..n_globals)
        .map(|i| {
            let words = *rng.pick(&[1u32, 1, 8, 16]);
            let init_len = rng.below(words as u64 + 1) as usize;
            GlobalPlan {
                name: format!("g{i}"),
                module: rng.below(n_modules as u64) as usize,
                words,
                is_static: rng.chance(20),
                // Global initializers print as plain literals, and the
                // parser rejects `-9223372036854775808` (the magnitude
                // overflows before negation) — so avoid `i64::MIN` here.
                init: (0..init_len)
                    .map(|_| match rng.interesting_int() {
                        i64::MIN => i64::MAX,
                        v => v,
                    })
                    .collect(),
            }
        })
        .collect();

    let mut modules: Vec<ModuleAst> = (0..n_modules)
        .map(|i| ModuleAst {
            name: format!("m{i}"),
            items: Vec::new(),
        })
        .collect();
    for g in &globals {
        modules[g.module].items.push(Item::Global(GlobalDef {
            name: g.name.clone(),
            is_static: g.is_static,
            words: g.words,
            init: g.init.clone(),
            line: 0,
        }));
    }
    for (i, plan) in plans.iter().enumerate() {
        let body = gen_body(&mut rng, cfg, &plans, &globals, i);
        modules[plan.module].items.push(Item::Fn(FnDef {
            name: plan.name.clone(),
            is_static: plan.is_static,
            attrs: plan.attrs,
            params: plan.params.clone(),
            body,
            line: 0,
        }));
    }
    modules
}

/// Generates a program and prints it — the form the oracle consumes.
pub fn generate_sources(seed: u64, cfg: &GenConfig) -> Vec<(String, String)> {
    print_sources(&generate_modules(seed, cfg))
}

struct BodyCtx<'a> {
    rng: &'a mut Rng,
    cfg: &'a GenConfig,
    plans: &'a [FnPlan],
    globals: &'a [GlobalPlan],
    me: usize,
    /// Readable scalar locals currently in scope (params included).
    readable: Vec<String>,
    /// Locals random assignments may target — excludes induction
    /// variables, countdown counters and function-pointer params, whose
    /// values are structural.
    assignable: Vec<String>,
    /// Initialized local arrays in scope: `(name, words)`.
    arrays: Vec<(String, u32)>,
    next_tmp: u32,
    loop_depth: u32,
    /// True while inside a `for` body (where `continue` is safe).
    in_for: bool,
    /// Remaining non-self call sites this body may still emit.
    calls_left: u32,
}

/// Scope snapshot: MinC locals are block-scoped, so the generator must
/// forget names when the block that declared them closes.
struct Mark(usize, usize, usize);

impl BodyCtx<'_> {
    fn fresh(&mut self, prefix: &str) -> String {
        let n = format!("{prefix}{}", self.next_tmp);
        self.next_tmp += 1;
        n
    }

    fn mark(&self) -> Mark {
        Mark(
            self.readable.len(),
            self.assignable.len(),
            self.arrays.len(),
        )
    }

    fn close_scope(&mut self, m: Mark) {
        self.readable.truncate(m.0);
        self.assignable.truncate(m.1);
        self.arrays.truncate(m.2);
    }

    fn me(&self) -> &FnPlan {
        &self.plans[self.me]
    }

    /// Functions this body may call directly: strictly higher index and
    /// visible from this module.
    fn callees(&self) -> Vec<usize> {
        (self.me + 1..self.plans.len())
            .filter(|&j| {
                let p = &self.plans[j];
                !p.is_static || p.module == self.me().module
            })
            .collect()
    }

    /// Public arity-1 leaves above `above` whose address may be taken here.
    fn fptr_targets(&self, above: usize) -> Vec<usize> {
        (above + 1..self.plans.len())
            .filter(|&j| {
                let p = &self.plans[j];
                p.kind == FnKind::Leaf
                    && p.params.len() == 1
                    && (!p.is_static || p.module == self.me().module)
            })
            .collect()
    }

    fn visible_globals(&self) -> Vec<usize> {
        (0..self.globals.len())
            .filter(|&i| {
                let g = &self.globals[i];
                !g.is_static || g.module == self.me().module
            })
            .collect()
    }
}

fn gen_body(
    rng: &mut Rng,
    cfg: &GenConfig,
    plans: &[FnPlan],
    globals: &[GlobalPlan],
    me: usize,
) -> Vec<Stmt> {
    let params = plans[me].params.clone();
    let kind = plans[me].kind;
    let mut ctx = BodyCtx {
        rng,
        cfg,
        plans,
        globals,
        me,
        // A dispatcher's param 0 is a function pointer. Its numeric value
        // depends on function numbering, which optimization legitimately
        // changes — so it is neither readable nor assignable, only called.
        readable: match kind {
            FnKind::Dispatcher => params[1..].to_vec(),
            _ => params.clone(),
        },
        assignable: match kind {
            // A recursive function's depth param guards termination.
            FnKind::Dispatcher | FnKind::Recursive => params[1..].to_vec(),
            _ => params,
        },
        arrays: Vec::new(),
        next_tmp: 0,
        loop_depth: 0,
        in_for: false,
        calls_left: match kind {
            _ if me == 0 => 4,
            FnKind::Leaf => 0,
            FnKind::Recursive => 1,
            _ => 2,
        },
    };

    let mut body = Vec::new();
    match kind {
        FnKind::Recursive => {
            // Depth guard first: any masked depth bottoms out here.
            let base = gen_expr(&mut ctx, 1, false);
            body.push(Stmt::If {
                cond: bin(BinAst::Le, name(&ctx.plans[me].params[0]), Expr::Int(1)),
                then_: vec![Stmt::Return(Some(base))],
                else_: vec![],
            });
            gen_stmts(&mut ctx, &mut body, 2);
            let tail = gen_recursive_tail(&mut ctx);
            body.push(Stmt::Return(Some(tail)));
        }
        FnKind::Dispatcher => {
            gen_stmts(&mut ctx, &mut body, 2);
            // The whole point of a dispatcher: an indirect call that the
            // cloner can turn direct once the pointer constant propagates.
            let arg = bin(BinAst::And, gen_expr(&mut ctx, 1, false), Expr::Int(7));
            let call = Expr::Call(Box::new(name(&ctx.plans[me].params[0])), vec![arg]);
            let rest = gen_expr(&mut ctx, 1, false);
            body.push(Stmt::Return(Some(bin(
                *ctx.rng.pick(&[BinAst::Add, BinAst::Xor, BinAst::Sub]),
                call,
                rest,
            ))));
        }
        _ => {
            let n =
                ctx.rng.range(1, ctx.cfg.max_stmts.max(1)) as usize + if me == 0 { 2 } else { 0 };
            gen_stmts(&mut ctx, &mut body, n);
            if me == 0 {
                // main always observes something through both channels so
                // every run produces comparable output and checksum.
                let e1 = gen_expr(&mut ctx, 2, true);
                body.push(Stmt::Expr(Expr::Call(
                    Box::new(name("print_i64")),
                    vec![e1],
                )));
                let e2 = gen_expr(&mut ctx, 2, true);
                body.push(Stmt::Expr(Expr::Call(Box::new(name("sink")), vec![e2])));
            }
            let depth = ctx.cfg.max_expr_depth;
            let ret = gen_expr(&mut ctx, depth, true);
            body.push(Stmt::Return(Some(ret)));
        }
    }
    body
}

fn gen_recursive_tail(ctx: &mut BodyCtx) -> Expr {
    let me = ctx.me;
    let depth = name(&ctx.plans[me].params[0]);
    let self_call = |dec: i64, ctx: &mut BodyCtx| {
        let mut args = vec![bin(BinAst::Sub, depth.clone(), Expr::Int(dec))];
        for _ in 1..ctx.plans[me].params.len() {
            args.push(gen_expr(ctx, 1, false));
        }
        Expr::Call(Box::new(name(&ctx.plans[me].name)), args)
    };
    if ctx.rng.chance(25) {
        // Fibonacci-shaped double recursion: ~1000 activations at depth 15.
        let a = self_call(1, ctx);
        let b = self_call(2, ctx);
        bin(BinAst::Add, a, b)
    } else {
        let a = self_call(1, ctx);
        let rest = gen_expr(ctx, 1, false);
        bin(
            *ctx.rng.pick(&[BinAst::Add, BinAst::Xor, BinAst::Mul]),
            a,
            rest,
        )
    }
}

fn gen_stmts(ctx: &mut BodyCtx, out: &mut Vec<Stmt>, n: usize) {
    for _ in 0..n {
        gen_stmt_into(ctx, out);
    }
}

/// Generates one statement block with its own scope: names declared
/// inside are forgotten when it closes.
fn gen_block(ctx: &mut BodyCtx, n: usize) -> Vec<Stmt> {
    let m = ctx.mark();
    let mut v = Vec::new();
    gen_stmts(ctx, &mut v, n);
    ctx.close_scope(m);
    v
}

/// Appends one logical statement (occasionally a declaration pair, e.g. a
/// countdown counter plus its `while`) to `out`.
fn gen_stmt_into(ctx: &mut BodyCtx, out: &mut Vec<Stmt>) {
    let in_loop = ctx.loop_depth > 0;
    loop {
        match ctx.rng.below(100) {
            // New scalar local.
            0..=19 => {
                let init = gen_expr(ctx, ctx.cfg.max_expr_depth, true);
                let v = ctx.fresh("v");
                ctx.readable.push(v.clone());
                ctx.assignable.push(v.clone());
                out.push(Stmt::VarDecl {
                    name: v,
                    init: Some(init),
                });
                return;
            }
            // Assign an existing local.
            20..=31 if !ctx.assignable.is_empty() => {
                let t = ctx.rng.pick(&ctx.assignable).clone();
                out.push(Stmt::Assign {
                    target: LValue::Name(t),
                    value: gen_expr(ctx, ctx.cfg.max_expr_depth, true),
                });
                return;
            }
            // Store to a visible global (scalar or array slot).
            32..=41 => {
                let vis = ctx.visible_globals();
                if vis.is_empty() {
                    continue;
                }
                let gi = *ctx.rng.pick(&vis);
                let (gname, words) = (ctx.globals[gi].name.clone(), ctx.globals[gi].words);
                let value = gen_expr(ctx, 2, true);
                out.push(if words == 1 {
                    Stmt::Assign {
                        target: LValue::Name(gname),
                        value,
                    }
                } else {
                    let idx = masked_index(ctx, words);
                    Stmt::Assign {
                        target: LValue::Index(Box::new(name(&gname)), Box::new(idx)),
                        value,
                    }
                });
                return;
            }
            // If / if-else, occasionally with an early return inside.
            42..=55 => {
                let cond = gen_expr(ctx, 2, true);
                let m = ctx.mark();
                let mut then_ = Vec::new();
                let n_then = ctx.rng.range(1, 2) as usize;
                gen_stmts(ctx, &mut then_, n_then);
                if !in_loop && ctx.rng.chance(25) {
                    let e = gen_expr(ctx, 1, false);
                    then_.push(Stmt::Return(Some(e)));
                }
                ctx.close_scope(m);
                let else_ = if ctx.rng.chance(45) {
                    let n_else = ctx.rng.range(1, 2) as usize;
                    gen_block(ctx, n_else)
                } else {
                    Vec::new()
                };
                out.push(Stmt::If { cond, then_, else_ });
                return;
            }
            // Counted `for` loop over a fresh induction variable.
            56..=67 if ctx.loop_depth < 2 => {
                out.push(gen_for(ctx));
                return;
            }
            // Countdown `while` loop (its counter is declared alongside).
            68..=74 if ctx.loop_depth < 2 => {
                gen_while_into(ctx, out);
                return;
            }
            // Observable effect.
            75..=84 => {
                let f = if ctx.rng.chance(50) {
                    "print_i64"
                } else {
                    "sink"
                };
                let e = gen_expr(ctx, 2, true);
                out.push(Stmt::Expr(Expr::Call(Box::new(name(f)), vec![e])));
                return;
            }
            // Call for effect / into a local.
            85..=90 if ctx.calls_left > 0 => {
                if let Some(call) = gen_call(ctx) {
                    if ctx.rng.chance(60) {
                        let v = ctx.fresh("v");
                        ctx.readable.push(v.clone());
                        ctx.assignable.push(v.clone());
                        out.push(Stmt::VarDecl {
                            name: v,
                            init: Some(call),
                        });
                    } else {
                        out.push(Stmt::Expr(call));
                    }
                    return;
                }
                continue;
            }
            // Local array: declared, then fully initialized (never read
            // uninitialized — stack residue is frame-layout dependent).
            91..=94 if ctx.arrays.len() < 2 && ctx.loop_depth == 0 => {
                gen_local_array_into(ctx, out);
                return;
            }
            // break / continue, guarded so loops still terminate.
            95..=97 if in_loop => {
                out.push(if ctx.in_for && ctx.rng.chance(50) {
                    Stmt::Continue
                } else {
                    Stmt::Break
                });
                return;
            }
            _ => {
                // Fall through to a plain effect statement.
                let e = gen_expr(ctx, 2, true);
                out.push(Stmt::Expr(Expr::Call(Box::new(name("sink")), vec![e])));
                return;
            }
        }
    }
}

fn gen_for(ctx: &mut BodyCtx) -> Stmt {
    let i = ctx.fresh("i");
    // Bound: constant, or data-dependent (masked so it stays small).
    let bound = if !ctx.readable.is_empty() && ctx.rng.chance(50) {
        let v = ctx.rng.pick(&ctx.readable).clone();
        bin(
            BinAst::Add,
            bin(BinAst::And, name(&v), Expr::Int(7)),
            Expr::Int(1),
        )
    } else {
        Expr::Int(ctx.rng.range(2, 8) as i64)
    };
    let init = Stmt::VarDecl {
        name: i.clone(),
        init: Some(Expr::Int(0)),
    };
    let cond = bin(BinAst::Lt, name(&i), bound);
    let step = Stmt::Assign {
        target: LValue::Name(i.clone()),
        value: bin(BinAst::Add, name(&i), Expr::Int(1)),
    };
    // The induction variable is readable in the body but never a random
    // assignment target — that is the termination argument. The for-scope
    // covers init and body, so it is forgotten afterwards.
    let m = ctx.mark();
    ctx.readable.push(i);
    ctx.loop_depth += 1;
    let was_in_for = ctx.in_for;
    ctx.in_for = true;
    let mut body = Vec::new();
    let n_body = ctx.rng.range(1, 3) as usize;
    gen_stmts(ctx, &mut body, n_body);
    ctx.in_for = was_in_for;
    ctx.loop_depth -= 1;
    ctx.close_scope(m);
    Stmt::For {
        init: Some(Box::new(init)),
        cond: Some(cond),
        step: Some(Box::new(step)),
        body,
    }
}

fn gen_while_into(ctx: &mut BodyCtx, out: &mut Vec<Stmt>) {
    // `var w = (e & 7) + 1; while (w > 0) { ...; w = w - 1; }` with the
    // decrement appended last and `continue` banned in `while` bodies.
    let w = ctx.fresh("w");
    let seed = gen_expr(ctx, 1, false);
    out.push(Stmt::VarDecl {
        name: w.clone(),
        init: Some(bin(
            BinAst::Add,
            bin(BinAst::And, seed, Expr::Int(7)),
            Expr::Int(1),
        )),
    });
    // The counter stays readable (it is in the enclosing scope) but is
    // never a random assignment target.
    ctx.readable.push(w.clone());
    ctx.loop_depth += 1;
    let was_in_for = ctx.in_for;
    ctx.in_for = false;
    let n_body = ctx.rng.range(1, 2) as usize;
    let mut body = gen_block(ctx, n_body);
    ctx.in_for = was_in_for;
    ctx.loop_depth -= 1;
    body.push(Stmt::Assign {
        target: LValue::Name(w.clone()),
        value: bin(BinAst::Sub, name(&w), Expr::Int(1)),
    });
    out.push(Stmt::While {
        cond: bin(BinAst::Gt, name(&w), Expr::Int(0)),
        body,
    });
}

fn gen_local_array_into(ctx: &mut BodyCtx, out: &mut Vec<Stmt>) {
    let a = ctx.fresh("t");
    let words: u32 = *ctx.rng.pick(&[8u32, 8, 16]);
    let i = ctx.fresh("i");
    let fill = gen_expr(ctx, 1, false);
    out.push(Stmt::ArrayDecl {
        name: a.clone(),
        words,
    });
    out.push(Stmt::For {
        init: Some(Box::new(Stmt::VarDecl {
            name: i.clone(),
            init: Some(Expr::Int(0)),
        })),
        cond: Some(bin(BinAst::Lt, name(&i), Expr::Int(words as i64))),
        step: Some(Box::new(Stmt::Assign {
            target: LValue::Name(i.clone()),
            value: bin(BinAst::Add, name(&i), Expr::Int(1)),
        })),
        body: vec![Stmt::Assign {
            target: LValue::Index(Box::new(name(&a)), Box::new(name(&i))),
            value: bin(BinAst::Xor, fill, name(&i)),
        }],
    });
    ctx.arrays.push((a, words));
}

fn masked_index(ctx: &mut BodyCtx, words: u32) -> Expr {
    let e = gen_expr(ctx, 1, false);
    bin(BinAst::And, e, Expr::Int(words as i64 - 1))
}

/// Generates a direct call expression to a randomly-chosen visible callee.
/// Returns `None` if nothing is callable from here.
fn gen_call(ctx: &mut BodyCtx) -> Option<Expr> {
    if ctx.calls_left == 0 {
        return None;
    }
    let callees = ctx.callees();
    if callees.is_empty() {
        return None;
    }
    let j = *ctx.rng.pick(&callees);
    let kind = ctx.plans[j].kind;
    if kind == FnKind::Dispatcher && ctx.fptr_targets(j).is_empty() {
        return None;
    }
    ctx.calls_left -= 1;
    let n_params = ctx.plans[j].params.len();
    let mut args = Vec::with_capacity(n_params);
    for k in 0..n_params {
        let a = match (kind, k) {
            // Depth argument: masked so recursion is bounded.
            (FnKind::Recursive, 0) => bin(BinAst::And, gen_expr(ctx, 1, false), Expr::Int(15)),
            // Function-pointer argument: address of a public arity-1 leaf
            // with a strictly higher index (keeps the call DAG acyclic).
            (FnKind::Dispatcher, 0) => {
                let pool = ctx.fptr_targets(j);
                let leaf = *ctx.rng.pick(&pool);
                Expr::AddrOf(ctx.plans[leaf].name.clone())
            }
            _ => gen_expr(ctx, 1, true),
        };
        args.push(a);
    }
    Some(Expr::Call(Box::new(name(&ctx.plans[j].name)), args))
}

fn gen_expr(ctx: &mut BodyCtx, depth: u32, allow_calls: bool) -> Expr {
    if depth == 0 {
        return gen_atom(ctx);
    }
    match ctx.rng.below(100) {
        0..=24 => gen_atom(ctx),
        // Plain binary operator (division handled separately below).
        25..=49 => {
            let op = *ctx.rng.pick(&[
                BinAst::Add,
                BinAst::Add,
                BinAst::Sub,
                BinAst::Mul,
                BinAst::And,
                BinAst::Or,
                BinAst::Xor,
                BinAst::Shl,
                BinAst::Shr,
                BinAst::Lt,
                BinAst::Le,
                BinAst::Gt,
                BinAst::Ge,
                BinAst::Eq,
                BinAst::Ne,
            ]);
            let a = gen_expr(ctx, depth - 1, allow_calls);
            let b = gen_expr(ctx, depth - 1, false);
            bin(op, a, b)
        }
        // Guarded division: `| 1` keeps the divisor non-zero.
        50..=56 => {
            let op = if ctx.rng.chance(50) {
                BinAst::Div
            } else {
                BinAst::Rem
            };
            let a = gen_expr(ctx, depth - 1, allow_calls);
            let d = bin(BinAst::Or, gen_expr(ctx, depth - 1, false), Expr::Int(1));
            bin(op, a, d)
        }
        // Short-circuit operators (these lower to control flow).
        57..=63 => {
            let op = if ctx.rng.chance(50) {
                BinAst::LogAnd
            } else {
                BinAst::LogOr
            };
            let a = gen_expr(ctx, depth - 1, false);
            let b = gen_expr(ctx, depth - 1, allow_calls);
            bin(op, a, b)
        }
        64..=69 => {
            let op = *ctx.rng.pick(&[UnAst::Neg, UnAst::Not, UnAst::LogNot]);
            Expr::Un(op, Box::new(gen_expr(ctx, depth - 1, allow_calls)))
        }
        70..=76 => {
            let c = gen_expr(ctx, depth - 1, false);
            let a = gen_expr(ctx, depth - 1, allow_calls);
            let b = gen_expr(ctx, depth - 1, false);
            Expr::Ternary(Box::new(c), Box::new(a), Box::new(b))
        }
        // Array load with a masked index.
        77..=83 => {
            let arrays: Vec<(String, u32)> = ctx
                .visible_globals()
                .into_iter()
                .filter(|&i| ctx.globals[i].words > 1)
                .map(|i| (ctx.globals[i].name.clone(), ctx.globals[i].words))
                .chain(ctx.arrays.iter().cloned())
                .collect();
            match arrays.is_empty() {
                true => gen_atom(ctx),
                false => {
                    let (a, words) = ctx.rng.pick(&arrays).clone();
                    let idx = masked_index(ctx, words);
                    Expr::Index(Box::new(name(&a)), Box::new(idx))
                }
            }
        }
        // Direct call.
        84..=92 if allow_calls => match gen_call(ctx) {
            Some(c) => c,
            None => gen_atom(ctx),
        },
        // Float intrinsic chain: int -> float -> arithmetic -> int.
        93..=96 if ctx.cfg.float_chains && (ctx.me().attrs.strict_fp || ctx.rng.chance(30)) => {
            let fa = Expr::Intrinsic("__itof".into(), vec![gen_expr(ctx, depth - 1, false)]);
            let fb = Expr::Intrinsic("__itof".into(), vec![gen_expr(ctx, depth - 1, false)]);
            let op = *ctx.rng.pick(&["__fadd", "__fsub", "__fmul"]);
            Expr::Intrinsic(
                "__ftoi".into(),
                vec![Expr::Intrinsic(op.into(), vec![fa, fb])],
            )
        }
        // Read back the running checksum (observable, deterministic).
        97 => Expr::Call(Box::new(name("checksum")), vec![]),
        _ => gen_atom(ctx),
    }
}

fn gen_atom(ctx: &mut BodyCtx) -> Expr {
    match ctx.rng.below(100) {
        0..=39 if !ctx.readable.is_empty() => name(&ctx.rng.pick(&ctx.readable).clone()),
        40..=59 => {
            let scalars: Vec<String> = ctx
                .visible_globals()
                .into_iter()
                .filter(|&i| ctx.globals[i].words == 1)
                .map(|i| ctx.globals[i].name.clone())
                .collect();
            match scalars.is_empty() {
                true => Expr::Int(ctx.rng.range(0, 64) as i64),
                false => name(&ctx.rng.pick(&scalars).clone()),
            }
        }
        60..=69 => {
            let v = *ctx.rng.pick(&[0i64, 1, 2, 3, 5, 7, 8, 15, 63, 64]);
            Expr::Int(v)
        }
        70..=74 => Expr::Un(
            UnAst::Neg,
            Box::new(Expr::Int(ctx.rng.range(1, 100) as i64)),
        ),
        _ => Expr::Int(ctx.rng.range(0, 100) as i64),
    }
}

fn name(n: &str) -> Expr {
    Expr::Name(n.to_string())
}

fn bin(op: BinAst, a: Expr, b: Expr) -> Expr {
    Expr::Bin(op, Box::new(a), Box::new(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_vm::{run_program, ExecOptions};

    #[test]
    fn generated_programs_compile_and_terminate() {
        let cfg = GenConfig::default();
        let opts = ExecOptions {
            fuel: 1 << 22,
            ..Default::default()
        };
        let mut ran = 0;
        for seed in 0..60u64 {
            let sources = generate_sources(seed, &cfg);
            let refs: Vec<(&str, &str)> = sources
                .iter()
                .map(|(n, s)| (n.as_str(), s.as_str()))
                .collect();
            let p = hlo_frontc::compile(&refs)
                .unwrap_or_else(|e| panic!("seed {seed} failed to compile: {e}\n{sources:?}"));
            match run_program(&p, &[5], &opts) {
                Ok(_) => ran += 1,
                Err(t) => panic!("seed {seed} trapped: {t}\n{}", sources[0].1),
            }
        }
        assert_eq!(ran, 60, "every generated program must run clean");
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        for seed in [0u64, 1, 99, 0xDEAD_BEEF] {
            assert_eq!(
                generate_sources(seed, &cfg),
                generate_sources(seed, &cfg),
                "seed {seed} not reproducible"
            );
        }
    }

    #[test]
    fn seeds_produce_distinct_programs() {
        let cfg = GenConfig::default();
        let a = generate_sources(1, &cfg);
        let b = generate_sources(2, &cfg);
        assert_ne!(a, b);
    }
}
