//! MinC pretty-printer: turns `hlo_frontc` ASTs back into source text.
//!
//! The fuzzer generates and shrinks *ASTs*, but every artifact it keeps —
//! reproducer files, corpus entries, the candidate programs the oracle
//! evaluates — is source **text** that goes back through the real lexer
//! and parser. Printing is therefore the canonical serialization: if the
//! printer emitted something the parser rejects (or reads differently),
//! a reproducer would not reproduce. Expressions are printed fully
//! parenthesized so operator precedence can never reintroduce ambiguity.

use hlo_frontc::{BinAst, Expr, FnDef, GlobalDef, Item, LValue, ModuleAst, Stmt, UnAst};
use std::fmt::Write as _;

/// Prints one module as parseable MinC source.
pub fn print_module(m: &ModuleAst) -> String {
    let mut out = String::new();
    for item in &m.items {
        match item {
            Item::Fn(f) => print_fn(&mut out, f),
            Item::Global(g) => print_global(&mut out, g),
            Item::Extern(e) => {
                let _ = writeln!(out, "extern fn {}({});", e.name, e.arity);
            }
        }
    }
    out
}

/// Prints a whole program as `(module name, source)` pairs — the form the
/// front end, the oracle and the daemon all consume.
pub fn print_sources(modules: &[ModuleAst]) -> Vec<(String, String)> {
    modules
        .iter()
        .map(|m| (m.name.clone(), print_module(m)))
        .collect()
}

/// Total line count of a printed program — the size the shrinker minimizes
/// and the measure the fuzz gate's "shrunk to N lines" criterion uses.
pub fn source_lines(sources: &[(String, String)]) -> usize {
    sources.iter().map(|(_, s)| s.lines().count()).sum()
}

fn print_global(out: &mut String, g: &GlobalDef) {
    if g.is_static {
        out.push_str("static ");
    }
    let _ = write!(out, "global {}", g.name);
    if g.words != 1 {
        let _ = write!(out, "[{}]", g.words);
    }
    if !g.init.is_empty() {
        if g.words == 1 {
            let _ = write!(out, " = {}", g.init[0]);
        } else {
            let vals: Vec<String> = g.init.iter().map(|v| v.to_string()).collect();
            let _ = write!(out, " = {{{}}}", vals.join(", "));
        }
    }
    out.push_str(";\n");
}

fn print_fn(out: &mut String, f: &FnDef) {
    if f.attrs.noinline {
        out.push_str("#[noinline] ");
    }
    if f.attrs.inline_hint {
        out.push_str("#[inline] ");
    }
    if f.attrs.strict_fp {
        out.push_str("#[strict_fp] ");
    }
    if f.is_static {
        out.push_str("static ");
    }
    let _ = writeln!(out, "fn {}({}) {{", f.name, f.params.join(", "));
    print_stmts(out, &f.body, 1);
    out.push_str("}\n");
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn print_stmts(out: &mut String, stmts: &[Stmt], depth: usize) {
    for s in stmts {
        print_stmt(out, s, depth);
    }
}

fn print_stmt(out: &mut String, s: &Stmt, depth: usize) {
    indent(out, depth);
    match s {
        Stmt::VarDecl { name, init } => match init {
            Some(e) => {
                let _ = writeln!(out, "var {name} = {};", expr(e));
            }
            None => {
                let _ = writeln!(out, "var {name};");
            }
        },
        Stmt::ArrayDecl { name, words } => {
            let _ = writeln!(out, "var {name}[{words}];");
        }
        Stmt::Assign { target, value } => match target {
            LValue::Name(n) => {
                let _ = writeln!(out, "{n} = {};", expr(value));
            }
            LValue::Index(base, idx) => {
                let _ = writeln!(out, "{}[{}] = {};", expr(base), expr(idx), expr(value));
            }
        },
        Stmt::Expr(e) => {
            let _ = writeln!(out, "{};", expr(e));
        }
        Stmt::If { cond, then_, else_ } => {
            let _ = writeln!(out, "if ({}) {{", expr(cond));
            print_stmts(out, then_, depth + 1);
            if else_.is_empty() {
                indent(out, depth);
                out.push_str("}\n");
            } else {
                indent(out, depth);
                out.push_str("} else {\n");
                print_stmts(out, else_, depth + 1);
                indent(out, depth);
                out.push_str("}\n");
            }
        }
        Stmt::While { cond, body } => {
            let _ = writeln!(out, "while ({}) {{", expr(cond));
            print_stmts(out, body, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            let i = init.as_deref().map(simple_stmt).unwrap_or_default();
            let c = cond.as_ref().map(expr).unwrap_or_default();
            let st = step.as_deref().map(simple_stmt).unwrap_or_default();
            let _ = writeln!(out, "for ({i}; {c}; {st}) {{");
            print_stmts(out, body, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Return(v) => match v {
            Some(e) => {
                let _ = writeln!(out, "return {};", expr(e));
            }
            None => out.push_str("return;\n"),
        },
        Stmt::Break => out.push_str("break;\n"),
        Stmt::Continue => out.push_str("continue;\n"),
    }
}

/// A statement in `for (...)` header position — no trailing `;`.
fn simple_stmt(s: &Stmt) -> String {
    match s {
        Stmt::VarDecl {
            name,
            init: Some(e),
        } => format!("var {name} = {}", expr(e)),
        Stmt::VarDecl { name, init: None } => format!("var {name} = 0"),
        Stmt::Assign {
            target: LValue::Name(n),
            value,
        } => format!("{n} = {}", expr(value)),
        Stmt::Assign {
            target: LValue::Index(b, i),
            value,
        } => format!("{}[{}] = {}", expr(b), expr(i), expr(value)),
        Stmt::Expr(e) => expr(e),
        // The parser only produces the forms above in header position;
        // anything else would be a shrinker bug — print something valid.
        _ => "0".to_string(),
    }
}

fn bin_op(op: BinAst) -> &'static str {
    match op {
        BinAst::Add => "+",
        BinAst::Sub => "-",
        BinAst::Mul => "*",
        BinAst::Div => "/",
        BinAst::Rem => "%",
        BinAst::And => "&",
        BinAst::Or => "|",
        BinAst::Xor => "^",
        BinAst::Shl => "<<",
        BinAst::Shr => ">>",
        BinAst::Lt => "<",
        BinAst::Le => "<=",
        BinAst::Gt => ">",
        BinAst::Ge => ">=",
        BinAst::Eq => "==",
        BinAst::Ne => "!=",
        BinAst::LogAnd => "&&",
        BinAst::LogOr => "||",
    }
}

/// Prints an expression. Composite forms are parenthesized; negative
/// literals are printed as subtractions because the grammar has no
/// negative integer tokens (unary minus parses to `Un(Neg, _)`, a
/// different — but semantically identical — tree).
pub fn expr(e: &Expr) -> String {
    match e {
        Expr::Int(v) if *v >= 0 => v.to_string(),
        Expr::Int(v) if *v == i64::MIN => format!("((0 - {}) - 1)", i64::MAX),
        Expr::Int(v) => format!("(0 - {})", v.unsigned_abs()),
        Expr::Name(n) => n.clone(),
        Expr::AddrOf(n) => format!("(&{n})"),
        Expr::Un(op, a) => {
            let t = match op {
                UnAst::Neg => "-",
                UnAst::Not => "~",
                UnAst::LogNot => "!",
            };
            format!("({t}{})", expr(a))
        }
        Expr::Bin(op, a, b) => format!("({} {} {})", expr(a), bin_op(*op), expr(b)),
        Expr::Ternary(c, a, b) => format!("({} ? {} : {})", expr(c), expr(a), expr(b)),
        Expr::Index(b, i) => format!("({}[{}])", expr(b), expr(i)),
        Expr::Call(callee, args) => {
            let a: Vec<String> = args.iter().map(expr).collect();
            format!("{}({})", expr(callee), a.join(", "))
        }
        Expr::Intrinsic(name, args) => {
            let a: Vec<String> = args.iter().map(expr).collect();
            format!("{name}({})", a.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_frontc::parse_module;

    #[test]
    fn printed_text_reparses_to_the_same_text() {
        let src = r#"
            global errs = 3;
            static global tab[4] = {1, 2, 3, 4};
            #[noinline] static fn f(a, b) {
                var s = 0;
                for (var i = 0; i < (a & 7); i = i + 1) {
                    if (i % 2 == 0) { s = s + tab[i & 3]; } else { continue; }
                }
                while (s > 100) { s = s - 1; break; }
                return s ? a : -b;
            }
            fn main() { var h = &f; return h(2, 3) + f(4, errs); }
        "#;
        let ast1 = parse_module("m", src).unwrap();
        let printed1 = print_module(&ast1);
        let ast2 = parse_module("m", &printed1).unwrap();
        let printed2 = print_module(&ast2);
        assert_eq!(printed1, printed2, "printing must be a fixed point");
    }

    #[test]
    fn negative_and_extreme_literals_survive() {
        for v in [-1i64, -100, i64::MIN, i64::MAX] {
            let src = format!("fn main() {{ return {}; }}", expr(&Expr::Int(v)));
            let p = hlo_frontc::compile(&[("m", src.as_str())]).unwrap();
            let out = hlo_vm::run_program(&p, &[], &hlo_vm::ExecOptions::default()).unwrap();
            assert_eq!(out.ret, v, "literal {v} mangled by printing");
        }
    }

    #[test]
    fn source_lines_counts_all_modules() {
        let sources = vec![
            ("a".to_string(), "fn main() {\nreturn 0;\n}\n".to_string()),
            ("b".to_string(), "global g;\n".to_string()),
        ];
        assert_eq!(source_lines(&sources), 4);
    }
}
