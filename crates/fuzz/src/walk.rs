//! Flat-index traversal over MinC ASTs.
//!
//! The mutator and the shrinker both need to address "the N-th expression"
//! or "the N-th statement" of a whole multi-module program without caring
//! where it nests. These helpers assign every node a stable pre-order
//! index (modules in order, items in order, statements depth-first, then
//! each statement's expressions depth-first) so a single `u64` from the
//! PRNG — or a loop counter in the shrinker — selects a unique edit site.

use hlo_frontc::{Expr, Item, LValue, ModuleAst, Stmt};

/// Applies `f` to every expression in the program, pre-order (parents
/// before children). Only function bodies contain expressions — global
/// initializers are plain `i64` constants.
pub fn for_each_expr_mut(modules: &mut [ModuleAst], f: &mut impl FnMut(&mut Expr)) {
    for m in modules {
        for item in &mut m.items {
            if let Item::Fn(fun) = item {
                for s in &mut fun.body {
                    stmt_exprs_mut(s, f);
                }
            }
        }
    }
}

fn expr_mut(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    f(e);
    match e {
        Expr::Int(_) | Expr::Name(_) | Expr::AddrOf(_) => {}
        Expr::Un(_, a) => expr_mut(a, f),
        Expr::Bin(_, a, b) => {
            expr_mut(a, f);
            expr_mut(b, f);
        }
        Expr::Ternary(c, a, b) => {
            expr_mut(c, f);
            expr_mut(a, f);
            expr_mut(b, f);
        }
        Expr::Index(b, i) => {
            expr_mut(b, f);
            expr_mut(i, f);
        }
        Expr::Call(c, args) => {
            expr_mut(c, f);
            for a in args {
                expr_mut(a, f);
            }
        }
        Expr::Intrinsic(_, args) => {
            for a in args {
                expr_mut(a, f);
            }
        }
    }
}

fn stmt_exprs_mut(s: &mut Stmt, f: &mut impl FnMut(&mut Expr)) {
    match s {
        Stmt::VarDecl { init, .. } => {
            if let Some(e) = init {
                expr_mut(e, f);
            }
        }
        Stmt::ArrayDecl { .. } | Stmt::Break | Stmt::Continue => {}
        Stmt::Assign { target, value } => {
            if let LValue::Index(b, i) = target {
                expr_mut(b, f);
                expr_mut(i, f);
            }
            expr_mut(value, f);
        }
        Stmt::Expr(e) => expr_mut(e, f),
        Stmt::If { cond, then_, else_ } => {
            expr_mut(cond, f);
            for s in then_ {
                stmt_exprs_mut(s, f);
            }
            for s in else_ {
                stmt_exprs_mut(s, f);
            }
        }
        Stmt::While { cond, body } => {
            expr_mut(cond, f);
            for s in body {
                stmt_exprs_mut(s, f);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(s) = init {
                stmt_exprs_mut(s, f);
            }
            if let Some(e) = cond {
                expr_mut(e, f);
            }
            if let Some(s) = step {
                stmt_exprs_mut(s, f);
            }
            for s in body {
                stmt_exprs_mut(s, f);
            }
        }
        Stmt::Return(v) => {
            if let Some(e) = v {
                expr_mut(e, f);
            }
        }
    }
}

/// Number of expression nodes in the program.
pub fn expr_count(modules: &mut [ModuleAst]) -> usize {
    let mut n = 0usize;
    for_each_expr_mut(modules, &mut |_| n += 1);
    n
}

/// Applies `f` to the expression with pre-order index `target`.
/// Returns false when `target` is out of range.
pub fn mutate_expr_at(modules: &mut [ModuleAst], target: usize, f: impl FnOnce(&mut Expr)) -> bool {
    let mut i = 0usize;
    let mut f = Some(f);
    for_each_expr_mut(modules, &mut |e| {
        if i == target {
            if let Some(f) = f.take() {
                f(e);
            }
        }
        i += 1;
    });
    i > target
}

/// What to do with an addressed statement.
enum StmtEdit {
    /// Delete the statement (and everything nested inside it).
    Remove,
    /// Replace a compound statement by its children: `if` becomes
    /// then-branch followed by else-branch; `while`/`for` become their
    /// body. Leaf statements are left alone (the edit reports failure).
    Unnest,
}

/// Number of statement nodes (at any nesting depth) in the program.
pub fn stmt_count(modules: &[ModuleAst]) -> usize {
    let mut n = 0;
    for m in modules {
        for item in &m.items {
            if let Item::Fn(f) = item {
                n += count_in(&f.body);
            }
        }
    }
    n
}

fn count_in(stmts: &[Stmt]) -> usize {
    let mut n = 0;
    for s in stmts {
        n += 1;
        match s {
            Stmt::If { then_, else_, .. } => n += count_in(then_) + count_in(else_),
            Stmt::While { body, .. } => n += count_in(body),
            Stmt::For { body, .. } => n += count_in(body),
            _ => {}
        }
    }
    n
}

/// Removes the statement with depth-first index `target`. Returns false if
/// the index is out of range.
pub fn remove_stmt_at(modules: &mut [ModuleAst], target: usize) -> bool {
    edit_stmt_at(modules, target, StmtEdit::Remove)
}

/// Replaces compound statement `target` with its children (see
/// [`StmtEdit::Unnest`]). Returns false for leaf statements or an
/// out-of-range index.
pub fn unnest_stmt_at(modules: &mut [ModuleAst], target: usize) -> bool {
    edit_stmt_at(modules, target, StmtEdit::Unnest)
}

fn edit_stmt_at(modules: &mut [ModuleAst], target: usize, edit: StmtEdit) -> bool {
    let mut counter = 0usize;
    for m in modules {
        for item in &mut m.items {
            if let Item::Fn(f) = item {
                match edit_in(&mut f.body, target, &mut counter, &edit) {
                    Outcome::Done => return true,
                    Outcome::Failed => return false,
                    Outcome::NotHere => {}
                }
            }
        }
    }
    false
}

enum Outcome {
    Done,
    Failed,
    NotHere,
}

fn edit_in(stmts: &mut Vec<Stmt>, target: usize, counter: &mut usize, edit: &StmtEdit) -> Outcome {
    let mut i = 0usize;
    while i < stmts.len() {
        if *counter == target {
            match edit {
                StmtEdit::Remove => {
                    stmts.remove(i);
                    return Outcome::Done;
                }
                StmtEdit::Unnest => {
                    let children = match &mut stmts[i] {
                        Stmt::If { then_, else_, .. } => {
                            let mut c = std::mem::take(then_);
                            c.append(else_);
                            c
                        }
                        Stmt::While { body, .. } | Stmt::For { body, .. } => std::mem::take(body),
                        _ => return Outcome::Failed,
                    };
                    stmts.splice(i..=i, children);
                    return Outcome::Done;
                }
            }
        }
        *counter += 1;
        let nested = match &mut stmts[i] {
            Stmt::If { then_, else_, .. } => match edit_in(then_, target, counter, edit) {
                Outcome::NotHere => edit_in(else_, target, counter, edit),
                done => done,
            },
            Stmt::While { body, .. } | Stmt::For { body, .. } => {
                edit_in(body, target, counter, edit)
            }
            _ => Outcome::NotHere,
        };
        match nested {
            Outcome::NotHere => {}
            done => return done,
        }
        i += 1;
    }
    Outcome::NotHere
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_frontc::parse_module;

    fn prog() -> Vec<ModuleAst> {
        vec![parse_module(
            "m",
            r#"
            fn main() {
                var s = 1 + 2;
                if (s > 2) { s = s * 3; } else { s = 0; }
                while (s > 0) { s = s - 1; }
                return s;
            }
            "#,
        )
        .unwrap()]
    }

    #[test]
    fn counts_are_stable_and_nested() {
        let mut p = prog();
        // main: var, if, then-assign, else-assign, while, body-assign, return = 7
        assert_eq!(stmt_count(&p), 7);
        assert!(expr_count(&mut p) > 10);
    }

    #[test]
    fn remove_targets_nested_statements() {
        let mut p = prog();
        // Index 2 is the then-branch assignment.
        assert!(remove_stmt_at(&mut p, 2));
        assert_eq!(stmt_count(&p), 6);
        assert!(!remove_stmt_at(&mut p, 99));
    }

    #[test]
    fn unnest_flattens_if_and_loops() {
        let mut p = prog();
        // Index 1 is the `if`: unnesting replaces it by both branch bodies.
        assert!(unnest_stmt_at(&mut p, 1));
        assert_eq!(stmt_count(&p), 6);
        // A leaf cannot be unnested.
        assert!(!unnest_stmt_at(&mut p, 0));
    }

    #[test]
    fn mutate_expr_hits_the_indexed_node() {
        let mut p = prog();
        let n = expr_count(&mut p);
        let mut changed = 0;
        for i in 0..n {
            let mut q = p.clone();
            assert!(mutate_expr_at(&mut q, i, |e| *e = Expr::Int(7)));
            if q != p {
                changed += 1;
            }
        }
        assert_eq!(changed, n, "every index must address a distinct node");
        assert!(!mutate_expr_at(&mut p, n, |e| *e = Expr::Int(7)));
    }
}
