//! Corpus mutator: small random edits to a previously-interesting AST.
//!
//! Mutation deliberately steps *outside* the generator's
//! correct-by-construction fences (an operator swap can unguard a
//! division; a literal tweak can change a loop bound): programs near the
//! edge of validity exercise optimizer paths that clean generated code
//! never reaches. The oracle copes — candidates whose baseline traps are
//! skipped, and candidates that no longer compile are discarded by the
//! campaign before the oracle ever sees them.

use crate::rng::Rng;
use crate::walk::{expr_count, mutate_expr_at, remove_stmt_at, stmt_count};
use hlo_frontc::{BinAst, Expr, Item, ModuleAst};

/// Applies 1–3 random edits to a copy of `modules`. The result may fail
/// to compile; callers filter.
pub fn mutate(modules: &[ModuleAst], rng: &mut Rng) -> Vec<ModuleAst> {
    let mut out = modules.to_vec();
    let edits = rng.range(1, 3);
    for _ in 0..edits {
        apply_one(&mut out, rng);
    }
    out
}

fn apply_one(modules: &mut [ModuleAst], rng: &mut Rng) {
    match rng.below(100) {
        // Perturb an integer literal.
        0..=29 => {
            let n = expr_count(modules);
            if n == 0 {
                return;
            }
            let target = rng.below(n as u64) as usize;
            let delta = rng.interesting_int();
            mutate_expr_at(modules, target, |e| {
                if let Expr::Int(v) = e {
                    *e = Expr::Int(v.wrapping_add(delta));
                }
            });
        }
        // Swap a binary operator for a near neighbour.
        30..=54 => {
            let n = expr_count(modules);
            if n == 0 {
                return;
            }
            let target = rng.below(n as u64) as usize;
            let roll = rng.next_u64();
            mutate_expr_at(modules, target, |e| {
                if let Expr::Bin(op, _, _) = e {
                    *op = swap_op(*op, roll);
                }
            });
        }
        // Wrap an expression in an optimizer-visible identity.
        55..=69 => {
            let n = expr_count(modules);
            if n == 0 {
                return;
            }
            let target = rng.below(n as u64) as usize;
            let which = rng.below(3);
            mutate_expr_at(modules, target, |e| {
                let inner = std::mem::replace(e, Expr::Int(0));
                let (op, k) = match which {
                    0 => (BinAst::Add, 0),
                    1 => (BinAst::Mul, 1),
                    _ => (BinAst::Xor, 0),
                };
                *e = Expr::Bin(op, Box::new(inner), Box::new(Expr::Int(k)));
            });
        }
        // Toggle a function attribute or its linkage.
        70..=84 => {
            let fns: Vec<(usize, usize)> = fn_slots(modules);
            if fns.is_empty() {
                return;
            }
            let (m, i) = *rng.pick(&fns);
            let which = rng.below(4);
            if let Item::Fn(f) = &mut modules[m].items[i] {
                if f.name == "main" {
                    return; // main must stay public and un-pragma'd
                }
                match which {
                    0 => f.attrs.noinline = !f.attrs.noinline,
                    1 => f.attrs.inline_hint = !f.attrs.inline_hint,
                    2 => f.attrs.strict_fp = !f.attrs.strict_fp,
                    _ => f.is_static = !f.is_static,
                }
            }
        }
        // Delete a random statement.
        85..=92 => {
            let n = stmt_count(modules);
            if n == 0 {
                return;
            }
            let target = rng.below(n as u64) as usize;
            remove_stmt_at(modules, target);
        }
        // Duplicate a function as dead code (exercises deletion passes).
        _ => {
            let fns = fn_slots(modules);
            if fns.is_empty() {
                return;
            }
            let (m, i) = *rng.pick(&fns);
            if let Item::Fn(f) = &modules[m].items[i] {
                if f.name == "main" {
                    return;
                }
                let mut copy = f.clone();
                copy.name = format!("{}x", copy.name);
                // Dead (never called) and module-local, so `CrossModule`
                // deletion and `WithinModule` retention differ on it.
                copy.is_static = true;
                modules[m].items.push(Item::Fn(copy));
            }
        }
    }
}

fn fn_slots(modules: &[ModuleAst]) -> Vec<(usize, usize)> {
    let mut v = Vec::new();
    for (m, module) in modules.iter().enumerate() {
        for (i, item) in module.items.iter().enumerate() {
            if matches!(item, Item::Fn(_)) {
                v.push((m, i));
            }
        }
    }
    v
}

fn swap_op(op: BinAst, roll: u64) -> BinAst {
    let alt = |a: BinAst, b: BinAst| if roll.is_multiple_of(2) { a } else { b };
    match op {
        BinAst::Add => alt(BinAst::Sub, BinAst::Xor),
        BinAst::Sub => alt(BinAst::Add, BinAst::Or),
        BinAst::Mul => alt(BinAst::Add, BinAst::And),
        BinAst::Div => BinAst::Mul,
        BinAst::Rem => BinAst::And,
        BinAst::And => alt(BinAst::Or, BinAst::Mul),
        BinAst::Or => alt(BinAst::Xor, BinAst::Add),
        BinAst::Xor => alt(BinAst::And, BinAst::Sub),
        BinAst::Shl => BinAst::Shr,
        BinAst::Shr => BinAst::Shl,
        BinAst::Lt => alt(BinAst::Le, BinAst::Ge),
        BinAst::Le => alt(BinAst::Lt, BinAst::Eq),
        BinAst::Gt => alt(BinAst::Ge, BinAst::Ne),
        BinAst::Ge => alt(BinAst::Gt, BinAst::Lt),
        BinAst::Eq => BinAst::Ne,
        BinAst::Ne => BinAst::Eq,
        BinAst::LogAnd => BinAst::LogOr,
        BinAst::LogOr => BinAst::LogAnd,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_modules, GenConfig};
    use crate::print::print_sources;

    #[test]
    fn mutants_differ_and_are_deterministic() {
        let base = generate_modules(3, &GenConfig::default());
        let mut r1 = Rng::new(77);
        let mut r2 = Rng::new(77);
        let a = mutate(&base, &mut r1);
        let b = mutate(&base, &mut r2);
        assert_eq!(a, b, "same mutation seed must give the same mutant");
        let mut any_change = false;
        let mut r = Rng::new(1);
        for _ in 0..20 {
            if mutate(&base, &mut r) != base {
                any_change = true;
                break;
            }
        }
        assert!(any_change, "20 mutation draws never changed the program");
    }

    #[test]
    fn most_mutants_still_compile() {
        let base = generate_modules(9, &GenConfig::default());
        let mut rng = Rng::new(5);
        let mut ok = 0;
        for _ in 0..30 {
            let m = mutate(&base, &mut rng);
            if crate::oracle::compile_sources(&print_sources(&m)).is_ok() {
                ok += 1;
            }
        }
        // Linkage toggles can break the build; most edits must not.
        assert!(ok >= 15, "only {ok}/30 mutants compiled");
    }
}
