//! Greedy failure shrinker.
//!
//! Given a failing program and a predicate ("does this candidate still
//! fail the same way?"), the shrinker repeatedly tries structural
//! reductions — drop a module, drop an item, delete a statement, flatten
//! a compound statement into its children, replace an expression by a
//! constant or one of its operands, strip attributes — and keeps every
//! candidate the predicate accepts. Each accepted step strictly shrinks
//! the AST, so the process terminates; an evaluation budget bounds it in
//! time as well.
//!
//! The predicate sees *printed source*, exactly what a reproducer file
//! contains — so the shrunk program is guaranteed to reproduce from its
//! on-disk form, not just from the in-memory AST. Candidates that fail to
//! compile, trap at baseline, or fail differently are simply rejected, so
//! every accepted step is a well-formed MinC program exhibiting the
//! original finding.

use crate::print::print_sources;
use crate::walk::{expr_count, mutate_expr_at, remove_stmt_at, stmt_count, unnest_stmt_at};
use hlo_frontc::{Expr, Item, ModuleAst};

/// The shrink predicate: "does this candidate, in printed-source form,
/// still fail the same way?"
pub type StillFails<'a> = dyn FnMut(&[(String, String)]) -> bool + 'a;

/// Shrinker limits.
#[derive(Debug, Clone)]
pub struct ShrinkConfig {
    /// Maximum number of predicate evaluations.
    pub max_evals: u32,
}

impl Default for ShrinkConfig {
    fn default() -> Self {
        ShrinkConfig { max_evals: 400 }
    }
}

/// One accepted reduction, for auditability: the shrinker's soundness
/// test re-verifies that every intermediate program still compiles and
/// still exhibits the finding.
#[derive(Debug, Clone)]
pub struct ShrinkStep {
    /// What the step did (e.g. `"remove stmt"`).
    pub action: &'static str,
    /// The program after the step, in reproducer (printed) form.
    pub sources: Vec<(String, String)>,
}

/// The result of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized program.
    pub modules: Vec<ModuleAst>,
    /// Its printed form.
    pub sources: Vec<(String, String)>,
    /// Every accepted intermediate, in order.
    pub steps: Vec<ShrinkStep>,
    /// Predicate evaluations spent.
    pub evals: u32,
}

/// Greedily minimizes `modules` while `still_fails` holds on the printed
/// sources. The initial program is assumed to fail (the caller observed
/// the finding before calling).
pub fn shrink(
    modules: Vec<ModuleAst>,
    cfg: &ShrinkConfig,
    still_fails: &mut StillFails<'_>,
) -> ShrinkOutcome {
    let mut s = Shrinker {
        cur: modules,
        steps: Vec::new(),
        evals: 0,
        max_evals: cfg.max_evals,
    };
    loop {
        let mut changed = false;
        changed |= s.pass_drop_modules(still_fails);
        changed |= s.pass_drop_items(still_fails);
        changed |= s.pass_stmts(still_fails, false);
        changed |= s.pass_stmts(still_fails, true);
        changed |= s.pass_exprs(still_fails);
        changed |= s.pass_strip_attrs(still_fails);
        if !changed || s.evals >= s.max_evals {
            break;
        }
    }
    let sources = print_sources(&s.cur);
    ShrinkOutcome {
        modules: s.cur,
        sources,
        steps: s.steps,
        evals: s.evals,
    }
}

struct Shrinker {
    cur: Vec<ModuleAst>,
    steps: Vec<ShrinkStep>,
    evals: u32,
    max_evals: u32,
}

impl Shrinker {
    /// Evaluates a candidate; on acceptance it becomes the current
    /// program and the step is recorded.
    fn try_accept(
        &mut self,
        cand: Vec<ModuleAst>,
        action: &'static str,
        still_fails: &mut StillFails<'_>,
    ) -> bool {
        if self.evals >= self.max_evals {
            return false;
        }
        self.evals += 1;
        let sources = print_sources(&cand);
        if still_fails(&sources) {
            self.cur = cand;
            self.steps.push(ShrinkStep { action, sources });
            true
        } else {
            false
        }
    }

    fn pass_drop_modules(&mut self, still_fails: &mut StillFails<'_>) -> bool {
        let mut changed = false;
        let mut i = 0;
        while i < self.cur.len() && self.cur.len() > 1 {
            let mut cand = self.cur.clone();
            cand.remove(i);
            if self.try_accept(cand, "drop module", still_fails) {
                changed = true; // same index now names the next module
            } else {
                i += 1;
            }
        }
        changed
    }

    fn pass_drop_items(&mut self, still_fails: &mut StillFails<'_>) -> bool {
        let mut changed = false;
        let mut m = 0;
        while m < self.cur.len() {
            let mut i = 0;
            while i < self.cur[m].items.len() {
                // Never drop main: the oracle needs an entry point, so the
                // candidate would only waste an evaluation.
                let is_main = matches!(&self.cur[m].items[i], Item::Fn(f) if f.name == "main");
                if is_main {
                    i += 1;
                    continue;
                }
                let mut cand = self.cur.clone();
                cand[m].items.remove(i);
                if self.try_accept(cand, "drop item", still_fails) {
                    changed = true;
                } else {
                    i += 1;
                }
            }
            m += 1;
        }
        changed
    }

    fn pass_stmts(&mut self, still_fails: &mut StillFails<'_>, unnest: bool) -> bool {
        let mut changed = false;
        let mut i = 0;
        while i < stmt_count(&self.cur) {
            let mut cand = self.cur.clone();
            let applied = if unnest {
                unnest_stmt_at(&mut cand, i)
            } else {
                remove_stmt_at(&mut cand, i)
            };
            let action = if unnest { "unnest stmt" } else { "remove stmt" };
            if applied && self.try_accept(cand, action, still_fails) {
                changed = true; // indices shifted; retry the same slot
            } else {
                i += 1;
            }
        }
        changed
    }

    fn pass_exprs(&mut self, still_fails: &mut StillFails<'_>) -> bool {
        let mut changed = false;
        let mut i = 0;
        while i < expr_count(&mut self.cur) {
            for replacement in ["zero", "one", "child"] {
                let mut cand = self.cur.clone();
                let mut did = false;
                mutate_expr_at(&mut cand, i, |e| {
                    let new = match replacement {
                        // Literal-to-literal rewrites are excluded: they
                        // would make a step that shrinks nothing, breaking
                        // the strict-progress argument below.
                        "zero" if !matches!(e, Expr::Int(_)) => Some(Expr::Int(0)),
                        "one" if !matches!(e, Expr::Int(_)) => Some(Expr::Int(1)),
                        "child" => first_child(e),
                        _ => None,
                    };
                    if let Some(n) = new {
                        *e = n;
                        did = true;
                    }
                });
                if did && self.try_accept(cand, "simplify expr", still_fails) {
                    changed = true;
                    break; // node replaced; the fixpoint loop revisits it
                }
            }
            i += 1;
        }
        changed
    }

    fn pass_strip_attrs(&mut self, still_fails: &mut StillFails<'_>) -> bool {
        let mut changed = false;
        let n_modules = self.cur.len();
        for m in 0..n_modules {
            for i in 0..self.cur[m].items.len() {
                let interesting = matches!(
                    &self.cur[m].items[i],
                    Item::Fn(f) if f.attrs != Default::default() || f.is_static
                );
                if !interesting {
                    continue;
                }
                let mut cand = self.cur.clone();
                if let Item::Fn(f) = &mut cand[m].items[i] {
                    f.attrs = Default::default();
                    f.is_static = false;
                }
                if self.try_accept(cand, "strip attrs", still_fails) {
                    changed = true;
                }
            }
        }
        changed
    }
}

/// A structurally smaller equivalent-position subexpression, if one
/// exists. Index bases are excluded: replacing a load by its base would
/// turn an array name into an address value, which for local arrays is
/// frame-layout-dependent — shrinking must never *introduce* layout
/// sensitivity.
fn first_child(e: &Expr) -> Option<Expr> {
    match e {
        Expr::Un(_, a) => Some((**a).clone()),
        Expr::Bin(_, a, _) => Some((**a).clone()),
        Expr::Ternary(_, a, _) => Some((**a).clone()),
        Expr::Call(_, args) | Expr::Intrinsic(_, args) => args.first().cloned(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_modules, GenConfig};
    use crate::oracle::{check_sources, CaseOutcome, OracleConfig};
    use crate::print::source_lines;

    /// Shrinks against a syntactic property: "the program still calls
    /// `sink` somewhere and still compiles". Cheap to evaluate, and
    /// exercises every pass.
    #[test]
    fn shrinks_toward_a_minimal_sink_call() {
        let modules = generate_modules(11, &GenConfig::default());
        let before = source_lines(&print_sources(&modules));
        let mut pred = |sources: &[(String, String)]| {
            crate::oracle::compile_sources(sources).is_ok()
                && sources.iter().any(|(_, s)| s.contains("sink("))
        };
        let out = shrink(modules, &ShrinkConfig::default(), &mut pred);
        let after = source_lines(&out.sources);
        assert!(after < before, "no reduction: {before} -> {after}");
        assert!(out.sources.iter().any(|(_, s)| s.contains("sink(")));
        // Every accepted step satisfied the predicate (recorded form).
        for step in &out.steps {
            assert!(
                crate::oracle::compile_sources(&step.sources).is_ok(),
                "accepted step does not compile"
            );
        }
    }

    /// End-to-end: a planted optimizer fault is found by the oracle and
    /// shrunk to a tiny reproducer that still diverges.
    #[test]
    fn planted_fault_shrinks_small_and_stays_failing() {
        let _guard = hlo::fault::FaultGuard::arm();
        let oc = OracleConfig::quick();
        // Find a seed whose generated program trips the planted fault.
        let (modules, want) = (0..200u64)
            .find_map(|seed| {
                let m = generate_modules(seed, &GenConfig::default());
                match check_sources(&print_sources(&m), &oc) {
                    CaseOutcome::Fail(f) => Some((m, f.kind)),
                    _ => None,
                }
            })
            .expect("some seed must trip the planted inliner fault");
        let mut pred = |sources: &[(String, String)]| {
            matches!(check_sources(sources, &oc),
                     CaseOutcome::Fail(f) if f.kind == want)
        };
        let out = shrink(modules, &ShrinkConfig::default(), &mut pred);
        assert!(pred(&out.sources), "shrunk program must still fail");
        assert!(
            source_lines(&out.sources) <= 15,
            "expected a tiny reproducer, got {} lines:\n{}",
            source_lines(&out.sources),
            out.sources
                .iter()
                .map(|(_, s)| s.as_str())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
