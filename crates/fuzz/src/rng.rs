//! A tiny deterministic PRNG (SplitMix64).
//!
//! The whole fuzzer is a pure function of its seed: the generator, the
//! mutator, the oracle's config walk and the shrinker all draw from this
//! stream and nothing else (no time, no addresses, no thread ids). That is
//! what makes `hloc fuzz --seed S` reproducible and lets a reproducer file
//! name the exact seed that found it.

/// SplitMix64: tiny state, full 64-bit period, excellent avalanche — and,
/// unlike rand-crate generators, dependency-free (the container builds
/// offline).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Distinct seeds give unrelated
    /// streams.
    pub fn new(seed: u64) -> Self {
        Rng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Derives an independent stream for sub-task `index` — used to give
    /// every fuzz iteration its own generator so cases are insensitive to
    /// how many random draws earlier cases made.
    pub fn derive(&self, index: u64) -> Rng {
        Rng::new(
            self.state
                .wrapping_add(index.wrapping_mul(0xA24B_AED4_963E_E407)),
        )
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n = 0` yields 0).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Multiply-shift: unbiased enough for fuzzing, branch-free.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform value in `lo..=hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `percent / 100`.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// A small "interesting" integer: boundary values and small magnitudes
    /// show up far more often than uniform noise would give them.
    pub fn interesting_int(&mut self) -> i64 {
        match self.below(10) {
            0 => 0,
            1 => 1,
            2 => -1,
            3 => 2,
            4 => i64::MAX,
            5 => i64::MIN,
            6 => 63,
            7 => 64,
            _ => self.range(0, 200) as i64 - 100,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
            let v = r.range(5, 9);
            assert!((5..=9).contains(&v));
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn derive_gives_distinct_streams() {
        let base = Rng::new(1);
        let mut a = base.derive(0);
        let mut b = base.derive(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
