//! Differential fuzzing for the `hlo` optimizer.
//!
//! `hlo-fuzz` closes the loop the rest of the workspace leaves open: the
//! optimizer is tested against hand-written programs and unit fixtures,
//! but nothing exercises it on *adversarial* input. This crate generates
//! random well-typed MinC programs (and raw IR programs), runs each one
//! on the VM before and after optimization under a whole matrix of
//! configurations, and treats any observable difference — output, return
//! value, extern-call trace, a panic, a verifier rejection, nondeterminism
//! across `--jobs` — as a bug. Failures are shrunk to small reproducers
//! and written to a corpus for permanent regression testing.
//!
//! The pieces:
//!
//! * [`gen`] — seeded generator of terminating, UB-free MinC programs;
//! * [`irgen`] — direct IR-level generator (shapes the front end never
//!   emits: unreachable blocks, cross-block register mutation, constant
//!   function pointers);
//! * [`mutate`] — small random edits to previously interesting programs;
//! * [`oracle`] — the translation-validation oracle and its config matrix;
//! * [`shrink`] — greedy structural minimizer for failing cases;
//! * [`corpus`] — self-contained reproducer files;
//! * [`campaign`] — the driver tying it all together, including a live
//!   `hlo-serve` daemon cross-check;
//! * [`rng`] — the SplitMix64 PRNG all of the above share.
//!
//! Entry points: `hloc fuzz` for interactive use and the `fuzzgate`
//! binary (`cargo fuzzgate`) for CI.

#![warn(missing_docs)]

pub mod campaign;
pub mod corpus;
pub mod gen;
pub mod irgen;
pub mod mutate;
pub mod oracle;
pub mod print;
pub mod rng;
pub mod shrink;
pub mod walk;

pub use campaign::{
    run_campaign, run_campaign_with, CampaignConfig, CampaignReport, ShrunkFinding,
};
pub use corpus::{load_reproducer, write_reproducer, ReproBody, Reproducer};
pub use gen::{generate_modules, generate_sources, GenConfig};
pub use irgen::{generate_program, IrGenConfig};
pub use mutate::mutate;
pub use oracle::{
    check_program, check_program_with, check_sources, check_sources_with, observe, observe_both,
    CaseOutcome, Finding, FindingKind, OracleConfig, ORACLE_FUEL,
};
pub use rng::Rng;
pub use shrink::{shrink, ShrinkConfig, ShrinkOutcome, ShrinkStep};
