//! Self-contained reproducer files.
//!
//! A finding is only useful if it survives the fuzzing process, so every
//! shrunk failure is written to the corpus directory as a single file
//! carrying everything needed to replay it: the program text (MinC
//! sources or IR), the originating seed and iteration, the finding kind,
//! and the options fingerprint of the configuration that exposed it.
//! Checked-in reproducers become permanent regression tests
//! (`crates/fuzz/tests/regressions.rs`).

use std::path::{Path, PathBuf};

use hlo_ir::Program;

/// Marker on the first line of every reproducer file.
const MAGIC: &str = "// hlo-fuzz reproducer";
/// Separator introducing each MinC module section.
const MODULE_SEP: &str = "//--- module ";

/// The program payload of a reproducer.
#[derive(Debug, Clone, PartialEq)]
pub enum ReproBody {
    /// MinC `(module name, source)` pairs, replayed through the front end.
    Minc(Vec<(String, String)>),
    /// IR program text, replayed through [`hlo_ir::parse_program_text`].
    Ir(String),
}

/// A replayable finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Reproducer {
    /// Finding kind in kebab-case (e.g. `behavior-divergence`).
    pub kind: String,
    /// Label of the oracle matrix entry that exposed the finding.
    pub config: String,
    /// Campaign seed the case derives from.
    pub seed: u64,
    /// Iteration index within the campaign.
    pub iter: u64,
    /// `HloOptions::fingerprint()` of the failing configuration.
    pub fingerprint: u64,
    /// The program itself.
    pub body: ReproBody,
}

impl Reproducer {
    /// Canonical file name: `<kind>-<seed as 16 hex digits>.<mc|hlo>`.
    pub fn file_name(&self) -> String {
        let ext = match self.body {
            ReproBody::Minc(_) => "mc",
            ReproBody::Ir(_) => "hlo",
        };
        format!("{}-{:016x}.{ext}", self.kind, self.seed)
    }

    /// Serializes to the on-disk format.
    pub fn format(&self) -> String {
        let lang = match self.body {
            ReproBody::Minc(_) => "minc",
            ReproBody::Ir(_) => "ir",
        };
        let mut out = String::new();
        out.push_str(&format!("{MAGIC} ({lang})\n"));
        out.push_str(&format!("// seed {:#018x} iter {}\n", self.seed, self.iter));
        out.push_str(&format!(
            "// finding {} config {}\n",
            self.kind, self.config
        ));
        out.push_str(&format!(
            "// options-fingerprint {:#018x}\n",
            self.fingerprint
        ));
        match &self.body {
            ReproBody::Minc(sources) => {
                for (name, src) in sources {
                    out.push_str(&format!("{MODULE_SEP}{name}\n"));
                    out.push_str(src);
                    if !src.ends_with('\n') {
                        out.push('\n');
                    }
                }
            }
            ReproBody::Ir(text) => {
                out.push_str(text);
                if !text.ends_with('\n') {
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Parses the on-disk format back.
    ///
    /// # Errors
    /// Returns a description of the first malformed header line.
    pub fn parse(text: &str) -> Result<Reproducer, String> {
        let mut lines = text.lines();
        let first = lines.next().ok_or("empty reproducer")?;
        let lang = first
            .strip_prefix(MAGIC)
            .ok_or_else(|| format!("missing magic line, got {first:?}"))?
            .trim()
            .trim_matches(['(', ')']);
        let seed_line = lines.next().unwrap_or_default();
        let (seed, iter) = parse_seed_line(seed_line)?;
        let finding_line = lines.next().unwrap_or_default();
        let (kind, config) = parse_finding_line(finding_line)?;
        let fp_line = lines.next().unwrap_or_default();
        let fingerprint = parse_hex_field(fp_line, "// options-fingerprint ")?;

        let rest: Vec<&str> = lines.collect();
        let body = match lang {
            "minc" => ReproBody::Minc(split_modules(&rest)?),
            "ir" => ReproBody::Ir(format!("{}\n", rest.join("\n"))),
            other => return Err(format!("unknown reproducer language {other:?}")),
        };
        Ok(Reproducer {
            kind,
            config,
            seed,
            iter,
            fingerprint,
            body,
        })
    }

    /// Compiles the payload back to a [`Program`].
    ///
    /// # Errors
    /// Returns the front-end or IR-parser error message.
    pub fn compile(&self) -> Result<Program, String> {
        match &self.body {
            ReproBody::Minc(sources) => crate::oracle::compile_sources(sources),
            ReproBody::Ir(text) => hlo_ir::parse_program_text(text).map_err(|e| format!("{e:?}")),
        }
    }
}

/// Writes `r` into `dir` (created if absent) under its canonical name.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_reproducer(dir: &Path, r: &Reproducer) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(r.file_name());
    std::fs::write(&path, r.format())?;
    Ok(path)
}

/// Reads and parses a reproducer file.
///
/// # Errors
/// Returns filesystem or format errors as a message.
pub fn load_reproducer(path: &Path) -> Result<Reproducer, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Reproducer::parse(&text)
}

fn parse_seed_line(line: &str) -> Result<(u64, u64), String> {
    let rest = line
        .strip_prefix("// seed ")
        .ok_or_else(|| format!("bad seed line {line:?}"))?;
    let (seed_s, iter_s) = rest
        .split_once(" iter ")
        .ok_or_else(|| format!("bad seed line {line:?}"))?;
    let seed = parse_hex(seed_s)?;
    let iter = iter_s
        .trim()
        .parse::<u64>()
        .map_err(|e| format!("bad iter in {line:?}: {e}"))?;
    Ok((seed, iter))
}

fn parse_finding_line(line: &str) -> Result<(String, String), String> {
    let rest = line
        .strip_prefix("// finding ")
        .ok_or_else(|| format!("bad finding line {line:?}"))?;
    let (kind, config) = rest
        .split_once(" config ")
        .ok_or_else(|| format!("bad finding line {line:?}"))?;
    Ok((kind.trim().to_string(), config.trim().to_string()))
}

fn parse_hex_field(line: &str, prefix: &str) -> Result<u64, String> {
    parse_hex(
        line.strip_prefix(prefix)
            .ok_or_else(|| format!("bad header line {line:?}"))?,
    )
}

fn parse_hex(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let digits = s.strip_prefix("0x").unwrap_or(s);
    u64::from_str_radix(digits, 16).map_err(|e| format!("bad hex {s:?}: {e}"))
}

fn split_modules(lines: &[&str]) -> Result<Vec<(String, String)>, String> {
    let mut sources: Vec<(String, String)> = Vec::new();
    for line in lines {
        if let Some(name) = line.strip_prefix(MODULE_SEP) {
            sources.push((name.trim().to_string(), String::new()));
        } else if let Some((_, src)) = sources.last_mut() {
            src.push_str(line);
            src.push('\n');
        } else if !line.trim().is_empty() {
            return Err(format!("source text before any module marker: {line:?}"));
        }
    }
    if sources.is_empty() {
        return Err("reproducer contains no modules".into());
    }
    Ok(sources)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_sources, GenConfig};
    use crate::irgen::{generate_program, IrGenConfig};

    fn sample() -> Reproducer {
        Reproducer {
            kind: "behavior-divergence".into(),
            config: "b100-program".into(),
            seed: 0xdead_beef,
            iter: 42,
            fingerprint: 0x1234_5678_9abc_def0,
            body: ReproBody::Minc(generate_sources(3, &GenConfig::default())),
        }
    }

    #[test]
    fn minc_reproducer_round_trips_and_compiles() {
        let r = sample();
        let parsed = Reproducer::parse(&r.format()).unwrap();
        assert_eq!(parsed, r);
        parsed.compile().unwrap();
        assert_eq!(r.file_name(), "behavior-divergence-00000000deadbeef.mc");
    }

    #[test]
    fn ir_reproducer_round_trips_and_compiles() {
        let p = generate_program(7, &IrGenConfig::default());
        let r = Reproducer {
            kind: "optimizer-panic".into(),
            config: "b400-program".into(),
            seed: 7,
            iter: 0,
            fingerprint: 1,
            body: ReproBody::Ir(hlo_ir::program_to_text(&p)),
        };
        let parsed = Reproducer::parse(&r.format()).unwrap();
        assert_eq!(parsed, r);
        let back = parsed.compile().unwrap();
        assert_eq!(hlo_ir::program_to_text(&back), hlo_ir::program_to_text(&p));
    }

    #[test]
    fn write_and_load_via_disk() {
        let dir = std::env::temp_dir().join(format!("hlo-fuzz-corpus-{}", std::process::id()));
        let r = sample();
        let path = write_reproducer(&dir, &r).unwrap();
        let loaded = load_reproducer(&path).unwrap();
        assert_eq!(loaded, r);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_headers_are_rejected() {
        assert!(Reproducer::parse("").is_err());
        assert!(Reproducer::parse("// wrong magic\n").is_err());
        let r = sample().format().replace("// seed", "// sead");
        assert!(Reproducer::parse(&r).is_err());
    }
}
