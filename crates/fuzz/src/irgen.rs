//! Direct IR-level program generator.
//!
//! The MinC generator ([`crate::gen`]) only produces shapes the front end
//! can emit. Building [`Program`]s straight through the IR builders
//! reaches the rest of the space: unreachable blocks, registers mutated
//! across blocks in patterns the lowering never creates, indirect calls
//! through constant function addresses, and frame-slot traffic with no
//! array syntax behind it. Every generated program passes
//! `verify_program` and terminates by construction: direct and indirect
//! calls go strictly "upward" (function `i` calls only `j > i`, so the
//! call graph is a DAG) and every loop counts a fresh register down from
//! a small constant.

use crate::rng::Rng;
use hlo_ir::{
    verify_program, BinOp, BlockId, ConstVal, FuncId, FunctionBuilder, GlobalId, Linkage, Operand,
    Program, ProgramBuilder, Reg, Type, UnOp,
};

/// Shape limits for the IR generator.
#[derive(Debug, Clone)]
pub struct IrGenConfig {
    /// Number of modules (at least 1).
    pub modules: usize,
    /// Inclusive upper bound on the function count (at least 2).
    pub max_funcs: usize,
    /// Inclusive upper bound on the global count.
    pub max_globals: usize,
}

impl Default for IrGenConfig {
    fn default() -> Self {
        IrGenConfig {
            modules: 2,
            max_funcs: 6,
            max_globals: 3,
        }
    }
}

struct FnPlan {
    params: u32,
    module: usize,
    linkage: Linkage,
    noinline: bool,
    inline_hint: bool,
}

/// Generates a deterministic, verifier-clean, terminating [`Program`].
/// Function 0 is the public entry (`main`, one parameter).
pub fn generate_program(seed: u64, cfg: &IrGenConfig) -> Program {
    let mut rng = Rng::new(seed ^ 0x1297_c0de);
    let mut pb = ProgramBuilder::new();
    let modules: Vec<_> = (0..cfg.modules.max(1))
        .map(|i| pb.add_module(format!("ir{i}")))
        .collect();

    let print = pb.declare_extern("print_i64", Some(1), false);
    let sink = pb.declare_extern("sink", Some(1), false);
    let checksum = pb.declare_extern("checksum", Some(0), true);

    let n_globals = 1 + rng.below(cfg.max_globals.max(1) as u64) as usize;
    let globals: Vec<(GlobalId, u32)> = (0..n_globals)
        .map(|i| {
            let words: u32 = *rng.pick(&[1, 1, 8]);
            let init = (0..words as i64).map(|w| w * 3 + i as i64).collect();
            let linkage = if rng.chance(25) {
                Linkage::Static
            } else {
                Linkage::Public
            };
            let m = modules[rng.below(modules.len() as u64) as usize];
            (
                pb.add_global(format!("ig{i}"), m, linkage, words, init),
                words,
            )
        })
        .collect();

    let n_funcs = 2 + rng.below((cfg.max_funcs.max(2) - 1) as u64) as usize;
    let plans: Vec<FnPlan> = (0..n_funcs)
        .map(|i| {
            let is_main = i == 0;
            FnPlan {
                params: if is_main { 1 } else { 1 + rng.below(2) as u32 },
                module: rng.below(modules.len() as u64) as usize,
                linkage: if !is_main && rng.chance(25) {
                    Linkage::Static
                } else {
                    Linkage::Public
                },
                noinline: !is_main && rng.chance(15),
                inline_hint: !is_main && rng.chance(20),
            }
        })
        .collect();

    let mut entry = None;
    for (i, plan) in plans.iter().enumerate() {
        let name = if i == 0 {
            "main".to_string()
        } else {
            format!("irf{i}")
        };
        let mut fb = FunctionBuilder::new(name, modules[plan.module], plan.params);
        fb.flags_mut().noinline = plan.noinline;
        fb.flags_mut().inline_hint = plan.inline_hint;

        let mut g = BodyGen {
            fb: &mut fb,
            rng: &mut rng,
            plans: &plans,
            me: i,
            globals: &globals,
            print,
            sink,
            checksum,
        };
        g.emit_body();

        let id = pb.add_function(fb.finish(plan.linkage, Type::I64));
        if i == 0 {
            entry = Some(id);
        }
    }

    let p = pb.finish(entry);
    debug_assert!(verify_program(&p).is_ok());
    p
}

struct BodyGen<'a> {
    fb: &'a mut FunctionBuilder,
    rng: &'a mut Rng,
    plans: &'a [FnPlan],
    me: usize,
    globals: &'a [(GlobalId, u32)],
    print: hlo_ir::ExternId,
    sink: hlo_ir::ExternId,
    checksum: hlo_ir::ExternId,
}

impl BodyGen<'_> {
    fn emit_body(&mut self) {
        let b0 = self.fb.entry_block();
        let p0 = self.fb.param(0);
        let acc = self.fb.new_reg();
        self.fb.copy_to(b0, acc, p0.into());

        self.emit_arith(b0, acc);
        if self.rng.chance(60) && !self.globals.is_empty() {
            self.emit_global_traffic(b0, acc);
        }
        if self.rng.chance(40) {
            self.emit_slot_traffic(b0, acc);
        }
        let call_in_loop = self.me + 1 < self.plans.len() && self.rng.chance(50);
        if !call_in_loop && self.me + 1 < self.plans.len() && self.rng.chance(70) {
            self.emit_call(b0, acc);
        }

        // A counted-down loop; the trip count stays tiny when a call sits
        // inside the body so DAG-chained loops cannot exhaust oracle fuel.
        let trip = if call_in_loop {
            2 + self.rng.below(2) as i64
        } else {
            2 + self.rng.below(7) as i64
        };
        let counter = self.fb.new_reg();
        self.fb.copy_to(b0, counter, Operand::imm(trip));
        let header = self.fb.new_block();
        let body = self.fb.new_block();
        let exit = self.fb.new_block();
        self.fb.jump(b0, header);

        let cond = self
            .fb
            .bin(header, BinOp::Gt, counter.into(), Operand::imm(0));
        self.fb.br(header, cond.into(), body, exit);

        self.emit_arith(body, acc);
        if call_in_loop {
            self.emit_call(body, acc);
        }
        if self.rng.chance(35) {
            let arg: Operand = acc.into();
            self.fb.call_extern(body, self.sink, vec![arg], false);
        }
        let dec = self
            .fb
            .bin(body, BinOp::Sub, counter.into(), Operand::imm(1));
        self.fb.copy_to(body, counter, dec.into());
        self.fb.jump(body, header);

        // Exit: optional diamond, observable prints, return.
        let ret_block = if self.rng.chance(60) {
            let t = self.fb.new_block();
            let f = self.fb.new_block();
            let join = self.fb.new_block();
            let c = self.fb.bin(exit, BinOp::Lt, acc.into(), p0.into());
            self.fb.br(exit, c.into(), t, f);
            let tv = self.fb.bin(t, BinOp::Add, acc.into(), Operand::imm(7));
            self.fb.copy_to(t, acc, tv.into());
            self.fb.jump(t, join);
            let fv = self.fb.un(f, UnOp::Not, acc.into());
            self.fb.copy_to(f, acc, fv.into());
            self.fb.jump(f, join);
            join
        } else {
            exit
        };
        if self.me == 0 {
            self.fb
                .call_extern(ret_block, self.print, vec![acc.into()], false);
            let ck = self
                .fb
                .call_extern(ret_block, self.checksum, vec![], true)
                .expect("checksum returns a value");
            let mixed = self.fb.bin(ret_block, BinOp::Xor, acc.into(), ck.into());
            self.fb.copy_to(ret_block, acc, mixed.into());
        } else if self.rng.chance(30) {
            self.fb
                .call_extern(ret_block, self.print, vec![acc.into()], false);
        }
        self.fb.ret(ret_block, Some(acc.into()));

        // An unreachable but well-formed block: nothing jumps here, so
        // cleanup passes must delete it without disturbing behaviour.
        if self.rng.chance(50) {
            let dead = self.fb.new_block();
            let v = self.fb.bin(dead, BinOp::Mul, acc.into(), Operand::imm(3));
            self.fb.ret(dead, Some(v.into()));
        }
    }

    /// A short run of integer arithmetic folded into `acc`, including a
    /// division whose divisor is forced into `1..=7` (never zero, never
    /// negative, so it cannot trap or overflow).
    fn emit_arith(&mut self, b: BlockId, acc: Reg) {
        let steps = 1 + self.rng.below(3);
        for _ in 0..steps {
            let params = self.plans[self.me].params;
            let rhs: Operand = if self.rng.chance(50) {
                Operand::imm(self.rng.interesting_int())
            } else {
                self.fb.param(self.rng.below(params as u64) as u32).into()
            };
            let op = *self.rng.pick(&[
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::Xor,
                BinOp::And,
                BinOp::Or,
                BinOp::Shr,
            ]);
            let v = self.fb.bin(b, op, acc.into(), rhs);
            self.fb.copy_to(b, acc, v.into());
        }
        if self.rng.chance(30) {
            let masked = self.fb.bin(b, BinOp::And, acc.into(), Operand::imm(7));
            let div = self.fb.bin(b, BinOp::Or, masked.into(), Operand::imm(1));
            let q = self.fb.bin(
                b,
                *self.rng.pick(&[BinOp::Div, BinOp::Rem]),
                acc.into(),
                div.into(),
            );
            self.fb.copy_to(b, acc, q.into());
        }
    }

    /// Load-modify-store on a random global, index masked into range.
    fn emit_global_traffic(&mut self, b: BlockId, acc: Reg) {
        let (gid, words) = self.globals[self.rng.below(self.globals.len() as u64) as usize];
        let base = self.fb.const_(b, ConstVal::GlobalAddr(gid));
        let idx = self
            .fb
            .bin(b, BinOp::And, acc.into(), Operand::imm(words as i64 - 1));
        let off = self.fb.bin(b, BinOp::Shl, idx.into(), Operand::imm(3));
        let v = self.fb.load(b, base.into(), off.into());
        let sum = self.fb.bin(b, BinOp::Add, v.into(), acc.into());
        self.fb.store(b, base.into(), off.into(), sum.into());
        self.fb.copy_to(b, acc, sum.into());
    }

    /// Store-then-load through a frame slot (always initialized first).
    fn emit_slot_traffic(&mut self, b: BlockId, acc: Reg) {
        let slot = self.fb.new_slot(8);
        let addr = self.fb.frame_addr(b, slot);
        self.fb.store(b, addr.into(), Operand::imm(0), acc.into());
        let v = self.fb.load(b, addr.into(), Operand::imm(0));
        let mixed = self.fb.bin(b, BinOp::Add, v.into(), Operand::imm(1));
        self.fb.copy_to(b, acc, mixed.into());
    }

    /// A direct or indirect call to a strictly-higher-index function
    /// (keeps the call graph a DAG, so termination is structural).
    fn emit_call(&mut self, b: BlockId, acc: Reg) {
        let lo = self.me + 1;
        let j = lo + self.rng.below((self.plans.len() - lo) as u64) as usize;
        let callee = FuncId(j as u32);
        let args: Vec<Operand> = (0..self.plans[j].params)
            .map(|k| {
                if k == 0 {
                    acc.into()
                } else {
                    Operand::imm(self.rng.below(16) as i64)
                }
            })
            .collect();
        let r = if self.rng.chance(25) {
            // Indirect through a constant function address; the optimizer
            // must keep the target alive and renumber the constant.
            let fptr = self.fb.const_(b, ConstVal::FuncAddr(callee));
            self.fb.call_indirect(b, fptr.into(), args)
        } else {
            self.fb.call(b, callee, args)
        };
        let folded = self.fb.bin(b, BinOp::Add, acc.into(), r.into());
        self.fb.copy_to(b, acc, folded.into());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{check_program, CaseOutcome, OracleConfig, ORACLE_FUEL};

    #[test]
    fn ir_programs_verify_and_terminate() {
        for seed in 0..40u64 {
            let p = generate_program(seed, &IrGenConfig::default());
            verify_program(&p).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            crate::oracle::observe(&p, &[5], ORACLE_FUEL)
                .unwrap_or_else(|t| panic!("seed {seed} trapped: {t:?}"));
        }
    }

    #[test]
    fn ir_generation_is_deterministic() {
        let a = generate_program(9, &IrGenConfig::default());
        let b = generate_program(9, &IrGenConfig::default());
        assert_eq!(hlo_ir::program_to_text(&a), hlo_ir::program_to_text(&b));
    }

    #[test]
    fn ir_programs_pass_the_oracle() {
        let oc = OracleConfig::quick();
        for seed in [1u64, 2, 3, 5, 8] {
            let p = generate_program(seed, &IrGenConfig::default());
            if let CaseOutcome::Fail(f) = check_program(&p, &oc) {
                panic!("seed {seed}: {f:?}");
            }
        }
    }
}
