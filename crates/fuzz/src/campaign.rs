//! The fuzzing campaign driver.
//!
//! A campaign derives one independent PRNG stream per iteration from a
//! single master seed (`Rng::new(seed).derive(i)`), so any iteration can
//! be replayed in isolation and the whole run is reproducible regardless
//! of how it is scheduled. Each iteration draws a candidate from one of
//! three sources — the MinC generator (~70%), the mutator applied to a
//! recently passing program (~15%), or the direct IR generator (~15%) —
//! and feeds it to the differential oracle. Failures are shrunk (MinC
//! cases) and written to the corpus directory as self-contained
//! reproducers.
//!
//! Optionally, every N-th passing MinC case is also round-tripped through
//! a live `hlo-serve` daemon: the daemon's cold response must equal an
//! in-process optimize byte-for-byte, and its warm (cached) response must
//! equal the cold one. A mismatch is a [`FindingKind::DaemonMismatch`].

use std::path::PathBuf;
use std::time::{Duration, Instant};

use hlo::{MetricsRegistry, LATENCY_BUCKETS_US};
use hlo_frontc::ModuleAst;

use crate::corpus::{write_reproducer, ReproBody, Reproducer};
use crate::gen::{generate_modules, GenConfig};
use crate::irgen::{generate_program, IrGenConfig};
use crate::mutate::mutate;
use crate::oracle::{
    check_program_with, check_sources, check_sources_with, CaseOutcome, Finding, FindingKind,
    OracleConfig,
};
use crate::print::{print_sources, source_lines};
use crate::rng::Rng;
use crate::shrink::{shrink, ShrinkConfig};

/// Everything a campaign needs.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; every iteration derives its own stream from it.
    pub seed: u64,
    /// Iteration count.
    pub iters: u64,
    /// Optional wall-clock budget; the campaign stops early when spent.
    pub budget: Option<Duration>,
    /// Where to write reproducers (`None` keeps findings in memory only).
    pub corpus_dir: Option<PathBuf>,
    /// Stop after this many findings (0 = never stop early).
    pub stop_after: usize,
    /// Round-trip every N-th passing MinC case through a live daemon
    /// (0 disables the check).
    pub daemon_every: u64,
    /// Every N-th passing MinC case, push the compiled program and a
    /// one-constant edit of it through a live daemon and require the
    /// incremental (partition-splicing) rebuild of the edit to be
    /// byte-identical to a from-scratch optimize (0 disables the check).
    /// Kept separate from `daemon_every` so the planted serve fault
    /// (`hlo_serve::fault`) can be exercised without the PGO legs of the
    /// plain daemon check firing first.
    pub incremental_every: u64,
    /// Shrinker limits.
    pub shrink: ShrinkConfig,
    /// MinC generator shape.
    pub gen: GenConfig,
    /// IR generator shape.
    pub irgen: IrGenConfig,
    /// Oracle matrix.
    pub oracle: OracleConfig,
    /// Suppress progress output on stderr.
    pub quiet: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0x5eed,
            iters: 200,
            budget: None,
            corpus_dir: None,
            stop_after: 0,
            daemon_every: 0,
            incremental_every: 0,
            shrink: ShrinkConfig::default(),
            gen: GenConfig::default(),
            irgen: IrGenConfig::default(),
            oracle: OracleConfig::default(),
            quiet: true,
        }
    }
}

/// A finding after shrinking, with its reproducer.
#[derive(Debug, Clone)]
pub struct ShrunkFinding {
    /// Iteration that produced the failing case.
    pub iter: u64,
    /// The original oracle finding.
    pub finding: Finding,
    /// The (shrunk, for MinC) reproducer.
    pub repro: Reproducer,
    /// Source lines of the reproducer payload.
    pub lines: usize,
    /// Where the reproducer was written, when a corpus dir is set.
    pub path: Option<PathBuf>,
}

/// Aggregate campaign result.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Cases that reached the oracle.
    pub executed: u64,
    /// Cases where every matrix entry reproduced the baseline.
    pub passed: u64,
    /// Cases skipped (trapping baseline).
    pub skipped: u64,
    /// Mutants discarded because they no longer compiled.
    pub mutants_discarded: u64,
    /// Daemon round-trips performed.
    pub daemon_checks: u64,
    /// Incremental edit-oracle checks performed.
    pub incremental_checks: u64,
    /// All findings, shrunk where possible.
    pub findings: Vec<ShrunkFinding>,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

enum Case {
    Minc(u64, Vec<ModuleAst>),
    Ir(u64, hlo_ir::Program),
}

/// Runs a campaign to completion (iterations, budget, or `stop_after`,
/// whichever comes first).
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    run_campaign_with(cfg, &MetricsRegistry::new())
}

/// [`run_campaign`] with an externally owned metrics registry. Per
/// iteration the generate/oracle/shrink/daemon phases land in
/// `fuzz_<phase>_us` histograms, and cases are counted by source and
/// outcome (`fuzz_cases_total{source=…}`, `fuzz_outcome_total{…}`,
/// findings by oracle config in `fuzz_findings_total{config=…}`). The
/// counters are deterministic for a fixed config; only the timings vary.
pub fn run_campaign_with(cfg: &CampaignConfig, metrics: &MetricsRegistry) -> CampaignReport {
    let start = Instant::now();
    let mut report = CampaignReport::default();
    // Recently passing programs, the mutator's seed pool.
    let mut pool: Vec<Vec<ModuleAst>> = Vec::new();
    let mut daemon = DaemonCheck::new();

    for i in 0..cfg.iters {
        if let Some(b) = cfg.budget {
            if start.elapsed() >= b {
                if !cfg.quiet {
                    eprintln!("hlo-fuzz: time budget spent after {i} iterations");
                }
                break;
            }
        }
        let mut rng = Rng::new(cfg.seed).derive(i);
        let roll = rng.below(100);
        let gen_t = Instant::now();
        let (case, source) = if roll < 15 && !pool.is_empty() {
            let base = rng.pick(&pool).clone();
            let mutant = mutate(&base, &mut rng);
            if crate::oracle::compile_sources(&print_sources(&mutant)).is_err() {
                report.mutants_discarded += 1;
                metrics.inc("fuzz_mutants_discarded_total");
                continue;
            }
            (Case::Minc(cfg.seed ^ i, mutant), "mutate")
        } else if roll < 30 {
            let s = rng.next_u64();
            (Case::Ir(s, generate_program(s, &cfg.irgen)), "irgen")
        } else {
            let s = rng.next_u64();
            (Case::Minc(s, generate_modules(s, &cfg.gen)), "gen")
        };
        metrics.observe(
            "fuzz_generate_us",
            LATENCY_BUCKETS_US,
            gen_t.elapsed().as_micros() as u64,
        );
        metrics.inc(&format!("fuzz_cases_total{{source=\"{source}\"}}"));

        report.executed += 1;
        let oracle_t = Instant::now();
        let outcome = match &case {
            Case::Minc(_, modules) => {
                check_sources_with(&print_sources(modules), &cfg.oracle, Some(metrics))
            }
            Case::Ir(_, p) => check_program_with(p, &cfg.oracle, Some(metrics)),
        };
        metrics.observe(
            "fuzz_oracle_us",
            LATENCY_BUCKETS_US,
            oracle_t.elapsed().as_micros() as u64,
        );
        let label = match &outcome {
            CaseOutcome::Pass => "pass",
            CaseOutcome::Skip(_) => "skip",
            CaseOutcome::Fail(_) => "fail",
        };
        metrics.inc(&format!("fuzz_outcome_total{{outcome=\"{label}\"}}"));
        match outcome {
            CaseOutcome::Pass => {
                report.passed += 1;
                if let Case::Minc(_, modules) = &case {
                    pool.push(modules.clone());
                    if pool.len() > 16 {
                        pool.remove(0);
                    }
                    if cfg.daemon_every > 0 && report.passed % cfg.daemon_every == 0 {
                        report.daemon_checks += 1;
                        let daemon_t = Instant::now();
                        let checked = daemon.check(&print_sources(modules));
                        metrics.observe(
                            "fuzz_daemon_us",
                            LATENCY_BUCKETS_US,
                            daemon_t.elapsed().as_micros() as u64,
                        );
                        if let Err(detail) = checked {
                            let finding = Finding {
                                kind: FindingKind::DaemonMismatch,
                                config: "daemon-default".to_string(),
                                options_fingerprint: hlo::HloOptions::default().fingerprint(),
                                detail,
                            };
                            record(
                                cfg,
                                metrics,
                                &mut report,
                                i,
                                case_seed(&case),
                                finding,
                                &case,
                            );
                        }
                    }
                    if cfg.incremental_every > 0 && report.passed % cfg.incremental_every == 0 {
                        report.incremental_checks += 1;
                        let daemon_t = Instant::now();
                        let checked = daemon.check_incremental(&print_sources(modules));
                        metrics.observe(
                            "fuzz_daemon_us",
                            LATENCY_BUCKETS_US,
                            daemon_t.elapsed().as_micros() as u64,
                        );
                        if let Err(detail) = checked {
                            let finding = Finding {
                                kind: FindingKind::IncrementalDivergence,
                                config: "daemon-incremental".to_string(),
                                options_fingerprint: hlo::HloOptions::default().fingerprint(),
                                detail,
                            };
                            record(
                                cfg,
                                metrics,
                                &mut report,
                                i,
                                case_seed(&case),
                                finding,
                                &case,
                            );
                        }
                    }
                }
            }
            CaseOutcome::Skip(_) => report.skipped += 1,
            CaseOutcome::Fail(finding) => {
                record(
                    cfg,
                    metrics,
                    &mut report,
                    i,
                    case_seed(&case),
                    finding,
                    &case,
                );
            }
        }
        if !cfg.quiet && (i + 1) % 50 == 0 {
            eprintln!(
                "hlo-fuzz: {} iters, {} passed, {} skipped, {} findings",
                i + 1,
                report.passed,
                report.skipped,
                report.findings.len()
            );
        }
        if cfg.stop_after > 0 && report.findings.len() >= cfg.stop_after {
            if !cfg.quiet {
                eprintln!(
                    "hlo-fuzz: stopping after {} findings",
                    report.findings.len()
                );
            }
            break;
        }
    }
    report.elapsed = start.elapsed();
    report
}

fn case_seed(case: &Case) -> u64 {
    match case {
        Case::Minc(s, _) | Case::Ir(s, _) => *s,
    }
}

/// Shrinks (MinC only), builds the reproducer, writes it, records it.
fn record(
    cfg: &CampaignConfig,
    metrics: &MetricsRegistry,
    report: &mut CampaignReport,
    iter: u64,
    seed: u64,
    finding: Finding,
    case: &Case,
) {
    metrics.inc(&format!(
        "fuzz_findings_total{{config=\"{}\"}}",
        finding.config
    ));
    let shrink_t = Instant::now();
    let body = match case {
        Case::Minc(_, modules) => {
            let want = finding.kind;
            let oracle = cfg.oracle.clone();
            let mut pred = |sources: &[(String, String)]| {
                matches!(check_sources(sources, &oracle),
                         CaseOutcome::Fail(f) if f.kind == want)
            };
            // Daemon mismatches are not reproduced by `check_sources`, so
            // they are recorded unshrunk. Incremental divergences are
            // shrunk against an in-process replica of the daemon's
            // partition-splicing path instead.
            if want == FindingKind::DaemonMismatch {
                ReproBody::Minc(print_sources(modules))
            } else if want == FindingKind::IncrementalDivergence {
                let mut pred = incremental_divergence_reproduces;
                let out = shrink(modules.clone(), &cfg.shrink, &mut pred);
                ReproBody::Minc(out.sources)
            } else {
                let out = shrink(modules.clone(), &cfg.shrink, &mut pred);
                ReproBody::Minc(out.sources)
            }
        }
        Case::Ir(_, p) => ReproBody::Ir(hlo_ir::program_to_text(p)),
    };
    metrics.observe(
        "fuzz_shrink_us",
        LATENCY_BUCKETS_US,
        shrink_t.elapsed().as_micros() as u64,
    );
    let lines = match &body {
        ReproBody::Minc(s) => source_lines(s),
        ReproBody::Ir(t) => t.lines().count(),
    };
    let repro = Reproducer {
        kind: finding.kind.to_string(),
        config: finding.config.clone(),
        seed,
        iter,
        fingerprint: finding.options_fingerprint,
        body,
    };
    let path = cfg
        .corpus_dir
        .as_ref()
        .and_then(|dir| write_reproducer(dir, &repro).ok());
    if !cfg.quiet {
        eprintln!(
            "hlo-fuzz: FINDING {} ({}) at iter {iter}, shrunk to {lines} lines{}",
            finding.kind,
            finding.config,
            path.as_deref()
                .map(|p| format!(", wrote {}", p.display()))
                .unwrap_or_default()
        );
    }
    report.findings.push(ShrunkFinding {
        iter,
        finding,
        repro,
        lines,
        path,
    });
}

/// Lazily-spawned daemon used for serve-cache cross-checks.
struct DaemonCheck {
    server: Option<hlo_serve::Server>,
    /// Checks run so far; every [`TRACE_EVERY`]th check propagates a
    /// request trace id and cross-checks the daemon's stored trace.
    checks: u64,
}

/// Every Nth daemon check runs with distributed tracing on.
const TRACE_EVERY: u64 = 2;

impl DaemonCheck {
    fn new() -> Self {
        DaemonCheck {
            server: None,
            checks: 0,
        }
    }

    /// Cold + warm round-trip of `sources`, then a continuous-PGO sweep
    /// (cold / drifted / stable server-mode requests); every daemon answer
    /// must match an in-process optimize byte-for-byte.
    fn check(&mut self, sources: &[(String, String)]) -> Result<(), String> {
        if self.server.is_none() {
            self.server = Some(
                hlo_serve::Server::spawn("127.0.0.1:0", hlo_serve::ServeConfig::default())
                    .map_err(|e| format!("daemon spawn failed: {e}"))?,
            );
        }
        let server = self.server.as_ref().expect("just spawned");

        let pristine = crate::oracle::compile_sources(sources)?;
        let pkey = hlo_pgo::program_key(&pristine);
        let opts = hlo::HloOptions::default();
        let mut program = pristine.clone();
        hlo::optimize(&mut program, None, &opts);
        let expect = hlo_ir::program_to_text(&program);

        let mut client = hlo_serve::Client::connect(server.local_addr())
            .map_err(|e| format!("daemon connect failed: {e}"))?;
        self.checks += 1;
        let traced = self.checks.is_multiple_of(TRACE_EVERY);
        let mut req = hlo_serve::OptimizeRequest::from_minc(sources.to_vec());
        if traced {
            // Deterministic per-check id: the campaign stays replayable.
            req.trace_id = Some(format!("{:016x}", self.checks));
        }
        let cold = client
            .optimize(&req)
            .map_err(|e| format!("daemon request failed: {e}"))?;
        if cold.ir_text != expect {
            return Err("cold daemon response differs from in-process optimize".to_string());
        }
        if traced {
            self.check_trace(&mut client, &req, &cold)?;
        }
        // The warm leg must not collide with the traced cold leg's id.
        req.trace_id = None;
        let warm = client
            .optimize(&req)
            .map_err(|e| format!("warm daemon request failed: {e}"))?;
        if !warm.outcome.hit {
            return Err("repeat request did not hit the daemon cache".to_string());
        }
        if warm.ir_text != cold.ir_text {
            return Err("warm daemon response is not byte-identical to cold".to_string());
        }

        // Continuous-PGO sweep. Cold: with nothing pushed, a server-mode
        // build must equal the profile-free one exactly.
        let mut sreq = req.clone();
        sreq.profile = hlo_serve::ProfileSpec::Server;
        let cold_s = client
            .optimize(&sreq)
            .map_err(|e| format!("server-mode request failed: {e}"))?;
        if cold_s.ir_text != expect {
            return Err(
                "server-mode build with an empty aggregate differs from a profile-free one"
                    .to_string(),
            );
        }

        // Drifted: push a trace-synthesized profile (empty -> populated is
        // total drift) — the rebuild must match in-process PGO with the
        // same aggregate. Mutants that trap instantly can yield an empty
        // profile; the push would be invisible, so skip the drift legs.
        let exec = hlo_vm::ExecOptions {
            fuel: crate::oracle::ORACLE_FUEL,
            ..Default::default()
        };
        let delta = hlo_profile::ProfileDb::from_vm_trace(&pristine, &[5], &exec);
        if delta.is_empty() {
            return Ok(());
        }
        client
            .profile_push(&hlo_serve::ProfilePushRequest {
                program: pkey,
                delta: delta.to_text(),
                advance: 0,
            })
            .map_err(|e| format!("profile push refused: {e}"))?;
        let mut with_profile = pristine.clone();
        hlo::optimize(&mut with_profile, Some(&delta), &opts);
        let expect_pgo = hlo_ir::program_to_text(&with_profile);
        let drifted = client
            .optimize(&sreq)
            .map_err(|e| format!("drifted server-mode request failed: {e}"))?;
        if !drifted.outcome.stale {
            return Err("push past threshold did not flip the cached entry stale".to_string());
        }
        if drifted.ir_text != expect_pgo {
            return Err("drift-triggered rebuild differs from in-process PGO optimize".to_string());
        }

        // Stable: a same-shape push scales every counter uniformly, which
        // the drift metric must not see — the entry is served as a hit.
        client
            .profile_push(&hlo_serve::ProfilePushRequest {
                program: hlo_pgo::program_key(&pristine),
                delta: delta.to_text(),
                advance: 0,
            })
            .map_err(|e| format!("second profile push refused: {e}"))?;
        let stable = client
            .optimize(&sreq)
            .map_err(|e| format!("stable server-mode request failed: {e}"))?;
        if !stable.outcome.hit || stable.outcome.stale {
            return Err("stable aggregate was not served as a cache hit".to_string());
        }
        if stable.ir_text != drifted.ir_text {
            return Err("stable server-mode response is not byte-identical".to_string());
        }
        Ok(())
    }

    /// Cross-checks the daemon's stored trace for a traced request: the
    /// daemon must echo the id, the fetched span tree must parse (name
    /// the request and every phase, phases summing to the reported wall
    /// time), and the trace's recorded cache outcome must be the same
    /// text the optimize reply carried.
    fn check_trace(
        &self,
        client: &mut hlo_serve::Client,
        req: &hlo_serve::OptimizeRequest,
        resp: &hlo_serve::OptimizeResponse,
    ) -> Result<(), String> {
        let id = req.trace_id.as_deref().expect("caller set a trace id");
        if resp.trace_id.as_deref() != Some(id) {
            return Err(format!(
                "daemon echoed trace id {:?}, request carried {id:?}",
                resp.trace_id
            ));
        }
        let trace = client
            .trace_fetch(id)
            .map_err(|e| format!("trace fetch for {id} failed: {e}"))?;
        if !trace.spans.contains(&format!("request:{id}")) {
            return Err(format!("span tree does not name request:{id}"));
        }
        let sum: u64 = trace.phases.iter().map(|(_, us)| us).sum();
        if sum != trace.wall_us {
            return Err(format!(
                "trace phases sum to {sum} us but wall is {} us",
                trace.wall_us
            ));
        }
        if trace.cache != resp.outcome.to_text() {
            return Err(format!(
                "trace names cache outcome {:?}, reply says {:?}",
                trace.cache,
                resp.outcome.to_text()
            ));
        }
        Ok(())
    }

    /// The incremental edit oracle: optimize the compiled program through
    /// the daemon (seeding its partition store), bump one integer
    /// constant, optimize the edit — the daemon's partition-splicing
    /// rebuild must be byte-identical to a from-scratch in-process
    /// optimize of the edited program. Programs with no integer constant
    /// to bump are vacuously fine.
    fn check_incremental(&mut self, sources: &[(String, String)]) -> Result<(), String> {
        if self.server.is_none() {
            self.server = Some(
                hlo_serve::Server::spawn("127.0.0.1:0", hlo_serve::ServeConfig::default())
                    .map_err(|e| format!("daemon spawn failed: {e}"))?,
            );
        }
        let server = self.server.as_ref().expect("just spawned");

        let pristine = crate::oracle::compile_sources(sources)?;
        let Some(edited) = bump_first_const(&pristine) else {
            return Ok(());
        };
        let opts = hlo::HloOptions::default();
        let request = |p: &hlo_ir::Program| hlo_serve::OptimizeRequest {
            options: opts.clone(),
            source: hlo_serve::SourceKind::Ir(hlo_ir::program_to_text(p)),
            profile: hlo_serve::ProfileSpec::None,
            deadline_ms: None,
            train_arg: None,
            trace_id: None,
        };
        let mut client = hlo_serve::Client::connect(server.local_addr())
            .map_err(|e| format!("daemon connect failed: {e}"))?;
        client
            .optimize(&request(&pristine))
            .map_err(|e| format!("pristine daemon request failed: {e}"))?;
        let warm = client
            .optimize(&request(&edited))
            .map_err(|e| format!("edited daemon request failed: {e}"))?;
        let mut truth = edited.clone();
        hlo::optimize(&mut truth, None, &opts);
        if warm.ir_text != hlo_ir::program_to_text(&truth) {
            return Err(format!(
                "incremental rebuild after a one-constant edit differs from a \
                 from-scratch optimize (partition hits {}, rebuilds {})",
                warm.outcome.partition_hits, warm.outcome.partition_rebuilds
            ));
        }
        Ok(())
    }
}

/// Bumps the first integer constant (a `Const` instruction or an
/// immediate operand) in the program — the generic single-function edit
/// the incremental oracle applies to programs it did not write.
fn bump_first_const(p: &hlo_ir::Program) -> Option<hlo_ir::Program> {
    let mut q = p.clone();
    for f in &mut q.funcs {
        for b in &mut f.blocks {
            for inst in &mut b.insts {
                if let hlo_ir::Inst::Const {
                    value: hlo_ir::ConstVal::I64(v),
                    ..
                } = inst
                {
                    *v = v.wrapping_add(1);
                    return Some(q);
                }
                let mut bumped = false;
                inst.for_each_use_mut(|op| {
                    if bumped {
                        return;
                    }
                    if let hlo_ir::Operand::Const(hlo_ir::ConstVal::I64(v)) = op {
                        *v = v.wrapping_add(1);
                        bumped = true;
                    }
                });
                if bumped {
                    return Some(q);
                }
            }
        }
    }
    None
}

/// Shrinking predicate for [`FindingKind::IncrementalDivergence`]: an
/// in-process replica of the daemon's partition-splicing path. Build the
/// pristine program cold, store every partition body under its key, bump
/// one constant, splice the store hits through [`hlo::optimize_partial`],
/// and compare against a from-scratch optimize. The planted stale-key
/// fault ([`hlo_serve::fault`]) is process-global, so a divergence the
/// live daemon exposed reproduces here without a socket.
fn incremental_divergence_reproduces(sources: &[(String, String)]) -> bool {
    let Ok(pristine) = crate::oracle::compile_sources(sources) else {
        return false;
    };
    let Some(edited) = bump_first_const(&pristine) else {
        return false;
    };
    let opts = hlo::HloOptions::default();
    let salt = hlo_ir::fnv1a_64(b"");
    let keys_of = |p: &hlo_ir::Program| {
        let mut cg = hlo::CallGraphCache::new();
        let rk = hlo_serve::cache::request_key(p, &opts, "", &mut cg);
        let parts = hlo_serve::incremental::eligible_partitions(p, &opts, &mut cg).ok()?;
        Some(hlo_serve::incremental::partition_keys(
            p, &parts, &rk.funcs, salt,
        ))
    };
    let Some(keys) = keys_of(&pristine) else {
        return false;
    };
    let mut cold = pristine.clone();
    let out = hlo::optimize_partial(&mut cold, None, &opts, None, &mut hlo::Tracer::disabled());
    if out.log.globals_mutated {
        return false;
    }
    let store: std::collections::HashMap<u64, hlo::ReusedPartition> = keys
        .iter()
        .enumerate()
        .map(|(pi, &k)| (k, hlo::extract_partition(&cold, &out.log, pi)))
        .collect();
    let Some(edited_keys) = keys_of(&edited) else {
        return false;
    };
    let mut store = store;
    let plan: Vec<hlo::PartitionAction> = edited_keys
        .iter()
        .map(|k| match store.remove(k) {
            Some(stored) => hlo::PartitionAction::Reuse(stored),
            None => hlo::PartitionAction::Rebuild,
        })
        .collect();
    let mut spliced = edited.clone();
    hlo::optimize_partial(
        &mut spliced,
        None,
        &opts,
        Some(&plan),
        &mut hlo::Tracer::disabled(),
    );
    let mut truth = edited;
    hlo::optimize(&mut truth, None, &opts);
    hlo_ir::program_to_text(&spliced) != hlo_ir::program_to_text(&truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(iters: u64) -> CampaignConfig {
        CampaignConfig {
            iters,
            oracle: OracleConfig::quick(),
            ..Default::default()
        }
    }

    #[test]
    fn clean_campaign_has_no_findings() {
        let report = run_campaign(&quick_cfg(25));
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.passed > 0);
        assert_eq!(
            report.executed,
            report.passed + report.skipped,
            "every executed case must pass or be skipped"
        );
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = run_campaign(&quick_cfg(15));
        let b = run_campaign(&quick_cfg(15));
        assert_eq!(a.executed, b.executed);
        assert_eq!(a.passed, b.passed);
        assert_eq!(a.skipped, b.skipped);
        assert_eq!(a.findings.len(), b.findings.len());
    }

    #[test]
    fn planted_fault_yields_shrunk_findings_and_reproducers() {
        let _guard = hlo::fault::FaultGuard::arm();
        let dir = std::env::temp_dir().join(format!("hlo-fuzz-camp-{}", std::process::id()));
        let cfg = CampaignConfig {
            iters: 120,
            stop_after: 1,
            corpus_dir: Some(dir.clone()),
            ..quick_cfg(120)
        };
        let report = run_campaign(&cfg);
        assert!(
            !report.findings.is_empty(),
            "planted fault produced no findings in {} executed cases",
            report.executed
        );
        let f = &report.findings[0];
        let path = f.path.as_ref().expect("reproducer must be written");
        let loaded = crate::corpus::load_reproducer(path).unwrap();
        assert_eq!(loaded, f.repro);
        loaded.compile().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn daemon_round_trip_matches_in_process() {
        let _window = hlo_serve::fault::exclusion();
        let cfg = CampaignConfig {
            iters: 12,
            daemon_every: 2,
            ..quick_cfg(12)
        };
        let report = run_campaign(&cfg);
        assert!(report.daemon_checks > 0, "daemon check never ran");
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn incremental_edits_through_the_daemon_are_byte_identical() {
        let _window = hlo_serve::fault::exclusion();
        let cfg = CampaignConfig {
            iters: 12,
            incremental_every: 2,
            ..quick_cfg(12)
        };
        let report = run_campaign(&cfg);
        assert!(report.incremental_checks > 0, "incremental check never ran");
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn stale_partition_key_fault_is_caught_and_shrunk() {
        let _guard = hlo_serve::fault::FaultGuard::arm();
        let cfg = CampaignConfig {
            iters: 60,
            stop_after: 1,
            incremental_every: 1,
            ..quick_cfg(60)
        };
        let report = run_campaign(&cfg);
        let f = report
            .findings
            .iter()
            .find(|f| f.finding.kind == FindingKind::IncrementalDivergence)
            .unwrap_or_else(|| {
                panic!(
                    "stale partition keys survived {} incremental checks",
                    report.incremental_checks
                )
            });
        assert_eq!(f.finding.config, "daemon-incremental");
        assert!(
            matches!(&f.repro.body, ReproBody::Minc(_)),
            "incremental findings shrink to MinC reproducers"
        );
    }
}
