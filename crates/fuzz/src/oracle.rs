//! The differential oracle: translation validation by execution.
//!
//! A candidate program is executed once on the VM to establish its
//! *baseline* observable behaviour — return value, `print_i64` output in
//! order, `sink` checksum, and the exact sequence of extern calls. Then
//! the optimizer runs under every configuration in a matrix (budgets,
//! scopes, profile/no-profile, check levels), and each optimized program
//! must reproduce the baseline exactly. Any deviation is a **finding**:
//!
//! * the optimizer panicking ([`FindingKind::OptimizerPanic`]);
//! * the optimized program failing the IR verifier
//!   ([`FindingKind::VerifierRejected`]);
//! * verify-each attributing a new warning-or-worse diagnostic to a
//!   pipeline stage ([`FindingKind::CheckRegression`]);
//! * different observable behaviour, including a trap the baseline did
//!   not have ([`FindingKind::BehaviorDivergence`]);
//! * output that is not byte-identical across `--jobs` values
//!   ([`FindingKind::JobsNondeterminism`]);
//! * the two VM execution tiers disagreeing about what a program does
//!   ([`FindingKind::TierDivergence`]) — every execution the oracle
//!   performs (baseline and optimized) runs on both the tree-walker and
//!   the bytecode tier and must agree on return value, output, checksum,
//!   extern-call order, retired-instruction count, and trap.
//!
//! Baselines that trap are **skipped**, not reported: the generator
//! produces clean programs by construction, but mutants may divide by
//! zero or run off an array — and for trapping executions the optimizer's
//! obligations are weaker (dead trapping loads may legally disappear), so
//! differential comparison would report noise.

use crate::print::source_lines;
use hlo::MetricsRegistry;
use hlo::{optimize, CheckLevel, HloOptions, Scope};
use hlo_ir::{program_to_text, verify_program, Program};
use hlo_profile::ProfileDb;
use hlo_vm::{run_with_monitor, ExecMonitor, ExecOptions, ExecOutcome, SiteId, Tier};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Fuel for baseline runs. Optimized runs get [`FUEL_HEADROOM`]× this, so
/// a legitimate optimized program can never exhaust fuel the baseline had
/// left, while a transform that manufactures an infinite loop still gets
/// caught (as a divergence) instead of hanging the fuzzer.
pub const ORACLE_FUEL: u64 = 1 << 22;

/// Fuel multiplier for post-optimization runs.
pub const FUEL_HEADROOM: u64 = 4;

/// What one execution observably did. Two runs of semantically equivalent
/// programs must compare equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observed {
    /// `main`'s return value.
    pub ret: i64,
    /// `print_i64` values, in order.
    pub output: Vec<i64>,
    /// Final `sink` checksum.
    pub checksum: u64,
    /// Extern-call names, in call order (`print_i64`, `sink`, ...).
    pub externs: Vec<String>,
}

/// Categories of oracle findings, ordered roughly by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// The front end rejected a program the generator claims is valid.
    CompileError,
    /// `optimize` panicked.
    OptimizerPanic,
    /// The optimized program failed `verify_program`.
    VerifierRejected,
    /// Verify-each attributed a warning-or-worse diagnostic to a stage.
    CheckRegression,
    /// The optimized program behaved differently from the baseline.
    BehaviorDivergence,
    /// Output differed between `--jobs` values.
    JobsNondeterminism,
    /// The `hlo-serve` daemon returned different IR than an in-process
    /// optimize of the same request (cold), or its warm cached response
    /// was not byte-identical to the cold one.
    DaemonMismatch,
    /// The tree-walking and bytecode execution tiers disagreed about the
    /// same program's observable behaviour (a VM bug, not an optimizer
    /// bug).
    TierDivergence,
    /// The daemon's incremental (partition-splicing) rebuild of an edited
    /// program was not byte-identical to a from-scratch optimize of the
    /// same edit.
    IncrementalDivergence,
}

impl std::fmt::Display for FindingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FindingKind::CompileError => "compile-error",
            FindingKind::OptimizerPanic => "optimizer-panic",
            FindingKind::VerifierRejected => "verifier-rejected",
            FindingKind::CheckRegression => "check-regression",
            FindingKind::BehaviorDivergence => "behavior-divergence",
            FindingKind::JobsNondeterminism => "jobs-nondeterminism",
            FindingKind::DaemonMismatch => "daemon-mismatch",
            FindingKind::TierDivergence => "tier-divergence",
            FindingKind::IncrementalDivergence => "incremental-divergence",
        })
    }
}

/// One confirmed oracle failure.
#[derive(Debug, Clone)]
pub struct Finding {
    /// What went wrong.
    pub kind: FindingKind,
    /// Label of the matrix entry that exposed it.
    pub config: String,
    /// [`HloOptions::fingerprint`] of that entry — reproducers record it
    /// so a regression test can re-run the exact configuration.
    pub options_fingerprint: u64,
    /// Human-readable specifics (the two behaviours, the panic payload,
    /// the verifier error, ...).
    pub detail: String,
}

/// The verdict on one candidate program.
#[derive(Debug, Clone)]
pub enum CaseOutcome {
    /// Every matrix entry reproduced the baseline.
    Pass,
    /// The case was not usable for differential comparison (e.g. the
    /// baseline trapped); not a finding.
    Skip(String),
    /// A divergence, panic, or verifier rejection.
    Fail(Finding),
}

/// One optimizer configuration the oracle runs.
#[derive(Debug, Clone)]
pub struct MatrixEntry {
    /// Short stable label (appears in reproducer headers).
    pub label: String,
    /// The options under test (`jobs` is always 1 here).
    pub opts: HloOptions,
    /// Synthesize a profile from a baseline VM trace and optimize with it.
    pub with_profile: bool,
    /// Route the synthesized profile through an in-process
    /// `hlo_pgo::ProfileStore` (push, decay one generation, push again)
    /// and optimize with the *merged aggregate* — the exact profile a
    /// daemon `profile: server` rebuild would use. Implies
    /// `with_profile`.
    pub continuous_pgo: bool,
    /// Re-run the same optimization at `jobs = N` and require the result
    /// to be byte-identical.
    pub probe_jobs: bool,
}

/// Oracle configuration: program arguments, fuel, and the config matrix.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Arguments passed to `main`.
    pub args: Vec<i64>,
    /// Baseline fuel (optimized runs get [`FUEL_HEADROOM`]× more).
    pub fuel: u64,
    /// Worker count used by jobs-determinism probes.
    pub probe_jobs: usize,
    /// Tier used for profile synthesis (`ProfileDb::from_vm_trace`).
    /// Executions always run on *both* tiers regardless — this only
    /// selects which engine feeds PGO, so planted-fault sensitivity can
    /// be exercised end to end on either tier.
    pub tier: Tier,
    /// The configurations to test.
    pub entries: Vec<MatrixEntry>,
}

fn entry(label: &str, opts: HloOptions, with_profile: bool, probe_jobs: bool) -> MatrixEntry {
    MatrixEntry {
        label: label.to_string(),
        opts,
        with_profile,
        continuous_pgo: false,
        probe_jobs,
    }
}

impl OracleConfig {
    /// The full matrix the fuzz gate runs: budgets {0, 100, 400} crossed
    /// with both scopes, plus profile-guided, strict-checked, outlining,
    /// summary-analysis-disabled (`noipa`), and continuous-PGO
    /// (store-aggregated profile) configurations, with jobs-determinism
    /// probes on the aggressive entries.
    pub fn full() -> Self {
        let base = HloOptions::default(); // CrossModule, budget 100
        let with = |scope, budget: u64| HloOptions {
            scope,
            budget_percent: budget,
            ..base.clone()
        };
        OracleConfig {
            args: vec![5],
            fuel: ORACLE_FUEL,
            probe_jobs: 4,
            tier: Tier::Tree,
            entries: vec![
                entry("b0-module", with(Scope::WithinModule, 0), false, false),
                entry("b0-program", with(Scope::CrossModule, 0), false, false),
                entry("b100-module", with(Scope::WithinModule, 100), false, false),
                entry("b100-program", with(Scope::CrossModule, 100), false, true),
                entry(
                    "b100-program-pgo",
                    with(Scope::CrossModule, 100),
                    true,
                    false,
                ),
                entry("b400-program", with(Scope::CrossModule, 400), false, true),
                entry(
                    "b400-module-pgo",
                    with(Scope::WithinModule, 400),
                    true,
                    false,
                ),
                entry(
                    "b100-program-strict",
                    HloOptions {
                        check: CheckLevel::Strict,
                        ..with(Scope::CrossModule, 100)
                    },
                    false,
                    false,
                ),
                entry(
                    "b100-program-outline-pgo",
                    HloOptions {
                        enable_outline: true,
                        ..with(Scope::CrossModule, 100)
                    },
                    true,
                    false,
                ),
                // The ipa on/off axis: the summary-driven stages must be
                // sound (covered by every entry above, where ipa defaults
                // on) AND the pipeline must stay correct with them off.
                entry(
                    "b100-program-noipa",
                    HloOptions {
                        ipa: false,
                        ..with(Scope::CrossModule, 100)
                    },
                    false,
                    false,
                ),
                entry(
                    "b400-program-noipa",
                    HloOptions {
                        ipa: false,
                        ..with(Scope::CrossModule, 400)
                    },
                    false,
                    true,
                ),
                // Continuous PGO: the profile is not used raw but pushed
                // through a ProfileStore across a decay generation, so the
                // optimizer sees exactly what a daemon-side
                // `profile: server` rebuild would hand it.
                MatrixEntry {
                    label: "b100-program-pgo-server".to_string(),
                    opts: with(Scope::CrossModule, 100),
                    with_profile: true,
                    continuous_pgo: true,
                    probe_jobs: false,
                },
            ],
        }
    }

    /// A three-entry matrix for unit tests and quick smoke runs.
    pub fn quick() -> Self {
        let full = Self::full();
        OracleConfig {
            entries: full
                .entries
                .iter()
                .filter(|e| {
                    matches!(
                        e.label.as_str(),
                        "b0-program" | "b100-program" | "b100-program-pgo"
                    )
                })
                .cloned()
                .collect(),
            ..full
        }
    }
}

impl Default for OracleConfig {
    fn default() -> Self {
        Self::full()
    }
}

/// Records the extern-call name sequence of one run.
struct ExternTrace {
    names: Vec<String>,
    calls: Vec<String>,
}

impl ExecMonitor for ExternTrace {
    fn extern_call(&mut self, _site: SiteId, ext: hlo_ir::ExternId) {
        self.calls.push(self.names[ext.0 as usize].clone());
    }
}

/// Runs `p` on one tier and collects its observable behaviour plus the
/// retired-instruction count.
fn observe_on(
    p: &Program,
    args: &[i64],
    fuel: u64,
    tier: Tier,
    metrics: Option<&MetricsRegistry>,
) -> Result<(Observed, u64), hlo_vm::Trap> {
    let mut tracer = ExternTrace {
        names: p.externs.iter().map(|e| e.name.clone()).collect(),
        calls: Vec::new(),
    };
    let opts = ExecOptions {
        fuel,
        tier,
        ..Default::default()
    };
    let out: ExecOutcome = match metrics {
        Some(reg) => hlo_vm::run_with_monitor_metrics(p, args, &opts, &mut tracer, reg)?,
        None => run_with_monitor(p, args, &opts, &mut tracer)?,
    };
    let retired = out.retired;
    Ok((
        Observed {
            ret: out.ret,
            output: out.output,
            checksum: out.checksum,
            externs: tracer.calls,
        },
        retired,
    ))
}

/// Runs `p` and collects its observable behaviour (tree tier).
///
/// # Errors
/// Propagates the VM trap when the run faults.
pub fn observe(p: &Program, args: &[i64], fuel: u64) -> Result<Observed, hlo_vm::Trap> {
    observe_on(p, args, fuel, Tier::Tree, None).map(|(o, _)| o)
}

fn tier_side(r: &Result<(Observed, u64), hlo_vm::Trap>) -> String {
    match r {
        Ok((o, retired)) => format!(
            "ret {} output {:?} checksum {:#x} externs {:?} retired {retired}",
            o.ret, o.output, o.checksum, o.externs
        ),
        Err(t) => format!("trap: {t}"),
    }
}

/// Runs `p` on *both* execution tiers and requires them to agree on the
/// full result — same [`Observed`] and retired count, or the same trap
/// with the same function attribution.
///
/// # Errors
/// The outer `Err` describes a tier divergence (a VM bug); the inner
/// `Result` is the agreed-upon run result.
pub fn observe_both(
    p: &Program,
    args: &[i64],
    fuel: u64,
) -> Result<Result<Observed, hlo_vm::Trap>, String> {
    observe_both_with(p, args, fuel, None)
}

fn observe_both_with(
    p: &Program,
    args: &[i64],
    fuel: u64,
    metrics: Option<&MetricsRegistry>,
) -> Result<Result<Observed, hlo_vm::Trap>, String> {
    let tree = observe_on(p, args, fuel, Tier::Tree, metrics);
    let bytecode = observe_on(p, args, fuel, Tier::Bytecode, metrics);
    if tree == bytecode {
        Ok(tree.map(|(o, _)| o))
    } else {
        Err(format!(
            "tree [{}] vs bytecode [{}]",
            tier_side(&tree),
            tier_side(&bytecode)
        ))
    }
}

/// Compiles `(module, source)` pairs through the real front end.
///
/// # Errors
/// Returns the front-end error message.
pub fn compile_sources(sources: &[(String, String)]) -> Result<Program, String> {
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    hlo_frontc::compile(&refs).map_err(|e| e.to_string())
}

/// Oracle entry point for source-level cases: compile, then run the
/// matrix. A front-end rejection is itself a finding — the generator and
/// shrinker only emit programs they believe are valid.
pub fn check_sources(sources: &[(String, String)], oc: &OracleConfig) -> CaseOutcome {
    check_sources_with(sources, oc, None)
}

/// [`check_sources`] with per-tier VM execution counters recorded into
/// `metrics` (see `hlo_vm::run_with_monitor_metrics`).
pub fn check_sources_with(
    sources: &[(String, String)],
    oc: &OracleConfig,
    metrics: Option<&MetricsRegistry>,
) -> CaseOutcome {
    match compile_sources(sources) {
        Ok(p) => check_program_with(&p, oc, metrics),
        Err(e) => CaseOutcome::Fail(Finding {
            kind: FindingKind::CompileError,
            config: "frontc".to_string(),
            options_fingerprint: 0,
            detail: format!("{e} ({} source lines)", source_lines(sources)),
        }),
    }
}

/// Oracle entry point for already-compiled programs (the IR generator and
/// the daemon cross-check use this).
pub fn check_program(p0: &Program, oc: &OracleConfig) -> CaseOutcome {
    check_program_with(p0, oc, None)
}

/// [`check_program`] with per-tier VM execution counters recorded into
/// `metrics`.
pub fn check_program_with(
    p0: &Program,
    oc: &OracleConfig,
    metrics: Option<&MetricsRegistry>,
) -> CaseOutcome {
    let baseline = match observe_both_with(p0, &oc.args, oc.fuel, metrics) {
        Ok(Ok(b)) => b,
        Ok(Err(t)) => return CaseOutcome::Skip(format!("baseline trapped: {t}")),
        Err(d) => {
            return CaseOutcome::Fail(Finding {
                kind: FindingKind::TierDivergence,
                config: "tier-baseline".to_string(),
                options_fingerprint: 0,
                detail: d,
            });
        }
    };
    let opt_fuel = oc.fuel.saturating_mul(FUEL_HEADROOM);

    for entry in &oc.entries {
        let fp = entry.opts.fingerprint();
        let fail = |kind, detail: String| {
            CaseOutcome::Fail(Finding {
                kind,
                config: entry.label.clone(),
                options_fingerprint: fp,
                detail,
            })
        };

        let profile = entry.with_profile.then(|| {
            let exec = ExecOptions {
                fuel: oc.fuel,
                tier: oc.tier,
                ..Default::default()
            };
            let db = ProfileDb::from_vm_trace(p0, &oc.args, &exec);
            if entry.continuous_pgo {
                // Age the profile through the daemon's store machinery:
                // push, decay one generation, push again. The merged
                // (decayed + fresh) aggregate is what a `profile: server`
                // rebuild optimizes with; it must be just as sound as the
                // raw profile.
                let mut store = hlo_pgo::ProfileStore::new(hlo_pgo::store::DEFAULT_CAP);
                let key = hlo_pgo::program_key(p0);
                store.register(&key).expect("derived keys are well-formed");
                store.push(&key, &db).expect("key was just registered");
                store.advance(&key, 1).expect("key was just registered");
                store.push(&key, &db).expect("key was just registered");
                store.merged(&key).unwrap_or(db)
            } else {
                db
            }
        });

        let mut optimized = p0.clone();
        let report = match catch_unwind(AssertUnwindSafe(|| {
            optimize(&mut optimized, profile.as_ref(), &entry.opts)
        })) {
            Ok(r) => r,
            Err(payload) => {
                return fail(FindingKind::OptimizerPanic, panic_message(payload));
            }
        };

        if let Err(e) = verify_program(&optimized) {
            return fail(FindingKind::VerifierRejected, format!("{e:?}"));
        }

        if entry.opts.check != CheckLevel::Off {
            let introduced: Vec<String> = report
                .introduced_diagnostics()
                .filter(|d| d.severity >= hlo::Severity::Warning)
                .map(|d| d.to_string())
                .collect();
            if !introduced.is_empty() {
                return fail(
                    FindingKind::CheckRegression,
                    format!("{} introduced: {}", introduced.len(), introduced.join("; ")),
                );
            }
        }

        match observe_both_with(&optimized, &oc.args, opt_fuel, metrics) {
            Ok(Ok(obs)) => {
                if obs != baseline {
                    return fail(
                        FindingKind::BehaviorDivergence,
                        diff_detail(&baseline, &obs),
                    );
                }
            }
            Ok(Err(t)) => {
                return fail(
                    FindingKind::BehaviorDivergence,
                    format!("baseline ran clean, optimized trapped: {t}"),
                );
            }
            Err(d) => {
                return fail(FindingKind::TierDivergence, d);
            }
        }

        if entry.probe_jobs {
            let mut parallel = p0.clone();
            let opts_n = HloOptions {
                jobs: oc.probe_jobs,
                ..entry.opts.clone()
            };
            let r = catch_unwind(AssertUnwindSafe(|| {
                optimize(&mut parallel, profile.as_ref(), &opts_n)
            }));
            if r.is_err() {
                return fail(
                    FindingKind::OptimizerPanic,
                    format!("panicked only at jobs={}", oc.probe_jobs),
                );
            }
            if program_to_text(&parallel) != program_to_text(&optimized) {
                return fail(
                    FindingKind::JobsNondeterminism,
                    format!(
                        "jobs=1 and jobs={} produced different programs",
                        oc.probe_jobs
                    ),
                );
            }
        }
    }
    CaseOutcome::Pass
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn diff_detail(base: &Observed, got: &Observed) -> String {
    let mut parts = Vec::new();
    if base.ret != got.ret {
        parts.push(format!("ret {} vs {}", base.ret, got.ret));
    }
    if base.output != got.output {
        parts.push(format!("output {:?} vs {:?}", base.output, got.output));
    }
    if base.checksum != got.checksum {
        parts.push(format!(
            "checksum {:#x} vs {:#x}",
            base.checksum, got.checksum
        ));
    }
    if base.externs != got.externs {
        parts.push(format!(
            "extern trace {:?} vs {:?}",
            base.externs, got.externs
        ));
    }
    parts.join("; ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sources_of(src: &str) -> Vec<(String, String)> {
        vec![("m".to_string(), src.to_string())]
    }

    #[test]
    fn clean_program_passes_the_full_matrix() {
        let out = check_sources(
            &sources_of(
                r#"
                fn helper(x) { return x * 3 + 1; }
                fn main(a) {
                    var s = 0;
                    for (var i = 0; i < (a & 7) + 2; i = i + 1) { s = s + helper(i); }
                    print_i64(s);
                    sink(s);
                    return s;
                }
                "#,
            ),
            &OracleConfig::full(),
        );
        assert!(matches!(out, CaseOutcome::Pass), "{out:?}");
    }

    #[test]
    fn trapping_baseline_is_skipped() {
        let out = check_sources(
            &sources_of("fn main(a) { return a / (a - a); }"),
            &OracleConfig::quick(),
        );
        assert!(matches!(out, CaseOutcome::Skip(_)), "{out:?}");
    }

    #[test]
    fn unparseable_source_is_a_compile_finding() {
        let out = check_sources(
            &sources_of("fn main( { return 0; }"),
            &OracleConfig::quick(),
        );
        match out {
            CaseOutcome::Fail(f) => assert_eq!(f.kind, FindingKind::CompileError),
            other => panic!("expected compile finding, got {other:?}"),
        }
    }

    #[test]
    fn planted_ipa_fault_is_detected_as_divergence() {
        // Arm the summary fault: every function's effect facts are erased,
        // so the ipa stage deletes the dead-result call to `noisy` — whose
        // print is observable — and the extern trace diverges. The quick
        // matrix keeps `ipa` at its default (on).
        let _guard = hlo_ipa::fault::FaultGuard::arm();
        let out = check_sources(
            &sources_of(
                r#"
                fn noisy(x) { print_i64(x); return x; }
                fn main(a) { noisy(a + 1); return a; }
                "#,
            ),
            &OracleConfig::quick(),
        );
        match out {
            CaseOutcome::Fail(f) => {
                assert_eq!(f.kind, FindingKind::BehaviorDivergence);
                assert!(
                    f.detail.contains("extern trace") || f.detail.contains("output"),
                    "{}",
                    f.detail
                );
            }
            other => panic!("expected divergence under summary fault, got {other:?}"),
        }
    }

    #[test]
    fn planted_fault_is_detected_as_divergence() {
        // Arm the inliner fault: the first spliced Add becomes a Sub, so
        // any inlined callee computing `x + y` diverges observably. The
        // arguments are deliberately non-constant — with a constant
        // argument the cloner specializes the callee instead of inlining
        // it, and the fault (which lives in `inline_call`) stays silent.
        let _guard = hlo::fault::FaultGuard::arm();
        let out = check_sources(
            &sources_of(
                r#"
                fn add(x, y) { return x + y; }
                fn main(a) { print_i64(add(a, a + 1)); return add(a, a * 2); }
                "#,
            ),
            &OracleConfig::quick(),
        );
        match out {
            CaseOutcome::Fail(f) => assert_eq!(f.kind, FindingKind::BehaviorDivergence),
            other => panic!("expected divergence under fault, got {other:?}"),
        }
    }
}
