//! Shrinker soundness: minimization must preserve the finding, and every
//! intermediate program the shrinker *accepted* must itself be a valid,
//! still-failing reproducer. A shrinker that walks through broken states
//! can "minimize" its way to a different bug than the one it started
//! with; this test audits the whole trail, using the planted inliner
//! fault (`hlo::fault`) as a known-bad optimizer.

use hlo_frontc::{Expr, Item, ModuleAst};
use hlo_fuzz::{gen, oracle, shrink, walk, CaseOutcome, GenConfig, OracleConfig, ShrinkConfig};

/// The measure each accepted shrink step must strictly decrease
/// (lexicographically): total AST nodes, then non-literal expressions
/// (constant replacement keeps the node count), then attributed
/// functions (attr stripping keeps both). Strict decrease is what makes
/// the greedy loop terminate without leaning on the eval budget.
fn complexity(sources: &[(String, String)]) -> (usize, usize, usize) {
    let mut modules: Vec<ModuleAst> = sources
        .iter()
        .map(|(n, s)| hlo_frontc::parse_module(n, s).expect("step parses"))
        .collect();
    let items: usize = modules.iter().map(|m| m.items.len()).sum();
    let stmts = walk::stmt_count(&modules);
    let exprs = walk::expr_count(&mut modules);
    let mut non_literal = 0usize;
    walk::for_each_expr_mut(&mut modules, &mut |e| {
        if !matches!(e, Expr::Int(_)) {
            non_literal += 1;
        }
    });
    let attred = modules
        .iter()
        .flat_map(|m| &m.items)
        .filter(|i| matches!(i, Item::Fn(f) if f.attrs != Default::default() || f.is_static))
        .count();
    (modules.len() + items + stmts + exprs, non_literal, attred)
}

/// Find a generated program that trips the planted fault, shrink it, and
/// re-verify every accepted step: it compiles, passes the IR verifier,
/// and still exhibits the same finding kind.
#[test]
fn every_accepted_shrink_step_is_verifier_clean_and_still_failing() {
    let _guard = hlo::fault::FaultGuard::arm();
    let oc = OracleConfig::quick();

    let (modules, want) = (0..200u64)
        .find_map(|seed| {
            let m = gen::generate_modules(seed, &GenConfig::default());
            match oracle::check_sources(&hlo_fuzz::print::print_sources(&m), &oc) {
                CaseOutcome::Fail(f) => Some((m, f.kind)),
                _ => None,
            }
        })
        .expect("some seed must trip the planted inliner fault");

    let mut pred = |sources: &[(String, String)]| {
        matches!(oracle::check_sources(sources, &oc),
                 CaseOutcome::Fail(f) if f.kind == want)
    };
    let out = shrink(modules, &ShrinkConfig::default(), &mut pred);

    assert!(!out.steps.is_empty(), "shrinker accepted no reductions");
    for (i, step) in out.steps.iter().enumerate() {
        // Accepted step compiles and verifies...
        let p = oracle::compile_sources(&step.sources)
            .unwrap_or_else(|e| panic!("step {i} ({}) does not compile: {e}", step.action));
        hlo_ir::verify_program(&p)
            .unwrap_or_else(|e| panic!("step {i} ({}) fails the verifier: {e}", step.action));
        // ...and still fails the oracle the same way.
        match oracle::check_sources(&step.sources, &oc) {
            CaseOutcome::Fail(f) if f.kind == want => {}
            other => panic!(
                "step {i} ({}) no longer exhibits {want:?}: {other:?}",
                step.action
            ),
        }
    }

    // Each accepted step strictly decreases the structural measure, so
    // the greedy loop cannot cycle even without its eval budget.
    let mut last = (usize::MAX, usize::MAX, usize::MAX);
    for (i, step) in out.steps.iter().enumerate() {
        let c = complexity(&step.sources);
        assert!(
            c < last,
            "step {i} ({}) did not strictly shrink: {last:?} -> {c:?}",
            step.action
        );
        last = c;
    }
}

/// Without a fault armed, shrinking a passing program is a no-op worth
/// guarding: the predicate never holds, so nothing is accepted.
#[test]
fn shrinker_never_accepts_when_the_predicate_never_holds() {
    let modules = gen::generate_modules(2, &GenConfig::default());
    let mut evals = 0u32;
    let mut pred = |_: &[(String, String)]| {
        evals += 1;
        false
    };
    let out = shrink(modules.clone(), &ShrinkConfig::default(), &mut pred);
    assert!(out.steps.is_empty());
    assert_eq!(out.modules, modules, "program must be unchanged");
    assert!(evals > 0, "predicate was never consulted");
}
