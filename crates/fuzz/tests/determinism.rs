//! Seed determinism: the whole fuzzing stack — generators, oracle,
//! campaign — must be a pure function of its seed. Reproducers are only
//! trustworthy if re-running the seed reproduces the run.

use hlo_fuzz::{
    gen, irgen, oracle, run_campaign, CampaignConfig, CaseOutcome, GenConfig, IrGenConfig,
    OracleConfig,
};

#[test]
fn same_seed_gives_byte_identical_sources() {
    for seed in [0u64, 1, 17, 0xdead_beef] {
        let a = gen::generate_sources(seed, &GenConfig::default());
        let b = gen::generate_sources(seed, &GenConfig::default());
        assert_eq!(a, b, "seed {seed} not reproducible");
    }
}

#[test]
fn same_seed_gives_byte_identical_ir() {
    for seed in [0u64, 3, 99] {
        let a = irgen::generate_program(seed, &IrGenConfig::default());
        let b = irgen::generate_program(seed, &IrGenConfig::default());
        assert_eq!(
            hlo_ir::program_to_text(&a),
            hlo_ir::program_to_text(&b),
            "IR seed {seed} not reproducible"
        );
    }
}

#[test]
fn verdicts_are_reproducible_and_jobs_independent() {
    // The oracle's verdict for a case must not depend on when it runs or
    // on the worker count its jobs-probe uses.
    for seed in 0..6u64 {
        let sources = gen::generate_sources(seed, &GenConfig::default());
        let quick = OracleConfig::quick();
        let v1 = oracle::check_sources(&sources, &quick);
        let v2 = oracle::check_sources(&sources, &quick);
        assert_eq!(
            verdict_tag(&v1),
            verdict_tag(&v2),
            "seed {seed} verdict flapped"
        );

        let many_jobs = OracleConfig {
            probe_jobs: 8,
            ..OracleConfig::quick()
        };
        let v8 = oracle::check_sources(&sources, &many_jobs);
        assert_eq!(
            verdict_tag(&v1),
            verdict_tag(&v8),
            "seed {seed} verdict changed with probe_jobs"
        );
    }
}

#[test]
fn campaign_reports_are_reproducible() {
    let cfg = CampaignConfig {
        iters: 20,
        oracle: OracleConfig::quick(),
        ..Default::default()
    };
    let a = run_campaign(&cfg);
    let b = run_campaign(&cfg);
    assert_eq!(a.executed, b.executed);
    assert_eq!(a.passed, b.passed);
    assert_eq!(a.skipped, b.skipped);
    assert_eq!(a.mutants_discarded, b.mutants_discarded);
    assert_eq!(a.findings.len(), b.findings.len());
    for (fa, fb) in a.findings.iter().zip(&b.findings) {
        assert_eq!(fa.repro.format(), fb.repro.format());
    }
}

fn verdict_tag(v: &CaseOutcome) -> String {
    match v {
        CaseOutcome::Pass => "pass".to_string(),
        CaseOutcome::Skip(s) => format!("skip:{s}"),
        CaseOutcome::Fail(f) => format!("fail:{}:{}", f.kind, f.config),
    }
}
