//! Regression corpus replay.
//!
//! `crates/fuzz/corpus/` holds checked-in reproducers produced by the
//! shrinker from campaigns against the planted inliner fault
//! (`hlo::fault`). Two properties must hold forever:
//!
//! 1. on the *current* optimizer every reproducer replays clean — the
//!    corpus is the gate's institutional memory of past divergences;
//! 2. with the planted fault armed every reproducer still trips the
//!    finding recorded in its header — proving the files are live
//!    reproducers, not stale text.
//!
//! Regenerate with
//! `cargo test -p hlo-fuzz --test regressions regenerate -- --ignored`.

use std::path::{Path, PathBuf};

use hlo_fuzz::{
    gen, load_reproducer, oracle, shrink, write_reproducer, CaseOutcome, GenConfig, OracleConfig,
    ReproBody, Reproducer, ShrinkConfig,
};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Loads every reproducer in the corpus, sorted by file name so the
/// assertion order is stable.
fn load_corpus() -> Vec<(PathBuf, Reproducer)> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            matches!(
                p.extension().and_then(|e| e.to_str()),
                Some("mc") | Some("hlo")
            )
        })
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let r = load_reproducer(&p)
                .unwrap_or_else(|e| panic!("{} does not parse: {e}", p.display()));
            (p, r)
        })
        .collect()
}

fn replay(r: &Reproducer, oc: &OracleConfig) -> CaseOutcome {
    match &r.body {
        ReproBody::Minc(sources) => oracle::check_sources(sources, oc),
        ReproBody::Ir(text) => {
            let p = hlo_ir::parse_program_text(text).expect("corpus IR parses");
            oracle::check_program(&p, oc)
        }
    }
}

/// Property 1: the corpus replays clean on today's optimizer, through the
/// full config matrix.
#[test]
fn corpus_replays_clean_on_the_current_optimizer() {
    let corpus = load_corpus();
    assert!(
        corpus.len() >= 3,
        "expected at least 3 checked-in reproducers, found {}",
        corpus.len()
    );
    let oc = OracleConfig::default();
    for (path, r) in &corpus {
        r.compile()
            .unwrap_or_else(|e| panic!("{} does not compile: {e}", path.display()));
        match replay(r, &oc) {
            CaseOutcome::Pass | CaseOutcome::Skip(_) => {}
            CaseOutcome::Fail(f) => panic!(
                "{} regressed: {} ({}) — {}",
                path.display(),
                f.kind,
                f.config,
                f.detail
            ),
        }
    }
}

/// Property 2: each reproducer is live — arming the fault it was shrunk
/// against reproduces the recorded finding kind.
#[test]
fn corpus_still_trips_the_fault_it_was_shrunk_from() {
    let _guard = hlo::fault::FaultGuard::arm();
    let oc = OracleConfig::default();
    for (path, r) in load_corpus() {
        match replay(&r, &oc) {
            CaseOutcome::Fail(f) => assert_eq!(
                f.kind.to_string(),
                r.kind,
                "{} tripped a different finding than recorded",
                path.display()
            ),
            other => panic!(
                "{} no longer reproduces with the fault armed: {other:?}",
                path.display()
            ),
        }
    }
}

/// Rebuilds the corpus: scans seeds for programs that trip the planted
/// fault, shrinks each, and writes the first three reproducers. Run
/// explicitly (`-- --ignored`) after generator or printer changes, then
/// review and commit the files.
#[test]
#[ignore = "writes into crates/fuzz/corpus; run explicitly to regenerate"]
fn regenerate() {
    let _guard = hlo::fault::FaultGuard::arm();
    let oc = OracleConfig::quick();
    let mut written = 0usize;
    for seed in 0..400u64 {
        let modules = gen::generate_modules(seed, &GenConfig::default());
        let sources = hlo_fuzz::print::print_sources(&modules);
        let finding = match oracle::check_sources(&sources, &oc) {
            CaseOutcome::Fail(f) => f,
            _ => continue,
        };
        let want = finding.kind;
        let mut pred = |s: &[(String, String)]| {
            matches!(oracle::check_sources(s, &oc),
                     CaseOutcome::Fail(f) if f.kind == want)
        };
        let out = shrink(modules, &ShrinkConfig::default(), &mut pred);
        let repro = Reproducer {
            kind: finding.kind.to_string(),
            config: finding.config,
            seed,
            iter: seed,
            fingerprint: finding.options_fingerprint,
            body: ReproBody::Minc(out.sources),
        };
        let path = write_reproducer(&corpus_dir(), &repro).expect("corpus write");
        eprintln!("regenerated {}", path.display());
        written += 1;
        if written == 3 {
            return;
        }
    }
    panic!("only {written} of 3 reproducers regenerated in 400 seeds");
}
