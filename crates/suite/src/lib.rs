#![warn(missing_docs)]
//! The benchmark suite: fourteen MinC programs mirroring the call-site
//! character of the SPECint92/95 programs the paper evaluates.
//!
//! We cannot ship SPEC sources; what the paper's evaluation measures is
//! the *shape* of these programs — their call-site mix (Figure 5), how
//! much inlining and cloning they admit (Table 1), and how the
//! transformed code behaves on the machine model (Figures 6–8). Each
//! synthetic program is written to reproduce the corresponding shape:
//!
//! | program | shape reproduced |
//! |---|---|
//! | `008.espresso` | bit-set kernels, many small helpers, two modules |
//! | `022.li` / `130.li` | lisp interpreter: recursive eval/apply over a cons heap, dispatch helpers (the paper's star cloning target) |
//! | `023.eqntott` | sort with comparison **function pointer** (indirect sites) |
//! | `026.compress` / `129.compress` | LZW over a hash table, one hot loop |
//! | `072.sc` | spreadsheet evaluator + a **stub curses module** whose calls are deleted by interprocedural side-effect analysis |
//! | `085.gcc` / `126.gcc` | many small routines spread over many modules, wide flat call graph |
//! | `099.go` | board scanning with nested loops and flood-fill recursion |
//! | `124.m88ksim` | CPU simulator with a **function-pointer dispatch table** (the staged clone→promote→inline showcase) |
//! | `132.ijpeg` | 8×8 integer DCT-ish kernels, deep loop nests |
//! | `134.perl` | bytecode interpreter with opcode helpers and recursion |
//! | `147.vortex` | object store with per-type virtual dispatch tables |
//!
//! Programs take one argument (the workload scale); `train_arg` plays the
//! paper's training input, `ref_arg` the reporting input. Outputs are
//! deterministic and validated via the VM `sink` checksum.

mod programs;

use hlo_frontc::FrontError;
use hlo_ir::Program;

/// Which SPEC generation a benchmark mirrors (Figure 6 reports separate
/// geometric means for the two suites).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecSuite {
    /// SPECint92.
    Int92,
    /// SPECint95.
    Int95,
}

/// One synthetic benchmark.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// SPEC-style name, e.g. `"022.li"`.
    pub name: &'static str,
    /// Which suite it belongs to.
    pub suite: SpecSuite,
    /// `(module name, MinC source)` pairs.
    pub sources: Vec<(&'static str, &'static str)>,
    /// Scale argument for the training run.
    pub train_arg: i64,
    /// Scale argument for the reporting (ref) run.
    pub ref_arg: i64,
}

impl Benchmark {
    /// Compiles the benchmark to an unoptimized whole program.
    ///
    /// # Errors
    /// Returns the front-end error if the embedded sources are invalid
    /// (a bug in this crate; the unit tests compile every benchmark).
    pub fn compile(&self) -> Result<Program, FrontError> {
        hlo_frontc::compile(&self.sources)
    }
}

/// All fourteen benchmarks, in the paper's Figure 5 order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        programs::espresso(),
        programs::li_022(),
        programs::eqntott(),
        programs::compress_026(),
        programs::sc(),
        programs::gcc_085(),
        programs::go(),
        programs::m88ksim(),
        programs::gcc_126(),
        programs::compress_129(),
        programs::li_130(),
        programs::ijpeg(),
        programs::perl(),
        programs::vortex(),
    ]
}

/// Looks up one benchmark by its SPEC-style name.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

/// The subset reported in the paper's Table 1.
pub fn table1_benchmarks() -> Vec<Benchmark> {
    [
        "008.espresso",
        "022.li",
        "072.sc",
        "085.gcc",
        "099.go",
        "124.m88ksim",
        "147.vortex",
    ]
    .iter()
    .filter_map(|n| benchmark(n))
    .collect()
}

/// The subset simulated in the paper's Figure 7 (SPEC95 programs with
/// reduced inputs).
pub fn figure7_benchmarks() -> Vec<Benchmark> {
    [
        "099.go",
        "124.m88ksim",
        "126.gcc",
        "130.li",
        "132.ijpeg",
        "134.perl",
        "147.vortex",
    ]
    .iter()
    .filter_map(|n| benchmark(n))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_vm::{run_program, ExecOptions};

    #[test]
    fn registry_is_complete_and_unique() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 14);
        let mut names: Vec<_> = all.iter().map(|b| b.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 14);
        assert_eq!(
            all.iter().filter(|b| b.suite == SpecSuite::Int92).count(),
            6
        );
        assert_eq!(
            all.iter().filter(|b| b.suite == SpecSuite::Int95).count(),
            8
        );
    }

    #[test]
    fn every_benchmark_compiles_verifies_and_runs_train() {
        for b in all_benchmarks() {
            let p = b.compile().unwrap_or_else(|e| panic!("{}: {e}", b.name));
            hlo_ir::verify_program(&p).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let out = run_program(&p, &[b.train_arg], &ExecOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(
                out.retired > 1000,
                "{} too trivial: {}",
                b.name,
                out.retired
            );
        }
    }

    #[test]
    fn benchmarks_are_deterministic() {
        for b in all_benchmarks() {
            let p = b.compile().unwrap();
            let a = run_program(&p, &[b.train_arg], &ExecOptions::default()).unwrap();
            let c = run_program(&p, &[b.train_arg], &ExecOptions::default()).unwrap();
            assert_eq!(a.ret, c.ret, "{}", b.name);
            assert_eq!(a.checksum, c.checksum, "{}", b.name);
        }
    }

    #[test]
    fn ref_runs_are_bigger_than_train_runs() {
        for b in all_benchmarks() {
            let p = b.compile().unwrap();
            let t = run_program(&p, &[b.train_arg], &ExecOptions::default()).unwrap();
            let r = run_program(&p, &[b.ref_arg], &ExecOptions::default()).unwrap();
            assert!(
                r.retired > t.retired,
                "{}: ref {} !> train {}",
                b.name,
                r.retired,
                t.retired
            );
        }
    }

    #[test]
    fn optimization_preserves_every_benchmark() {
        for b in all_benchmarks() {
            let p0 = b.compile().unwrap();
            let before = run_program(&p0, &[b.train_arg], &ExecOptions::default()).unwrap();
            let mut p = p0.clone();
            hlo::optimize(&mut p, None, &hlo::HloOptions::default());
            hlo_ir::verify_program(&p).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let after = run_program(&p, &[b.train_arg], &ExecOptions::default()).unwrap();
            assert_eq!(before.ret, after.ret, "{}", b.name);
            assert_eq!(before.checksum, after.checksum, "{}", b.name);
        }
    }

    #[test]
    fn lookups_work() {
        assert!(benchmark("022.li").is_some());
        assert!(benchmark("999.nope").is_none());
        assert_eq!(table1_benchmarks().len(), 7);
        assert_eq!(figure7_benchmarks().len(), 7);
    }

    #[test]
    fn suite_has_indirect_and_external_sites_overall() {
        // Figure 5 needs all five categories to be populated somewhere.
        let mut total = hlo_analysis::SiteCounts::default();
        for b in all_benchmarks() {
            let p = b.compile().unwrap();
            let c = hlo_analysis::classify_sites(&p);
            total.external += c.external;
            total.indirect += c.indirect;
            total.cross_module += c.cross_module;
            total.within_module += c.within_module;
            total.recursive += c.recursive;
        }
        assert!(total.external > 0);
        assert!(total.indirect > 0);
        assert!(total.cross_module > 0);
        assert!(total.within_module > 0);
        assert!(total.recursive > 0);
    }
}
