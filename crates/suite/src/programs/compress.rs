//! `026.compress` and `129.compress` — LZW compression.
//!
//! Shape reproduced: one hot loop hashing `(prefix, char)` pairs into a
//! code table, with small helper routines (`hash`, `probe`, `output`)
//! that inlining folds into the loop; the SPEC95 version uses a larger
//! dictionary and a different synthetic input mix.

use crate::{Benchmark, SpecSuite};

const HASHMOD: &str = r#"
// Open-addressing code table, as in compress's hashing core.
global htab[8192];
global codetab[8192];
global table_size;

fn table_init(n) {
    table_size = n;
    for (var i = 0; i < n; i = i + 1) { htab[i] = -1; }
}

fn hash_key(prefix, c) {
    return ((c << 6) ^ prefix) % table_size;
}

// Returns the code for (prefix, c), or -1 and inserts with `newcode`.
fn probe(prefix, c, newcode) {
    var key = (prefix << 9) | c;
    var h = hash_key(prefix, c);
    while (htab[h] != -1) {
        if (htab[h] == key) { return codetab[h]; }
        h = h + 1;
        if (h == table_size) { h = 0; }
    }
    htab[h] = key;
    codetab[h] = newcode;
    return -1;
}
"#;

const MAIN_026: &str = r#"
global seed;
global outsum;
global outbits;

static fn next_rand() {
    seed = (seed * 1103515245 + 12345) & 0x7fffffff;
    return seed;
}

// Skewed source: mostly a small alphabet with occasional escapes, so the
// dictionary paths have a hot and a cold side.
static fn next_byte() {
    var r = next_rand() % 100;
    if (r < 85) { return next_rand() % 8; }
    return next_rand() % 64;
}

static fn output_code(code) {
    outsum = (outsum * 31 + code) & 0xffffffff;
    outbits = outbits + 12;
}

static fn compress_stream(len) {
    table_init(4096);
    var nextcode = 64;
    var prefix = next_byte();
    for (var i = 1; i < len; i = i + 1) {
        var c = next_byte();
        var code = probe(prefix, c, nextcode);
        if (code != -1) {
            prefix = code;
        } else {
            output_code(prefix);
            if (nextcode < 2048) { nextcode = nextcode + 1; }
            prefix = c;
        }
    }
    output_code(prefix);
}

fn main(scale) {
    seed = 2026;
    outsum = 0;
    outbits = 0;
    for (var round = 0; round < scale; round = round + 1) {
        compress_stream(4000);
    }
    sink(outsum);
    sink(outbits);
    return outsum;
}
"#;

const MAIN_129: &str = r#"
global seed;
global outsum;
global outbits;

static fn next_rand() {
    seed = (seed * 69069 + 5) & 0x7fffffff;
    return seed;
}

// SPEC95 input: longer runs, bigger alphabet.
static fn next_byte() {
    var r = next_rand() % 100;
    if (r < 70) { return next_rand() % 16; }
    if (r < 95) { return next_rand() % 48; }
    return next_rand() % 128;
}

static fn output_code(code) {
    outsum = (outsum * 37 + code) & 0xffffffff;
    outbits = outbits + 13;
}

static fn compress_stream(len) {
    table_init(8000);
    var nextcode = 128;
    var prefix = next_byte();
    for (var i = 1; i < len; i = i + 1) {
        var c = next_byte();
        var code = probe(prefix, c, nextcode);
        if (code != -1) {
            prefix = code;
        } else {
            output_code(prefix);
            if (nextcode < 6000) { nextcode = nextcode + 1; }
            prefix = c;
        }
    }
    output_code(prefix);
}

fn main(scale) {
    seed = 555;
    outsum = 0;
    outbits = 0;
    for (var round = 0; round < scale; round = round + 1) {
        compress_stream(6000);
    }
    sink(outsum);
    sink(outbits);
    return outsum;
}
"#;

pub(crate) fn compress_026() -> Benchmark {
    Benchmark {
        name: "026.compress",
        suite: SpecSuite::Int92,
        sources: vec![("hash", HASHMOD), ("compress_main", MAIN_026)],
        train_arg: 2,
        ref_arg: 15,
    }
}

pub(crate) fn compress_129() -> Benchmark {
    Benchmark {
        name: "129.compress",
        suite: SpecSuite::Int95,
        sources: vec![("hash", HASHMOD), ("compress_main", MAIN_129)],
        train_arg: 2,
        ref_arg: 14,
    }
}
