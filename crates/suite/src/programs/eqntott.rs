//! `023.eqntott` — truth-table generation dominated by sorting.
//!
//! Shape reproduced: SPEC's eqntott spends most of its time in `qsort`
//! with a comparison function pointer (`cmppt`); the indirect call in the
//! sort inner loop is exactly the kind of site HLO promotes by cloning
//! the sort on its comparator and letting constant propagation make the
//! call direct.

use crate::{Benchmark, SpecSuite};

const SORT: &str = r#"
// Generic quicksort over a global term array, comparator supplied as a
// function pointer.
global pt[4096];

fn swap(i, j) {
    var t = pt[i];
    pt[i] = pt[j];
    pt[j] = t;
}

fn qsort_terms(lo, hi, cmp) {
    if (lo >= hi) { return 0; }
    var pivot = pt[(lo + hi) / 2];
    var i = lo;
    var j = hi;
    while (i <= j) {
        while (cmp(pt[i], pivot) < 0) { i = i + 1; }
        while (cmp(pt[j], pivot) > 0) { j = j - 1; }
        if (i <= j) {
            swap(i, j);
            i = i + 1;
            j = j - 1;
        }
    }
    qsort_terms(lo, j, cmp);
    qsort_terms(i, hi, cmp);
    return 0;
}
"#;

const MAIN: &str = r#"
global seed;
global nterms;

static fn next_rand() {
    seed = (seed * 1103515245 + 12345) & 0x7fffffff;
    return seed;
}

// cmppt: order terms by their don't-care-masked value, as eqntott does.
fn cmppt(a, b) {
    var ma = a & 0xffff;
    var mb = b & 0xffff;
    if (ma < mb) { return -1; }
    if (ma > mb) { return 1; }
    if (a < b) { return -1; }
    if (a > b) { return 1; }
    return 0;
}

static fn gen_terms(n) {
    nterms = n;
    for (var i = 0; i < n; i = i + 1) { pt[i] = next_rand() & 0xfffff; }
}

// Count unique terms after sorting (the "truth table" rows).
static fn count_unique() {
    var u = 1;
    for (var i = 1; i < nterms; i = i + 1) {
        if (cmppt(pt[i], pt[i - 1]) != 0) { u = u + 1; }
    }
    return u;
}

fn main(scale) {
    seed = 12345;
    var total = 0;
    for (var round = 0; round < scale; round = round + 1) {
        gen_terms(600 + (round % 5) * 100);
        qsort_terms(0, nterms - 1, &cmppt);
        total = total + count_unique();
    }
    sink(total);
    return total;
}
"#;

pub(crate) fn eqntott() -> Benchmark {
    Benchmark {
        name: "023.eqntott",
        suite: SpecSuite::Int92,
        sources: vec![("qsort", SORT), ("eqntott_main", MAIN)],
        train_arg: 3,
        ref_arg: 25,
    }
}
