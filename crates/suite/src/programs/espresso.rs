//! `008.espresso` — two-level logic minimization over cube sets.
//!
//! Shape reproduced: bit-twiddling kernels called from tight loops, a
//! clear split between a generic "cube algebra" module and the driver,
//! plenty of small within- and cross-module call sites.

use crate::{Benchmark, SpecSuite};

const CUBE: &str = r#"
// Generic cube (bit-vector) algebra. Each cube is one word of 2-bit
// literal encodings, as in espresso's internal representation.
fn cube_and(a, b) { return a & b; }
fn cube_or(a, b) { return a | b; }
fn cube_without(a, b) { return a & ~b; }
fn cube_empty(a) { return a == 0; }

fn popcount(w) {
    var c = 0;
    while (w != 0) { c = c + (w & 1); w = w >> 1; }
    return c;
}

// Does cube a cover cube b? (every literal of a present in b)
fn covers(a, b) { return cube_and(a, b) == a; }

// Distance between cubes: number of conflicting 2-bit fields.
fn distance(a, b) {
    var x = a ^ b;
    var d = 0;
    for (var i = 0; i < 32; i = i + 2) {
        if (((x >> i) & 3) != 0) { d = d + 1; }
    }
    return d;
}

// Consensus: merge when distance is exactly one.
fn consensus(a, b) {
    if (distance(a, b) == 1) { return cube_or(a, b); }
    return 0;
}
"#;

const MAIN: &str = r#"
global cubes[1024];
global ncubes;
global seed;

static fn next_rand() {
    seed = (seed * 1103515245 + 12345) & 0x7fffffff;
    return seed;
}

static fn gen_cover(n) {
    ncubes = n;
    for (var i = 0; i < n; i = i + 1) {
        cubes[i] = next_rand() & 0xffff;
        if (cubes[i] == 0) { cubes[i] = 5; }
    }
}

static fn cover_cost() {
    var c = 0;
    for (var i = 0; i < ncubes; i = i + 1) { c = c + popcount(cubes[i]); }
    return c;
}

// Remove cubes covered by another cube (irredundant step).
static fn irredundant() {
    var removed = 0;
    for (var i = 0; i < ncubes; i = i + 1) {
        if (cubes[i] != 0) {
            for (var j = 0; j < ncubes; j = j + 1) {
                if (j != i && cubes[j] != 0 && covers(cubes[j], cubes[i]) && cubes[j] != cubes[i]) {
                    cubes[i] = 0;
                    removed = removed + 1;
                    break;
                }
            }
        }
    }
    return removed;
}

// Try pairwise consensus merges (reduce step).
static fn merge_pass() {
    var merged = 0;
    for (var i = 0; i < ncubes; i = i + 1) {
        if (cubes[i] != 0) {
            for (var j = i + 1; j < ncubes; j = j + 1) {
                if (cubes[j] != 0) {
                    var m = consensus(cubes[i], cubes[j]);
                    if (m != 0) {
                        cubes[i] = m;
                        cubes[j] = 0;
                        merged = merged + 1;
                    }
                }
            }
        }
    }
    return merged;
}

static fn compact() {
    var w = 0;
    for (var i = 0; i < ncubes; i = i + 1) {
        if (cubes[i] != 0) { cubes[w] = cubes[i]; w = w + 1; }
    }
    ncubes = w;
}

fn main(scale) {
    seed = 42;
    var total = 0;
    for (var round = 0; round < scale; round = round + 1) {
        gen_cover(60 + (round % 7) * 10);
        var changed = 1;
        var iters = 0;
        while (changed != 0 && iters < 6) {
            var a = merge_pass();
            var b = irredundant();
            compact();
            changed = a + b;
            iters = iters + 1;
        }
        total = total + cover_cost() + ncubes;
    }
    sink(total);
    return total;
}
"#;

pub(crate) fn espresso() -> Benchmark {
    Benchmark {
        name: "008.espresso",
        suite: SpecSuite::Int92,
        sources: vec![("cube", CUBE), ("espresso_main", MAIN)],
        train_arg: 2,
        ref_arg: 12,
    }
}
