//! `124.m88ksim` — a Motorola 88k CPU simulator.
//!
//! Shape reproduced: a fetch–decode–execute loop dispatching through a
//! table of function pointers (one executor per opcode). These indirect
//! sites are not directly inlinable; HLO clones the dispatcher on the
//! hot table entries, constant propagation makes the calls direct, and a
//! later pass inlines them — the benchmark where the paper credits
//! cloning with real wins.

use crate::{Benchmark, SpecSuite};

/// Executors and machine state (module `exec`).
const EXEC: &str = r#"
// Simulated machine: 16 registers, small memory.
global regs[16];
global smem[1024];
global spc;
global cycles88;

fn op_add(rd, rs, imm) { regs[rd] = regs[rs] + imm; cycles88 = cycles88 + 1; return 0; }
fn op_sub(rd, rs, imm) { regs[rd] = regs[rs] - imm; cycles88 = cycles88 + 1; return 0; }
fn op_and(rd, rs, imm) { regs[rd] = regs[rs] & imm; cycles88 = cycles88 + 1; return 0; }
fn op_shl(rd, rs, imm) { regs[rd] = (regs[rs] << (imm & 15)) & 0xffffffff; cycles88 = cycles88 + 2; return 0; }
fn op_ld(rd, rs, imm) { regs[rd] = smem[(regs[rs] + imm) & 1023]; cycles88 = cycles88 + 3; return 0; }
fn op_st(rd, rs, imm) { smem[(regs[rs] + imm) & 1023] = regs[rd]; cycles88 = cycles88 + 3; return 0; }
fn op_beq(rd, rs, imm) {
    cycles88 = cycles88 + 2;
    if (regs[rd] == regs[rs]) { spc = (spc + imm) & 2047; return 1; }
    return 0;
}
fn op_nop(rd, rs, imm) { cycles88 = cycles88 + 1; return 0; }
"#;

/// Fetch/decode/dispatch (module `dispatch`).
const DISPATCH: &str = r#"
// Instruction memory: packed words op|rd|rs|imm.
global imem[2048];
global optable[8];

fn dispatch_init() {
    optable[0] = &op_add;
    optable[1] = &op_sub;
    optable[2] = &op_and;
    optable[3] = &op_shl;
    optable[4] = &op_ld;
    optable[5] = &op_st;
    optable[6] = &op_beq;
    optable[7] = &op_nop;
}

fn decode_op(w) { return (w >> 24) & 7; }
fn decode_rd(w) { return (w >> 20) & 15; }
fn decode_rs(w) { return (w >> 16) & 15; }
fn decode_imm(w) { return w & 0xffff; }

// One simulated step: fetch, decode, execute. The common ALU ops take a
// decoded fast path (direct, inlinable calls); everything else goes
// through the handler table (indirect calls), as real simulators do.
fn step() {
    var w = imem[spc];
    spc = (spc + 1) & 2047;
    var op = decode_op(w);
    var rd = decode_rd(w);
    var rs = decode_rs(w);
    var imm = decode_imm(w);
    if (op == 0) { return op_add(rd, rs, imm); }
    if (op == 1) { return op_sub(rd, rs, imm); }
    var handler = optable[op];
    return handler(rd, rs, imm);
}
"#;

const MAIN: &str = r#"
global seed;

static fn next_rand() {
    seed = (seed * 1103515245 + 12345) & 0x7fffffff;
    return seed;
}

// Generate a test program skewed toward ALU ops (hot add/sub), the way
// m88ksim's test input exercises the common path.
static fn load_program() {
    for (var i = 0; i < 2048; i = i + 1) {
        var r = next_rand() % 100;
        var op = 7;
        if (r < 40) { op = 0; }
        else if (r < 55) { op = 1; }
        else if (r < 65) { op = 2; }
        else if (r < 72) { op = 3; }
        else if (r < 82) { op = 4; }
        else if (r < 90) { op = 5; }
        else if (r < 96) { op = 6; }
        var rd = next_rand() % 16;
        var rs = next_rand() % 16;
        var imm = next_rand() % 4096;
        imem[i] = (op << 24) | (rd << 20) | (rs << 16) | imm;
    }
}

fn main(scale) {
    seed = 880;
    dispatch_init();
    load_program();
    for (var i = 0; i < 16; i = i + 1) { regs[i] = i * 3; }
    for (var i = 0; i < 1024; i = i + 1) { smem[i] = i; }
    spc = 0;
    cycles88 = 0;
    var steps = scale * 20000;
    for (var s = 0; s < steps; s = s + 1) { step(); }
    var h = cycles88;
    for (var i = 0; i < 16; i = i + 1) { h = (h * 31 + regs[i]) & 0xffffffff; }
    sink(h);
    return h;
}
"#;

pub(crate) fn m88ksim() -> Benchmark {
    Benchmark {
        name: "124.m88ksim",
        suite: SpecSuite::Int95,
        sources: vec![("exec", EXEC), ("dispatch", DISPATCH), ("m88k_main", MAIN)],
        train_arg: 1,
        ref_arg: 8,
    }
}
