//! `085.gcc` and `126.gcc` — a toy optimizing compiler.
//!
//! Shape reproduced: gcc is the paper's "many small routines, wide flat
//! call graph, thousands of cross-module sites" program. The toy version
//! lexes a pseudo-random source stream, parses to a postfix IR, runs
//! folding/strength-reduction/peephole passes and a toy register
//! allocator, spread across several modules with many little helpers.
//! `126.gcc` adds a scheduling module and a second pass pipeline, like
//! the bigger SPEC95 gcc.

use crate::{Benchmark, SpecSuite};

/// Lexer (module `lex`).
const LEX: &str = r#"
global src_seed;
global token_kind;
global token_val;

fn lex_init(seed) { src_seed = seed; }

static fn lex_rand() {
    src_seed = (src_seed * 1103515245 + 12345) & 0x7fffffff;
    return src_seed;
}

fn is_binop(k) { return k >= 2 && k <= 6; }

// kinds: 0 eof-ish, 1 number, 2 plus, 3 minus, 4 star, 5 shift, 6 and.
fn next_token() {
    var r = lex_rand() % 16;
    if (r < 8) {
        token_kind = 1;
        token_val = lex_rand() % 256;
    } else if (r < 14) {
        token_kind = 2 + (r - 8) % 5;
        token_val = 0;
    } else {
        token_kind = 0;
        token_val = 0;
    }
    return token_kind;
}
"#;

/// Parser to postfix IR (module `parse`).
const PARSE: &str = r#"
// IR: pairs (op, val); op 0 = push const, 1..5 = binary ops.
global ir_op[2048];
global ir_val[2048];
global ir_len;

fn ir_emit(op, val) {
    if (ir_len < 2048) {
        ir_op[ir_len] = op;
        ir_val[ir_len] = val;
        ir_len = ir_len + 1;
    }
    return ir_len;
}

// Parse `n` expression statements from the token stream into postfix.
fn parse_stream(n) {
    ir_len = 0;
    var produced = 0;
    var pending = 0;
    while (produced < n) {
        var k = next_token();
        if (k == 1) {
            ir_emit(0, token_val);
            pending = pending + 1;
        } else if (is_binop(k)) {
            if (pending >= 2) {
                ir_emit(k - 1, 0);
                pending = pending - 1;
                produced = produced + 1;
            }
        } else {
            // eof token: flush by synthesizing a constant
            ir_emit(0, 1);
            pending = pending + 1;
        }
    }
    return ir_len;
}
"#;

/// Optimizer passes (module `fold`).
const FOLD: &str = r#"
static fn apply_binop(op, a, b) {
    if (op == 1) { return a + b; }
    if (op == 2) { return a - b; }
    if (op == 3) { return a * b; }
    if (op == 4) { return (a << (b & 7)) & 0xffffff; }
    return a & b;
}

// Fold const-const operations by symbolic stack execution.
fn fold_constants() {
    var stack[64];
    var sp = 0;
    var folded = 0;
    var w = 0;
    for (var i = 0; i < ir_len; i = i + 1) {
        if (ir_op[i] == 0) {
            if (sp < 64) { stack[sp] = ir_val[i]; sp = sp + 1; }
            ir_op[w] = ir_op[i];
            ir_val[w] = ir_val[i];
            w = w + 1;
        } else {
            if (sp >= 2) {
                var b = stack[sp - 1];
                var a = stack[sp - 2];
                var v = apply_binop(ir_op[i], a, b);
                sp = sp - 1;
                stack[sp - 1] = v;
                // replace the two pushes + op with one push
                w = w - 2;
                ir_op[w] = 0;
                ir_val[w] = v;
                w = w + 1;
                folded = folded + 1;
            } else {
                ir_op[w] = ir_op[i];
                ir_val[w] = ir_val[i];
                w = w + 1;
                sp = 0;
            }
        }
    }
    ir_len = w;
    return folded;
}

// Strength reduction: x * 2^k => shift.
fn strength_reduce() {
    var changed = 0;
    for (var i = 0; i < ir_len; i = i + 1) {
        if (ir_op[i] == 3 && i > 0 && ir_op[i - 1] == 0) {
            var v = ir_val[i - 1];
            if (v == 2 || v == 4 || v == 8) {
                ir_op[i] = 4;
                if (v == 2) { ir_val[i - 1] = 1; }
                if (v == 4) { ir_val[i - 1] = 2; }
                if (v == 8) { ir_val[i - 1] = 3; }
                changed = changed + 1;
            }
        }
    }
    return changed;
}

// Peephole: push 0; add  => nothing.
fn peephole() {
    var w = 0;
    var removed = 0;
    for (var i = 0; i < ir_len; i = i + 1) {
        var skip = 0;
        if (i + 1 < ir_len && ir_op[i] == 0 && ir_val[i] == 0 && ir_op[i + 1] == 1) {
            skip = 1;
        }
        if (skip == 0) {
            ir_op[w] = ir_op[i];
            ir_val[w] = ir_val[i];
            w = w + 1;
        } else {
            removed = removed + 1;
        }
    }
    ir_len = w;
    return removed;
}
"#;

/// Toy register allocator + emitter (module `regalloc`).
const REGALLOC: &str = r#"
static fn spill_cost(depth) { return depth * depth; }

// Walk the postfix IR tracking stack depth against 8 "registers".
fn allocate() {
    var depth = 0;
    var spills = 0;
    for (var i = 0; i < ir_len; i = i + 1) {
        if (ir_op[i] == 0) {
            depth = depth + 1;
            if (depth > 8) { spills = spills + spill_cost(depth - 8); }
        } else if (depth >= 2) {
            depth = depth - 1;
        }
    }
    return spills;
}

fn emit_checksum() {
    var h = 0;
    for (var i = 0; i < ir_len; i = i + 1) {
        h = (h * 33 + ir_op[i] * 7 + ir_val[i]) & 0xffffffff;
    }
    return h;
}
"#;

/// Instruction scheduler, only in 126.gcc (module `sched`).
const SCHED: &str = r#"
static fn latency_of(op) {
    if (op == 3) { return 3; }
    if (op == 4) { return 2; }
    return 1;
}

// Greedy list scheduling over the linear IR: accumulate modeled cycles.
fn schedule() {
    var cycles = 0;
    var last_mul = -10;
    for (var i = 0; i < ir_len; i = i + 1) {
        var l = latency_of(ir_op[i]);
        if (ir_op[i] == 3 && i - last_mul < 3) { l = l + 1; }
        if (ir_op[i] == 3) { last_mul = i; }
        cycles = cycles + l;
    }
    return cycles;
}
"#;

const MAIN_085: &str = r#"
fn compile_unit(seed, stmts) {
    lex_init(seed);
    parse_stream(stmts);
    var work = 1;
    var rounds = 0;
    while (work != 0 && rounds < 4) {
        var a = fold_constants();
        var b = strength_reduce();
        var c = peephole();
        work = a + b + c;
        rounds = rounds + 1;
    }
    var spills = allocate();
    return emit_checksum() + spills;
}

fn main(scale) {
    var h = 0;
    for (var unit = 0; unit < scale; unit = unit + 1) {
        h = (h + compile_unit(77 + unit, 400)) & 0xffffffff;
    }
    sink(h);
    return h;
}
"#;

const MAIN_126: &str = r#"
fn compile_unit(seed, stmts) {
    lex_init(seed);
    parse_stream(stmts);
    var work = 1;
    var rounds = 0;
    while (work != 0 && rounds < 5) {
        var a = fold_constants();
        var b = strength_reduce();
        var c = peephole();
        work = a + b + c;
        rounds = rounds + 1;
    }
    var spills = allocate();
    var cyc = schedule();
    return emit_checksum() + spills + cyc;
}

fn main(scale) {
    var h = 0;
    for (var unit = 0; unit < scale; unit = unit + 1) {
        h = (h + compile_unit(1009 + unit * 3, 550)) & 0xffffffff;
    }
    sink(h);
    return h;
}
"#;

pub(crate) fn gcc_085() -> Benchmark {
    Benchmark {
        name: "085.gcc",
        suite: SpecSuite::Int92,
        sources: vec![
            ("lex", LEX),
            ("parse", PARSE),
            ("fold", FOLD),
            ("regalloc", REGALLOC),
            ("gcc_main", MAIN_085),
        ],
        train_arg: 3,
        ref_arg: 20,
    }
}

pub(crate) fn gcc_126() -> Benchmark {
    Benchmark {
        name: "126.gcc",
        suite: SpecSuite::Int95,
        sources: vec![
            ("lex", LEX),
            ("parse", PARSE),
            ("fold", FOLD),
            ("regalloc", REGALLOC),
            ("sched", SCHED),
            ("gcc_main", MAIN_126),
        ],
        train_arg: 3,
        ref_arg: 18,
    }
}
