//! `132.ijpeg` — integer image compression kernels.
//!
//! Shape reproduced: deep loop nests over 8×8 blocks (forward DCT
//! approximation, quantization, zig-zag, entropy estimate) with small
//! per-sample helpers; some floating-point in the quality metric (via
//! the float intrinsics), which interacts with the `strict_fp`
//! restriction machinery.

use crate::{Benchmark, SpecSuite};

const DCT: &str = r#"
// 8x8 block workspace.
global block[64];
global coef[64];

fn clamp255(v) {
    if (v < 0) { return 0; }
    if (v > 255) { return 255; }
    return v;
}

static fn rot(a, b) { return a + b - ((a * b) >> 8); }

// Butterfly-ish integer transform along one axis.
fn dct_rows() {
    for (var r = 0; r < 8; r = r + 1) {
        var base = r * 8;
        for (var c = 0; c < 4; c = c + 1) {
            var s = block[base + c] + block[base + 7 - c];
            var d = block[base + c] - block[base + 7 - c];
            coef[base + c] = rot(s, c);
            coef[base + 4 + c] = rot(d, c + 1);
        }
    }
}

fn dct_cols() {
    for (var c = 0; c < 8; c = c + 1) {
        for (var r = 0; r < 4; r = r + 1) {
            var s = coef[r * 8 + c] + coef[(7 - r) * 8 + c];
            var d = coef[r * 8 + c] - coef[(7 - r) * 8 + c];
            coef[r * 8 + c] = rot(s, r);
            coef[(4 + r) * 8 + c] = rot(d, r + 1);
        }
    }
}

fn quantize(q) {
    var nz = 0;
    for (var i = 0; i < 64; i = i + 1) {
        var denom = q + (i >> 3);
        coef[i] = coef[i] / denom;
        if (coef[i] != 0) { nz = nz + 1; }
    }
    return nz;
}
"#;

const MAIN: &str = r#"
global seed;
global zigzag[64] = {
     0,  1,  8, 16,  9,  2,  3, 10,
    17, 24, 32, 25, 18, 11,  4,  5,
    12, 19, 26, 33, 40, 48, 41, 34,
    27, 20, 13,  6,  7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36,
    29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46,
    53, 60, 61, 54, 47, 55, 62, 63
};

static fn next_rand() {
    seed = (seed * 1103515245 + 12345) & 0x7fffffff;
    return seed;
}

static fn fill_block(bx) {
    for (var i = 0; i < 64; i = i + 1) {
        block[i] = clamp255((next_rand() % 256 + bx * 3) % 256) - 128;
    }
}

// Run-length/entropy estimate over the zig-zag order.
static fn entropy_estimate() {
    var run = 0;
    var bits = 0;
    for (var i = 0; i < 64; i = i + 1) {
        var v = coef[zigzag[i]];
        if (v == 0) {
            run = run + 1;
        } else {
            var mag = v;
            if (mag < 0) { mag = -mag; }
            var sz = 0;
            while (mag != 0) { sz = sz + 1; mag = mag >> 1; }
            bits = bits + 4 + sz + (run >> 2);
            run = 0;
        }
    }
    return bits;
}

// Quality metric in floating point (strict): mean squared coefficient.
#[strict_fp]
static fn quality_metric() {
    var acc = __itof(0);
    for (var i = 0; i < 64; i = i + 1) {
        var f = __itof(coef[i]);
        acc = __fadd(acc, __fmul(f, f));
    }
    return __ftoi(__fdiv(acc, __itof(64)));
}

fn main(scale) {
    seed = 4096;
    var total_bits = 0;
    var total_q = 0;
    var blocks = scale * 60;
    for (var b = 0; b < blocks; b = b + 1) {
        fill_block(b);
        dct_rows();
        dct_cols();
        var nz = quantize(4 + (b % 3));
        total_bits = total_bits + entropy_estimate() + nz;
        if (b % 16 == 0) { total_q = total_q + quality_metric(); }
    }
    sink(total_bits);
    sink(total_q);
    return (total_bits + total_q) & 0xffffffff;
}
"#;

pub(crate) fn ijpeg() -> Benchmark {
    Benchmark {
        name: "132.ijpeg",
        suite: SpecSuite::Int95,
        sources: vec![("dct", DCT), ("ijpeg_main", MAIN)],
        train_arg: 2,
        ref_arg: 16,
    }
}
