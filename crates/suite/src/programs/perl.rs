//! `134.perl` — a bytecode interpreter with string-ish workloads.
//!
//! Shape reproduced: perl's inner loop dispatches opcodes to many small
//! helper routines; hash lookups and a recursive pattern matcher round
//! out the mix. The dispatcher is an if-chain over direct calls (hot,
//! inlinable) with a shared stack module (cross-module sites).

use crate::{Benchmark, SpecSuite};

/// Value stack (module `stack`).
const STACK: &str = r#"
global stk[256];
global stk_top;

fn push(v) { if (stk_top < 256) { stk[stk_top] = v; stk_top = stk_top + 1; } return 0; }
fn pop() {
    if (stk_top > 0) { stk_top = stk_top - 1; return stk[stk_top]; }
    return 0;
}
fn stack_reset() { stk_top = 0; }
"#;

/// Hash "symbol table" (module `hash`).
const HASH: &str = r#"
global hkeys[512];
global hvals[512];

fn hash_init() {
    for (var i = 0; i < 512; i = i + 1) { hkeys[i] = -1; }
}

fn hash_slot(k) { return ((k * 2654435761) & 0x7fffffff) % 512; }

fn hash_set(k, v) {
    var h = hash_slot(k);
    var probes = 0;
    while (hkeys[h] != -1 && hkeys[h] != k && probes < 512) {
        h = (h + 1) % 512;
        probes = probes + 1;
    }
    hkeys[h] = k;
    hvals[h] = v;
    return h;
}

fn hash_get(k) {
    var h = hash_slot(k);
    var probes = 0;
    while (probes < 512) {
        if (hkeys[h] == k) { return hvals[h]; }
        if (hkeys[h] == -1) { return 0; }
        h = (h + 1) % 512;
        probes = probes + 1;
    }
    return 0;
}
"#;

const MAIN: &str = r#"
// Bytecode: op in high bits, operand low. ops: 0 pushc, 1 add, 2 mul,
// 3 store, 4 load, 5 jnz (relative back), 6 match, 7 dup.
global code[512];
global code_len;
global seed;

static fn next_rand() {
    seed = (seed * 1103515245 + 12345) & 0x7fffffff;
    return seed;
}

static fn op_pushc(v) { push(v); return 0; }
static fn op_add() { var b = pop(); var a = pop(); push(a + b); return 0; }
static fn op_mul() { var b = pop(); var a = pop(); push((a * b) & 0xffffff); return 0; }
static fn op_store(k) { hash_set(k, pop()); return 0; }
static fn op_load(k) { push(hash_get(k)); return 0; }
static fn op_dup() { var v = pop(); push(v); push(v); return 0; }

// Recursive glob-style matcher over digit strings encoded in ints
// (pattern digit 9 = wildcard "any run").
static fn match_rec(pat, text) {
    if (pat == 0) { return text == 0; }
    var pd = pat % 10;
    if (pd == 9) {
        if (match_rec(pat / 10, text)) { return 1; }
        if (text != 0) { return match_rec(pat, text / 10); }
        return 0;
    }
    if (text == 0) { return 0; }
    if (text % 10 == pd) { return match_rec(pat / 10, text / 10); }
    return 0;
}

static fn op_match() {
    var t = pop();
    var p = pop();
    push(match_rec(p, t));
    return 0;
}

static fn gen_code(n) {
    code_len = n;
    // seed the stack-feeding prefix
    for (var i = 0; i < 4; i = i + 1) { code[i] = (0 << 8) | (i + 2); }
    for (var i = 4; i < n; i = i + 1) {
        var r = next_rand() % 100;
        var op = 0;
        if (r < 30) { op = 0; }
        else if (r < 55) { op = 1; }
        else if (r < 65) { op = 2; }
        else if (r < 75) { op = 3; }
        else if (r < 85) { op = 4; }
        else if (r < 90) { op = 7; }
        else { op = 6; }
        code[i] = (op << 8) | (next_rand() % 97);
    }
}

static fn interp() {
    stack_reset();
    hash_init();
    var pc = 0;
    var executed = 0;
    while (pc < code_len && executed < 4000) {
        var w = code[pc];
        var op = w >> 8;
        var arg = w & 255;
        if (op == 0) { op_pushc(arg); }
        else if (op == 1) { op_add(); }
        else if (op == 2) { op_mul(); }
        else if (op == 3) { op_store(arg); }
        else if (op == 4) { op_load(arg); }
        else if (op == 6) { push(1209); push(1000 + arg); op_match(); }
        else if (op == 7) { op_dup(); }
        pc = pc + 1;
        executed = executed + 1;
    }
    var h = 0;
    while (stk_top > 0) { h = (h * 17 + pop()) & 0xffffffff; }
    return h;
}

fn main(scale) {
    seed = 134;
    var total = 0;
    for (var round = 0; round < scale; round = round + 1) {
        gen_code(400);
        total = (total + interp()) & 0xffffffff;
    }
    sink(total);
    return total;
}
"#;

pub(crate) fn perl() -> Benchmark {
    Benchmark {
        name: "134.perl",
        suite: SpecSuite::Int95,
        sources: vec![("stack", STACK), ("hash", HASH), ("perl_main", MAIN)],
        train_arg: 4,
        ref_arg: 35,
    }
}
