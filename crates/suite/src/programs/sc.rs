//! `072.sc` — spreadsheet recalculation with a stub curses library.
//!
//! Shape reproduced: the paper singles out 072.sc because it links "a
//! special curses library in which all curses calls do nothing"; HLO's
//! interprocedural side-effect analysis deletes those calls before
//! inlining. The `curses` module here is exactly that: public do-nothing
//! routines called from the recalculation loop. The evaluator itself is a
//! small formula interpreter over a cell grid.

use crate::{Benchmark, SpecSuite};

/// The stub display library (module `curses`).
const CURSES: &str = r#"
// A do-nothing curses: pure functions whose results are ignored by the
// spreadsheet. Whole-program analysis proves them side-effect-free and
// deletes the calls.
fn scr_move(r, c) { return r * 80 + c; }
fn scr_addch(ch) { return ch; }
fn scr_refresh() { return 0; }
fn scr_clrtoeol() { return 0; }
fn scr_standout(on) { return on; }
"#;

/// The spreadsheet engine (module `sheet`).
const SHEET: &str = r#"
// 24x16 grid. kind: 0 empty, 1 literal, 2 sum-of-range, 3 product pair,
// 4 relative reference.
global cell_kind[512];
global cell_a[512];
global cell_b[512];
global cell_val[512];

fn cell_index(r, c) { return r * 16 + c; }

fn eval_cell(idx) {
    var k = cell_kind[idx];
    if (k == 0) { return 0; }
    if (k == 1) { return cell_a[idx]; }
    if (k == 2) {
        // sum of the previous cell_a[idx] cells in the same column
        var col = idx % 16;
        var row = idx / 16;
        var s = 0;
        for (var i = 1; i <= cell_a[idx]; i = i + 1) {
            if (row - i >= 0) { s = s + cell_val[cell_index(row - i, col)]; }
        }
        return s;
    }
    if (k == 3) { return cell_val[cell_a[idx]] * cell_val[cell_b[idx]] / 100; }
    if (k == 4) {
        var t = cell_a[idx];
        if (t >= 0 && t < 384) { return cell_val[t] + cell_b[idx]; }
        return cell_b[idx];
    }
    return 0;
}

fn recalc_sheet() {
    var changed = 0;
    for (var r = 0; r < 24; r = r + 1) {
        for (var c = 0; c < 16; c = c + 1) {
            var idx = cell_index(r, c);
            var v = eval_cell(idx);
            if (v != cell_val[idx]) { changed = changed + 1; }
            cell_val[idx] = v;
            // Redraw through the stub library (results unused).
            scr_move(r, c);
            scr_addch(v & 127);
        }
        scr_clrtoeol();
    }
    scr_refresh();
    return changed;
}
"#;

const MAIN: &str = r#"
global seed;

static fn next_rand() {
    seed = (seed * 1103515245 + 12345) & 0x7fffffff;
    return seed;
}

static fn load_sheet() {
    for (var i = 0; i < 384; i = i + 1) {
        var pick = next_rand() % 10;
        if (pick < 4) {
            cell_kind[i] = 1;
            cell_a[i] = next_rand() % 1000;
        } else if (pick < 7) {
            cell_kind[i] = 2;
            cell_a[i] = 1 + next_rand() % 4;
        } else if (pick < 8) {
            cell_kind[i] = 3;
            cell_a[i] = next_rand() % 384;
            cell_b[i] = next_rand() % 384;
        } else if (pick < 9) {
            cell_kind[i] = 4;
            cell_a[i] = i - 16;
            cell_b[i] = next_rand() % 50;
        } else {
            cell_kind[i] = 0;
        }
        cell_val[i] = 0;
    }
}

fn main(scale) {
    seed = 31415;
    var total = 0;
    for (var round = 0; round < scale; round = round + 1) {
        load_sheet();
        // Iterate recalculation to a (bounded) fixpoint, as sc does after
        // an edit burst.
        for (var it = 0; it < 8; it = it + 1) {
            var ch = recalc_sheet();
            total = total + ch;
            if (ch == 0) { break; }
        }
        total = total + cell_val[383];
    }
    sink(total);
    return total & 0xffffffff;
}
"#;

pub(crate) fn sc() -> Benchmark {
    Benchmark {
        name: "072.sc",
        suite: SpecSuite::Int92,
        sources: vec![("curses", CURSES), ("sheet", SHEET), ("sc_main", MAIN)],
        train_arg: 3,
        ref_arg: 20,
    }
}
