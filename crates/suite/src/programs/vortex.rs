//! `147.vortex` — an object-oriented database.
//!
//! Shape reproduced: vortex manipulates typed records through per-type
//! method tables. Inserts, lookups and traversals dispatch virtually
//! (indirect sites); the schema module, store module and driver give a
//! deep cross-module call structure.

use crate::{Benchmark, SpecSuite};

/// Record store (module `store`).
const STORE: &str = r#"
// Records: parallel arrays. type 0 = point, 1 = span, 2 = weighted.
global rec_type[2048];
global rec_a[2048];
global rec_b[2048];
global nrecs;

fn store_reset() { nrecs = 0; }

fn store_insert(t, a, b) {
    if (nrecs < 2048) {
        rec_type[nrecs] = t;
        rec_a[nrecs] = a;
        rec_b[nrecs] = b;
        nrecs = nrecs + 1;
        return nrecs - 1;
    }
    return -1;
}
"#;

/// Schema: per-type methods + dispatch tables (module `schema`).
const SCHEMA: &str = r#"
// "Methods": measure(rec) and validate(rec) per type.
fn point_measure(i) { return rec_a[i] * rec_a[i] + rec_b[i] * rec_b[i]; }
fn span_measure(i) {
    var d = rec_b[i] - rec_a[i];
    if (d < 0) { d = -d; }
    return d;
}
fn weighted_measure(i) { return rec_a[i] * 3 + rec_b[i]; }

fn point_validate(i) { return rec_a[i] >= -1000 && rec_a[i] <= 1000; }
fn span_validate(i) { return rec_b[i] >= rec_a[i] - 2000; }
fn weighted_validate(i) { return rec_b[i] >= 0; }

global measure_tab[3];
global validate_tab[3];

fn schema_init() {
    measure_tab[0] = &point_measure;
    measure_tab[1] = &span_measure;
    measure_tab[2] = &weighted_measure;
    validate_tab[0] = &point_validate;
    validate_tab[1] = &span_validate;
    validate_tab[2] = &weighted_validate;
}

// Virtual dispatch helpers; the function-pointer parameter is the
// cloner's chance to devirtualize per call site.
fn invoke1(method, i) { return method(i); }

fn measure_rec(i) { return invoke1(measure_tab[rec_type[i]], i); }
fn validate_rec(i) { return invoke1(validate_tab[rec_type[i]], i); }
"#;

const MAIN: &str = r#"
global seed;

static fn next_rand() {
    seed = (seed * 1103515245 + 12345) & 0x7fffffff;
    return seed;
}

static fn populate(n) {
    store_reset();
    for (var i = 0; i < n; i = i + 1) {
        var t = 0;
        var r = next_rand() % 10;
        if (r >= 6) { t = 1; }
        if (r >= 9) { t = 2; }
        store_insert(t, next_rand() % 2000 - 1000, next_rand() % 2000 - 1000);
    }
}

// Traversal 1: sum of measures, dispatching virtually per record.
static fn total_measure() {
    var s = 0;
    for (var i = 0; i < nrecs; i = i + 1) { s = s + measure_rec(i); }
    return s;
}

// Traversal 2: count invalid records (cold path).
static fn count_invalid() {
    var bad = 0;
    for (var i = 0; i < nrecs; i = i + 1) {
        if (validate_rec(i) == 0) { bad = bad + 1; }
    }
    return bad;
}

// Query: nearest record by measure to a probe value, monomorphic on
// points (a hot, devirtualizable loop).
static fn nearest_point(probe) {
    var best = -1;
    var bestd = 0x7fffffff;
    for (var i = 0; i < nrecs; i = i + 1) {
        if (rec_type[i] == 0) {
            var m = invoke1(&point_measure, i);
            var d = m - probe;
            if (d < 0) { d = -d; }
            if (d < bestd) { bestd = d; best = i; }
        }
    }
    return best;
}

fn main(scale) {
    seed = 147;
    schema_init();
    var h = 0;
    for (var round = 0; round < scale; round = round + 1) {
        populate(700);
        h = (h + total_measure()) & 0xffffffff;
        h = (h + count_invalid() * 7) & 0xffffffff;
        for (var q = 0; q < 10; q = q + 1) {
            h = (h * 31 + nearest_point(q * 991)) & 0xffffffff;
        }
    }
    sink(h);
    return h;
}
"#;

pub(crate) fn vortex() -> Benchmark {
    Benchmark {
        name: "147.vortex",
        suite: SpecSuite::Int95,
        sources: vec![("store", STORE), ("schema", SCHEMA), ("vortex_main", MAIN)],
        train_arg: 2,
        ref_arg: 14,
    }
}
