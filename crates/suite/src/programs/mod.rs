//! The embedded MinC sources, one submodule per benchmark family.

mod compress;
mod eqntott;
mod espresso;
mod gcc;
mod go;
mod ijpeg;
mod li;
mod m88ksim;
mod perl;
mod sc;
mod vortex;

pub(crate) use compress::{compress_026, compress_129};
pub(crate) use eqntott::eqntott;
pub(crate) use espresso::espresso;
pub(crate) use gcc::{gcc_085, gcc_126};
pub(crate) use go::go;
pub(crate) use ijpeg::ijpeg;
pub(crate) use li::{li_022, li_130};
pub(crate) use m88ksim::m88ksim;
pub(crate) use perl::perl;
pub(crate) use sc::sc;
pub(crate) use vortex::vortex;
