//! `099.go` — board evaluation for the game of Go.
//!
//! Shape reproduced: nested loops over a 19×19 board calling small
//! scoring helpers, plus recursive flood fill for liberty counting (the
//! recursive sites in Figure 5), all in one big module with a helper
//! module for board primitives — SPEC's go is a mostly-monolithic C
//! program.

use crate::{Benchmark, SpecSuite};

const BOARD: &str = r#"
// 19x19 board: 0 empty, 1 black, 2 white.
global board[361];
global mark[361];

fn at(r, c) { return board[r * 19 + c]; }
fn put(r, c, v) { board[r * 19 + c] = v; }
fn on_board(r, c) { return r >= 0 && r < 19 && c >= 0 && c < 19; }
fn opponent(color) { return 3 - color; }

fn clear_marks() {
    for (var i = 0; i < 361; i = i + 1) { mark[i] = 0; }
}
"#;

const MAIN: &str = r#"
global seed;

static fn next_rand() {
    seed = (seed * 1103515245 + 12345) & 0x7fffffff;
    return seed;
}

static fn random_board(stones) {
    for (var i = 0; i < 361; i = i + 1) { board[i] = 0; }
    for (var s = 0; s < stones; s = s + 1) {
        var pos = next_rand() % 361;
        board[pos] = 1 + next_rand() % 2;
    }
}

// Recursive flood fill: count liberties of the group at (r, c).
static fn liberties(r, c, color) {
    if (on_board(r, c) == 0) { return 0; }
    var i = r * 19 + c;
    if (mark[i] != 0) { return 0; }
    mark[i] = 1;
    var v = at(r, c);
    if (v == 0) { return 1; }
    if (v != color) { return 0; }
    return liberties(r - 1, c, color) + liberties(r + 1, c, color)
         + liberties(r, c - 1, color) + liberties(r, c + 1, color);
}

static fn group_strength(r, c) {
    var color = at(r, c);
    if (color == 0) { return 0; }
    clear_marks();
    var libs = liberties(r, c, color);
    if (libs == 0) { return -50; }
    if (libs == 1) { return -10; }
    if (libs < 4) { return libs * 2; }
    return 8 + libs;
}

// Pattern score: count friendly neighbours and diagonal support.
static fn local_shape(r, c, color) {
    var s = 0;
    for (var dr = -1; dr <= 1; dr = dr + 1) {
        for (var dc = -1; dc <= 1; dc = dc + 1) {
            if (dr != 0 || dc != 0) {
                if (on_board(r + dr, c + dc)) {
                    var v = at(r + dr, c + dc);
                    if (v == color) { s = s + 2; }
                    if (v == opponent(color)) { s = s - 1; }
                }
            }
        }
    }
    return s;
}

static fn evaluate(color) {
    var score = 0;
    for (var r = 0; r < 19; r = r + 1) {
        for (var c = 0; c < 19; c = c + 1) {
            var v = at(r, c);
            if (v == color) {
                score = score + group_strength(r, c) + local_shape(r, c, color);
            } else if (v != 0) {
                score = score - group_strength(r, c);
            }
        }
    }
    return score;
}

fn main(scale) {
    seed = 1988;
    var total = 0;
    for (var game = 0; game < scale; game = game + 1) {
        random_board(120 + (game % 5) * 20);
        total = total + evaluate(1) - evaluate(2);
        // a few "moves": place and re-evaluate locally
        for (var m = 0; m < 6; m = m + 1) {
            var pos = next_rand() % 361;
            board[pos] = 1 + (m & 1);
            total = total + group_strength(pos / 19, pos % 19);
        }
    }
    sink(total);
    return total;
}
"#;

pub(crate) fn go() -> Benchmark {
    Benchmark {
        name: "099.go",
        suite: SpecSuite::Int95,
        sources: vec![("board", BOARD), ("go_main", MAIN)],
        train_arg: 2,
        ref_arg: 12,
    }
}
