//! `022.li` and `130.li` — XLISP-style interpreters.
//!
//! Shape reproduced: the paper's best cloning target. A recursive
//! evaluator walks cons cells allocated from a heap module; operator
//! dispatch goes through a small helper that cloning can specialize per
//! opcode, and evaluation recurses deeply. `130.li` interprets a larger
//! program mix over the same engine, like the SPEC95 re-release.

use crate::{Benchmark, SpecSuite};

/// Cons-cell heap (module `cell`).
const CELL: &str = r#"
// Cons heap: parallel arrays. tag 0 = number, tag 1 = cons.
global heap_car[20000];
global heap_cdr[20000];
global heap_tag[20000];
global heap_next;

fn heap_reset() { heap_next = 1; }   // cell 0 is nil

fn make_num(v) {
    var c = heap_next;
    heap_next = heap_next + 1;
    heap_tag[c] = 0;
    heap_car[c] = v;
    heap_cdr[c] = 0;
    return c;
}

fn cons(a, d) {
    var c = heap_next;
    heap_next = heap_next + 1;
    heap_tag[c] = 1;
    heap_car[c] = a;
    heap_cdr[c] = d;
    return c;
}

fn car(c) { return heap_car[c]; }
fn cdr(c) { return heap_cdr[c]; }
fn is_num(c) { return heap_tag[c] == 0; }
fn num_val(c) { return heap_car[c]; }
"#;

/// The evaluator (module `eval`).
const EVAL: &str = r#"
// Opcodes: 1 add, 2 sub, 3 mul, 4 lt, 5 if.
static fn op_add(a, b) { return a + b; }
static fn op_sub(a, b) { return a - b; }
static fn op_mul(a, b) { return a * b; }
static fn op_lt(a, b) { return a < b; }

// The dispatch helper the paper's cloner loves: callers frequently pass
// a constant opcode.
fn apply_op(op, a, b) {
    if (op == 1) { return op_add(a, b); }
    if (op == 2) { return op_sub(a, b); }
    if (op == 3) { return op_mul(a, b); }
    if (op == 4) { return op_lt(a, b); }
    return 0;
}

// expr := num-cell | (cons opnum (cons e1 (cons e2 nil)))
//       | (cons 5 (cons cond (cons then (cons else nil))))
fn eval(e) {
    if (is_num(e)) { return num_val(e); }
    var op = num_val(car(e));
    var rest = cdr(e);
    if (op == 5) {
        var c = eval(car(rest));
        if (c != 0) { return eval(car(cdr(rest))); }
        return eval(car(cdr(cdr(rest))));
    }
    var a = eval(car(rest));
    var b = eval(car(cdr(rest)));
    return apply_op(op, a, b);
}
"#;

const MAIN_022: &str = r#"
global seed;

static fn next_rand() {
    seed = (seed * 1103515245 + 12345) & 0x7fffffff;
    return seed;
}

// Build a random expression tree of the given depth.
static fn build(depth) {
    if (depth == 0) { return make_num(next_rand() % 17 - 8); }
    var pick = next_rand() % 10;
    if (pick < 2) {
        // (if (lt a b) then else)
        var c = cons(make_num(4), cons(build(depth - 1), cons(build(depth - 1), 0)));
        return cons(make_num(5), cons(c, cons(build(depth - 1), cons(build(depth - 1), 0))));
    }
    var op = 1 + next_rand() % 3;
    return cons(make_num(op), cons(build(depth - 1), cons(build(depth - 1), 0)));
}

fn main(scale) {
    seed = 7;
    var acc = 0;
    for (var round = 0; round < scale; round = round + 1) {
        heap_reset();
        var e = build(6);
        for (var rep = 0; rep < 40; rep = rep + 1) {
            acc = acc + eval(e);
        }
    }
    sink(acc);
    return acc & 0xffffffff;
}
"#;

const MAIN_130: &str = r#"
global seed;

static fn next_rand() {
    seed = (seed * 69069 + 1) & 0x7fffffff;
    return seed;
}

static fn build(depth, bias) {
    if (depth == 0) { return make_num(next_rand() % 23 - 11); }
    var pick = next_rand() % 12;
    if (pick < bias) {
        var c = cons(make_num(4), cons(build(depth - 1, bias), cons(build(depth - 1, bias), 0)));
        return cons(make_num(5), cons(c, cons(build(depth - 1, bias), cons(build(depth - 1, bias), 0))));
    }
    var op = 1 + next_rand() % 3;
    return cons(make_num(op), cons(build(depth - 1, bias), cons(build(depth - 1, bias), 0)));
}

// A hand-built hot expression: mostly adds — profile-guided builds
// specialize apply_op for opcode 1.
static fn hot_expr(n) {
    var e = make_num(1);
    for (var i = 0; i < n; i = i + 1) {
        e = cons(make_num(1), cons(e, cons(make_num(i), 0)));
    }
    return e;
}

fn main(scale) {
    seed = 99;
    var acc = 0;
    for (var round = 0; round < scale; round = round + 1) {
        heap_reset();
        var hot = hot_expr(60);
        for (var rep = 0; rep < 25; rep = rep + 1) { acc = acc + eval(hot); }
        var e = build(5, 3);
        for (var rep = 0; rep < 10; rep = rep + 1) { acc = acc + eval(e); }
    }
    sink(acc);
    return acc & 0xffffffff;
}
"#;

pub(crate) fn li_022() -> Benchmark {
    Benchmark {
        name: "022.li",
        suite: SpecSuite::Int92,
        sources: vec![("cell", CELL), ("eval", EVAL), ("li_main", MAIN_022)],
        train_arg: 8,
        ref_arg: 60,
    }
}

pub(crate) fn li_130() -> Benchmark {
    Benchmark {
        name: "130.li",
        suite: SpecSuite::Int95,
        sources: vec![("cell", CELL), ("eval", EVAL), ("li_main", MAIN_130)],
        train_arg: 6,
        ref_arg: 45,
    }
}
