//! Determinism guarantees for the profile store.
//!
//! The continuous-PGO gates lean on two properties: the aggregate's
//! canonical text is byte-identical no matter what order deltas arrive
//! in (within a generation, merging is commutative saturating addition),
//! and the `pgo-store v1` text form round-trips exactly (persistence
//! restores the same aggregate the daemon drained with).

use hlo_pgo::{drift, ProfileStore, DEFAULT_HOT_SET};
use hlo_profile::{FuncCounts, ProfileDb};
use proptest::prelude::*;

const KEY: &str = "00000000000000aa";

/// Small-count deltas (u16 range) so repeated merging never saturates
/// and scaling stays exact.
fn delta_strategy() -> impl Strategy<Value = ProfileDb> {
    let func = (
        (0u8..3, 0u8..4),
        any::<u16>(),
        prop::collection::vec(any::<u16>(), 0..6),
    );
    prop::collection::vec(func, 0..6).prop_map(|funcs| {
        let mut db = ProfileDb::new();
        for ((m, f), entry, blocks) in funcs {
            db.insert(
                format!("mod{m}"),
                format!("fn{f}"),
                FuncCounts {
                    entry: u64::from(entry),
                    blocks: blocks.into_iter().map(u64::from).collect(),
                    edges: Default::default(),
                },
            );
        }
        db
    })
}

proptest! {
    /// Within a generation, push order cannot change the aggregate text.
    #[test]
    fn push_order_is_invisible(deltas in prop::collection::vec(delta_strategy(), 0..6)) {
        let mut fwd = ProfileStore::new(0);
        let mut rev = ProfileStore::new(0);
        fwd.register(KEY).unwrap();
        rev.register(KEY).unwrap();
        for d in &deltas {
            fwd.push(KEY, d).unwrap();
        }
        for d in deltas.iter().rev() {
            rev.push(KEY, d).unwrap();
        }
        prop_assert_eq!(fwd.to_text(), rev.to_text());
    }

    /// The canonical text round-trips byte-for-byte, including the
    /// generation counter — what restart warmth rests on.
    #[test]
    fn store_text_roundtrips(
        deltas in prop::collection::vec(delta_strategy(), 0..4),
        advances in prop::collection::vec(0u64..4, 0..4),
    ) {
        let mut s = ProfileStore::new(0);
        s.register(KEY).unwrap();
        for (i, d) in deltas.iter().enumerate() {
            s.push(KEY, d).unwrap();
            if let Some(&g) = advances.get(i) {
                s.advance(KEY, g).unwrap();
            }
        }
        let text = s.to_text();
        let back = ProfileStore::from_text(&text, 0).unwrap();
        prop_assert_eq!(back.to_text(), text);
    }

    /// Re-pushing the same delta only scales the aggregate; drift sees
    /// shape, not volume, so the score stays zero.
    #[test]
    fn noop_pushes_do_not_drift(d in delta_strategy(), extra in 1usize..4) {
        let mut s = ProfileStore::new(0);
        s.register(KEY).unwrap();
        s.push(KEY, &d).unwrap();
        let before = s.merged(KEY).unwrap_or_default();
        for _ in 0..extra {
            s.push(KEY, &d).unwrap();
        }
        let after = s.merged(KEY).unwrap_or_default();
        let r = drift(&before, &after, DEFAULT_HOT_SET);
        prop_assert_eq!(r.score_millis(), 0);
    }
}
