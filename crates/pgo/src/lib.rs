#![warn(missing_docs)]
//! **hlo-pgo** — server-side continuous profile-guided optimization.
//!
//! The paper's premise is that inlining is only as good as the profile
//! driving it; in production that profile is never one offline training
//! run but a stream of deltas from many users that the build service
//! merges and tolerates going stale. This crate is the merge side of
//! that loop:
//!
//! * [`store`] — the [`ProfileStore`]: per-program aggregates of pushed
//!   [`ProfileDb`](hlo_profile::ProfileDb) deltas, exponentially decayed
//!   on a **generation counter** (never wall clock, so merges are
//!   deterministic and replayable), with saturating counter arithmetic,
//!   per-key resident-bytes accounting and a canonical `pgo-store v1`
//!   text form for crash-safe persistence and byte-identity tests.
//! * [`drift`] — how far the aggregate has moved since a cached
//!   optimization result was built: total-variation distance over
//!   entry/block frequencies plus hot-set churn, reported as a
//!   [`DriftReport`] naming the functions that moved. The daemon treats
//!   a cached result whose profile drifted past threshold as a miss and
//!   re-optimizes.
//!
//! Programs are identified by a [`program_key`]: the FNV-1a-64 hash of
//! the canonical `program_to_text` form, printed as 16 lowercase hex
//! digits. A client that compiles the same sources computes the same key
//! as the daemon without any coordination.

pub mod drift;
pub mod store;

pub use drift::{
    drift, DriftReport, FuncMove, DEFAULT_HOT_SET, DEFAULT_THRESHOLD_MILLIS, REASON_PGO_CHURN,
    REASON_PGO_COLD, REASON_PGO_DRIFT, REASON_PGO_STABLE,
};
pub use store::{Aggregate, ProfileStore, PushOutcome, StoreError, StoreStats};

/// The stable identity of a program in the store: FNV-1a-64 over the
/// canonical `program_to_text` form, as 16 lowercase hex digits.
pub fn program_key(p: &hlo_ir::Program) -> String {
    let canonical = hlo_ir::program_to_text(p);
    format!("{:016x}", hlo_ir::fnv1a_64(canonical.as_bytes()))
}

/// True when `key` is syntactically a program key (exactly 16 lowercase
/// hex digits). The store rejects anything else before touching state.
pub fn is_valid_key(key: &str) -> bool {
    key.len() == 16
        && key
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_shape() {
        assert!(is_valid_key("0123456789abcdef"));
        assert!(!is_valid_key("0123456789ABCDEF"));
        assert!(!is_valid_key("0123456789abcde"));
        assert!(!is_valid_key("0123456789abcdef0"));
        assert!(!is_valid_key("0123456789abcdeg"));
        assert!(!is_valid_key(""));
    }

    #[test]
    fn program_key_is_stable_and_well_formed() {
        let p = hlo_ir::Program::default();
        let k = program_key(&p);
        assert!(is_valid_key(&k));
        assert_eq!(k, program_key(&p.clone()));
    }
}
