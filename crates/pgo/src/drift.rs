//! How far a merged profile has moved from the one a cached result was
//! built with.
//!
//! Drift must ignore *volume* and see *shape*: ten thousand users
//! re-running yesterday's workload doubles every counter without
//! changing what is hot, and must never trigger re-optimization. Both
//! components are therefore computed over **normalized frequencies**:
//!
//! * `l1_millis` — total-variation distance `½ Σ |p_i − q_i|` over the
//!   per-(function, block) share of execution mass (entry counts ride
//!   along as a pseudo-block, covering call-frequency shifts in
//!   profiles with no block data). `0` = identical shape, `1000` = the
//!   two profiles spend their time in disjoint places.
//! * `churn_millis` — Jaccard distance between the two hot sets (the
//!   top-K functions by mass): the fraction of the combined hot set
//!   that is hot on one side only. Catches "a new function entered the
//!   top 10" even when the overall mass moved little.
//!
//! The score is the max of the two; the daemon re-optimizes a cached
//! result when the score exceeds its `--pgo-threshold`. Everything is
//! integer arithmetic in thousandths (millis), so reports are
//! deterministic across platforms.

use hlo_profile::ProfileDb;
use std::collections::BTreeMap;

/// Default re-optimization threshold, in thousandths (0.1).
pub const DEFAULT_THRESHOLD_MILLIS: u64 = 100;
/// Default hot-set size for the churn component.
pub const DEFAULT_HOT_SET: usize = 10;

/// Movers listed in a report (the rest are summarized by the totals).
const MAX_MOVED: usize = 5;

/// Reason code: the cached result was built profile-free (or against an
/// empty aggregate) and a real profile has since arrived.
pub const REASON_PGO_COLD: &str = "pgo-cold-start";
/// Reason code: mass distribution moved past threshold.
pub const REASON_PGO_DRIFT: &str = "pgo-drift-exceeded";
/// Reason code: the hot set churned past threshold while overall mass
/// distance stayed under it.
pub const REASON_PGO_CHURN: &str = "pgo-churn-exceeded";
/// Reason code: the aggregate is still within threshold of the profile
/// the cached result was built with.
pub const REASON_PGO_STABLE: &str = "pgo-profile-stable";

/// One function whose share of execution mass moved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncMove {
    /// Module name.
    pub module: String,
    /// Function name.
    pub func: String,
    /// Share of total mass in the old profile, thousandths.
    pub before_millis: u64,
    /// Share of total mass in the new profile, thousandths.
    pub after_millis: u64,
}

/// The provenance of one drift decision.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DriftReport {
    /// Total-variation distance over per-block mass shares, thousandths.
    pub l1_millis: u64,
    /// Hot-set Jaccard distance, thousandths.
    pub churn_millis: u64,
    /// Exactly one side was empty: a cold aggregate met its first real
    /// profile (or vice versa). Always scored as full drift.
    pub cold: bool,
    /// Top movers by absolute share change, largest first (ties by
    /// name), at most five.
    pub moved: Vec<FuncMove>,
}

impl DriftReport {
    /// The drift score the threshold is compared against.
    pub fn score_millis(&self) -> u64 {
        self.l1_millis.max(self.churn_millis)
    }

    /// True when the score exceeds `threshold_millis`.
    pub fn exceeds(&self, threshold_millis: u64) -> bool {
        self.score_millis() > threshold_millis
    }

    /// The stable reason code for this report under `threshold_millis`
    /// (one of the `pgo-*` codes in `hlo::all_reason_codes`).
    pub fn reason(&self, threshold_millis: u64) -> &'static str {
        if self.cold {
            REASON_PGO_COLD
        } else if !self.exceeds(threshold_millis) {
            REASON_PGO_STABLE
        } else if self.l1_millis > threshold_millis {
            REASON_PGO_DRIFT
        } else {
            REASON_PGO_CHURN
        }
    }

    /// One provenance line: score, components and the top movers.
    pub fn summary(&self, threshold_millis: u64) -> String {
        let mut s = format!(
            "{} score {} (l1 {} churn {} threshold {})",
            self.reason(threshold_millis),
            self.score_millis(),
            self.l1_millis,
            self.churn_millis,
            threshold_millis
        );
        for m in &self.moved {
            s.push_str(&format!(
                " {}.{} {}->{}",
                m.module, m.func, m.before_millis, m.after_millis
            ));
        }
        s
    }
}

/// Execution mass per (module, function).
type FuncMass = BTreeMap<(String, String), u128>;
/// Execution mass per (module, function, block index); `u32::MAX` is the
/// entry-count pseudo-block.
type BlockMass = BTreeMap<(String, String, u32), u128>;

/// Per-function and per-block execution-mass maps. Saturating sums keep
/// hostile counter values finite; `u128` totals keep the share division
/// exact.
fn masses(db: &ProfileDb) -> (FuncMass, BlockMass) {
    let mut per_func = BTreeMap::new();
    let mut per_block = BTreeMap::new();
    for ((m, f), c) in db.iter() {
        let mut func_mass: u128 = u128::from(c.entry);
        per_block.insert((m.clone(), f.clone(), u32::MAX), u128::from(c.entry));
        for (i, b) in c.blocks.iter().enumerate() {
            func_mass += u128::from(*b);
            per_block.insert((m.clone(), f.clone(), i as u32), u128::from(*b));
        }
        per_func.insert((m.clone(), f.clone()), func_mass);
    }
    (per_func, per_block)
}

/// Share of `mass` in `total`, in thousandths (0 when `total` is 0).
fn share_millis(mass: u128, total: u128) -> u64 {
    (mass * 1000).checked_div(total).unwrap_or(0) as u64
}

/// The top-`k` functions by mass (ties broken by name, so the set is
/// deterministic).
fn hot_set(per_func: &BTreeMap<(String, String), u128>, k: usize) -> Vec<(String, String)> {
    let mut funcs: Vec<_> = per_func.iter().collect();
    funcs.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
    funcs.into_iter().take(k).map(|(k, _)| k.clone()).collect()
}

/// Measures how far `new` has drifted from `old` (the profile a cached
/// result was built with), with a hot set of `hot` functions.
pub fn drift(old: &ProfileDb, new: &ProfileDb, hot: usize) -> DriftReport {
    if old.is_empty() && new.is_empty() {
        return DriftReport::default();
    }
    if old.is_empty() != new.is_empty() {
        // Cold start (or total loss): nothing to compare shape against.
        let (per_func, _) = masses(if old.is_empty() { new } else { old });
        let total: u128 = per_func.values().sum();
        let mut moved: Vec<FuncMove> = per_func
            .iter()
            .map(|((m, f), mass)| {
                let share = share_millis(*mass, total);
                FuncMove {
                    module: m.clone(),
                    func: f.clone(),
                    before_millis: if old.is_empty() { 0 } else { share },
                    after_millis: if old.is_empty() { share } else { 0 },
                }
            })
            .collect();
        moved.sort_by(|a, b| {
            let da = a.before_millis.max(a.after_millis);
            let db = b.before_millis.max(b.after_millis);
            db.cmp(&da)
                .then_with(|| (&a.module, &a.func).cmp(&(&b.module, &b.func)))
        });
        moved.truncate(MAX_MOVED);
        return DriftReport {
            l1_millis: 1000,
            churn_millis: 1000,
            cold: true,
            moved,
        };
    }

    let (old_func, old_block) = masses(old);
    let (new_func, new_block) = masses(new);
    let old_total: u128 = old_block.values().sum();
    let new_total: u128 = new_block.values().sum();

    // ½ Σ |p_i − q_i| over the union of block components. A profile that
    // merely scaled (every counter × c) has identical shares and drifts 0.
    let mut abs_sum: u64 = 0;
    let keys: std::collections::BTreeSet<_> =
        old_block.keys().chain(new_block.keys()).cloned().collect();
    for k in &keys {
        let p = share_millis(old_block.get(k).copied().unwrap_or(0), old_total);
        let q = share_millis(new_block.get(k).copied().unwrap_or(0), new_total);
        abs_sum += p.abs_diff(q);
    }
    let l1_millis = (abs_sum / 2).min(1000);

    let old_hot = hot_set(&old_func, hot);
    let new_hot = hot_set(&new_func, hot);
    let union: std::collections::BTreeSet<_> = old_hot.iter().chain(new_hot.iter()).collect();
    let shared = old_hot.iter().filter(|f| new_hot.contains(f)).count();
    let churn_millis = if union.is_empty() {
        0
    } else {
        ((union.len() - shared) as u64 * 1000) / union.len() as u64
    };

    let func_keys: std::collections::BTreeSet<_> =
        old_func.keys().chain(new_func.keys()).cloned().collect();
    let mut moved: Vec<FuncMove> = func_keys
        .into_iter()
        .map(|(m, f)| {
            let before = share_millis(
                old_func.get(&(m.clone(), f.clone())).copied().unwrap_or(0),
                old_total,
            );
            let after = share_millis(
                new_func.get(&(m.clone(), f.clone())).copied().unwrap_or(0),
                new_total,
            );
            FuncMove {
                module: m,
                func: f,
                before_millis: before,
                after_millis: after,
            }
        })
        .filter(|mv| mv.before_millis != mv.after_millis)
        .collect();
    moved.sort_by(|a, b| {
        let da = a.before_millis.abs_diff(a.after_millis);
        let db = b.before_millis.abs_diff(b.after_millis);
        db.cmp(&da)
            .then_with(|| (&a.module, &a.func).cmp(&(&b.module, &b.func)))
    });
    moved.truncate(MAX_MOVED);

    DriftReport {
        l1_millis,
        churn_millis,
        cold: false,
        moved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlo_profile::FuncCounts;

    fn db(funcs: &[(&str, &str, u64, &[u64])]) -> ProfileDb {
        let mut out = ProfileDb::new();
        for (m, f, entry, blocks) in funcs {
            out.insert(
                *m,
                *f,
                FuncCounts {
                    entry: *entry,
                    blocks: blocks.to_vec(),
                    edges: Default::default(),
                },
            );
        }
        out
    }

    #[test]
    fn identical_profiles_do_not_drift() {
        let a = db(&[("m", "f", 10, &[10, 90]), ("m", "g", 5, &[5])]);
        let r = drift(&a, &a, DEFAULT_HOT_SET);
        assert_eq!(r.l1_millis, 0);
        assert_eq!(r.churn_millis, 0);
        assert!(!r.cold);
        assert!(r.moved.is_empty());
        assert_eq!(r.reason(DEFAULT_THRESHOLD_MILLIS), REASON_PGO_STABLE);
    }

    #[test]
    fn uniform_scaling_is_invisible() {
        // A no-op push doubles every counter; the shape is unchanged and
        // must never trigger re-optimization.
        let a = db(&[("m", "f", 10, &[10, 90]), ("m", "g", 5, &[5])]);
        let b = db(&[("m", "f", 30, &[30, 270]), ("m", "g", 15, &[15])]);
        let r = drift(&a, &b, DEFAULT_HOT_SET);
        assert_eq!(r.score_millis(), 0);
    }

    #[test]
    fn disjoint_profiles_drift_fully() {
        let a = db(&[("m", "f", 10, &[100])]);
        let b = db(&[("m", "g", 10, &[100])]);
        let r = drift(&a, &b, DEFAULT_HOT_SET);
        assert!(r.l1_millis >= 990, "l1 {}", r.l1_millis);
        assert_eq!(r.churn_millis, 1000);
        assert_eq!(r.reason(DEFAULT_THRESHOLD_MILLIS), REASON_PGO_DRIFT);
        assert!(!r.moved.is_empty());
    }

    #[test]
    fn cold_start_is_full_drift() {
        let b = db(&[("m", "f", 10, &[100])]);
        let r = drift(&ProfileDb::new(), &b, DEFAULT_HOT_SET);
        assert!(r.cold);
        assert_eq!(r.score_millis(), 1000);
        assert_eq!(r.reason(DEFAULT_THRESHOLD_MILLIS), REASON_PGO_COLD);
        let r = drift(&ProfileDb::new(), &ProfileDb::new(), DEFAULT_HOT_SET);
        assert_eq!(r.score_millis(), 0);
        assert!(!r.cold);
    }

    #[test]
    fn partial_shift_is_partial_drift() {
        // 90/10 split becomes 60/40: TV distance = 0.3.
        let a = db(&[("m", "f", 0, &[90]), ("m", "g", 0, &[10])]);
        let b = db(&[("m", "f", 0, &[60]), ("m", "g", 0, &[40])]);
        let r = drift(&a, &b, DEFAULT_HOT_SET);
        assert_eq!(r.l1_millis, 300);
        assert_eq!(r.churn_millis, 0, "both stay in the hot set");
        assert!(r.exceeds(DEFAULT_THRESHOLD_MILLIS));
        assert_eq!(r.reason(DEFAULT_THRESHOLD_MILLIS), REASON_PGO_DRIFT);
        assert_eq!(r.moved.len(), 2);
        assert_eq!(r.moved[0].module, "m");
        assert_eq!(r.moved[0].before_millis, 900);
        assert_eq!(r.moved[0].after_millis, 600);
    }

    #[test]
    fn hot_set_churn_catches_newcomers() {
        // Mass barely moves, but the #1 hot function is replaced.
        let a = db(&[("m", "f", 0, &[51]), ("m", "g", 0, &[49])]);
        let b = db(&[("m", "f", 0, &[51]), ("m", "h", 0, &[49])]);
        let r = drift(&a, &b, 1);
        assert_eq!(r.churn_millis, 0, "top-1 is f on both sides");
        let r = drift(&a, &b, 2);
        // Hot sets {f,g} vs {f,h}: union 3, shared 1 → churn 2/3.
        assert_eq!(r.churn_millis, 666);
        assert_eq!(r.reason(500), REASON_PGO_CHURN);
    }

    #[test]
    fn summary_names_the_movers() {
        let a = db(&[("m", "f", 0, &[90]), ("m", "g", 0, &[10])]);
        let b = db(&[("m", "f", 0, &[10]), ("m", "g", 0, &[90])]);
        let r = drift(&a, &b, DEFAULT_HOT_SET);
        let s = r.summary(DEFAULT_THRESHOLD_MILLIS);
        assert!(s.starts_with(REASON_PGO_DRIFT), "{s}");
        assert!(s.contains("m.f 900->100"), "{s}");
        assert!(s.contains("m.g 100->900"), "{s}");
    }
}
