//! The per-program profile store.
//!
//! One [`Aggregate`] per program key holds the merged sum of every
//! pushed [`ProfileDb`] delta. Aging is modelled with a **generation
//! counter**: within a generation, merging is plain saturating addition
//! — commutative and associative, so the aggregate's canonical text is
//! byte-identical no matter what order deltas arrive in (the serve
//! benchmark gates on exactly that). Advancing the generation halves
//! every resident count (integer floor) once per step; pushes that
//! arrive afterwards therefore outweigh the decayed past by 2× per
//! generation. Nothing reads the wall clock, so any push/advance
//! sequence is deterministic and replayable.
//!
//! The whole store serializes to a canonical `pgo-store v1` text form
//! (sorted by key, embedding [`ProfileDb::to_text`] per program) used
//! both for byte-identity tests and for crash-safe persistence:
//! [`ProfileStore::save`] writes a temp file and renames it over the
//! target, so a crash mid-write leaves the previous snapshot intact.

use crate::is_valid_key;
use hlo_profile::{FuncCounts, ProfileDb};
use std::collections::{HashMap, VecDeque};
use std::path::Path;

/// Default bound on resident program aggregates.
pub const DEFAULT_CAP: usize = 64;

/// One program's aggregated profile.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Aggregate {
    /// Decay epoch. Counts pushed `g` generations ago have been halved
    /// `g` times.
    pub generation: u64,
    /// Deltas merged into this aggregate since it was created (survives
    /// generation advances; saturating).
    pub pushes: u64,
    db: ProfileDb,
    resident_bytes: u64,
}

impl Aggregate {
    /// The merged profile.
    pub fn db(&self) -> &ProfileDb {
        &self.db
    }

    /// Estimated resident size of the merged profile, in bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }
}

/// Why a store operation was refused. State is never modified on error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The key is not 16 lowercase hex digits.
    BadKey(String),
    /// The key is well-formed but the daemon has never optimized that
    /// program, so there is nothing to aggregate into. Keys enter the
    /// store when an optimize request for the program is dequeued.
    UnknownProgram(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::BadKey(k) => write!(f, "bad program key `{k}` (want 16 lowercase hex)"),
            StoreError::UnknownProgram(k) => write!(f, "unknown program key `{k}`"),
        }
    }
}

impl std::error::Error for StoreError {}

/// What one accepted push did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushOutcome {
    /// Generation the delta landed in.
    pub generation: u64,
    /// Total pushes into this aggregate, including this one.
    pub pushes: u64,
    /// Functions in the merged aggregate after the push.
    pub functions: u64,
    /// Resident bytes of the aggregate after the push.
    pub resident_bytes: u64,
}

/// Store-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Program aggregates currently resident.
    pub programs: u64,
    /// Total estimated resident bytes across aggregates.
    pub resident_bytes: u64,
    /// Cumulative accepted pushes (survives eviction).
    pub pushes: u64,
    /// Aggregates evicted by the capacity bound.
    pub evictions: u64,
}

/// Parse failure for the `pgo-store v1` text form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreParseError {
    /// 1-based line of the malformed record.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for StoreParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pgo-store line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for StoreParseError {}

/// Bounded map from program key to [`Aggregate`]. Not internally
/// synchronized — the daemon wraps it in its shared-state lock.
#[derive(Debug)]
pub struct ProfileStore {
    cap: usize,
    programs: HashMap<String, Aggregate>,
    /// LRU order, front = coldest. Touched by register, push, advance
    /// and merged-profile reads.
    order: VecDeque<String>,
    stats: StoreStats,
}

impl ProfileStore {
    /// A store holding at most `cap` program aggregates (`0` =
    /// unbounded).
    pub fn new(cap: usize) -> Self {
        ProfileStore {
            cap,
            programs: HashMap::new(),
            order: VecDeque::new(),
            stats: StoreStats::default(),
        }
    }

    /// Makes `key` eligible for pushes, creating an empty aggregate if
    /// the program is new. The daemon calls this when it dequeues an
    /// optimize request for the program; pushes for keys never optimized
    /// here are refused ([`StoreError::UnknownProgram`]). Returns `true`
    /// when the aggregate was created.
    ///
    /// # Errors
    /// [`StoreError::BadKey`] on a malformed key.
    pub fn register(&mut self, key: &str) -> Result<bool, StoreError> {
        self.check_key(key)?;
        let created = if self.programs.contains_key(key) {
            false
        } else {
            self.programs.insert(key.to_string(), Aggregate::default());
            self.order.push_back(key.to_string());
            self.evict();
            true
        };
        self.touch(key);
        self.refresh_totals();
        Ok(created)
    }

    /// Merges one pushed delta into the program's aggregate (saturating
    /// sums; the delta lands in the current generation).
    ///
    /// # Errors
    /// [`StoreError::BadKey`] / [`StoreError::UnknownProgram`]; the
    /// store is unchanged on error.
    pub fn push(&mut self, key: &str, delta: &ProfileDb) -> Result<PushOutcome, StoreError> {
        self.check_key(key)?;
        let agg = self
            .programs
            .get_mut(key)
            .ok_or_else(|| StoreError::UnknownProgram(key.to_string()))?;
        agg.db.merge(delta);
        agg.pushes = agg.pushes.saturating_add(1);
        agg.resident_bytes = db_resident_bytes(&agg.db);
        let out = PushOutcome {
            generation: agg.generation,
            pushes: agg.pushes,
            functions: agg.db.len() as u64,
            resident_bytes: agg.resident_bytes,
        };
        self.stats.pushes = self.stats.pushes.saturating_add(1);
        self.touch(key);
        self.refresh_totals();
        Ok(out)
    }

    /// Advances the program's decay epoch by `generations`, halving
    /// every resident count once per step (integer floor; a shift of 64+
    /// clears the count). Deltas pushed after the advance consequently
    /// weigh 2× per generation more than the decayed past.
    ///
    /// # Errors
    /// [`StoreError::BadKey`] / [`StoreError::UnknownProgram`].
    pub fn advance(&mut self, key: &str, generations: u64) -> Result<u64, StoreError> {
        self.check_key(key)?;
        let agg = self
            .programs
            .get_mut(key)
            .ok_or_else(|| StoreError::UnknownProgram(key.to_string()))?;
        if generations > 0 {
            agg.db = decay_db(&agg.db, generations);
            agg.generation = agg.generation.saturating_add(generations);
            agg.resident_bytes = db_resident_bytes(&agg.db);
        }
        let generation = agg.generation;
        self.touch(key);
        self.refresh_totals();
        Ok(generation)
    }

    /// The program's aggregate, if resident. Does not touch LRU order.
    pub fn aggregate(&self, key: &str) -> Option<&Aggregate> {
        self.programs.get(key)
    }

    /// A clone of the merged profile for an optimize run, touching LRU
    /// order. `None` when the key is unknown **or** the aggregate is
    /// still empty (no pushes yet) — an empty profile must behave like
    /// no profile at all.
    pub fn merged(&mut self, key: &str) -> Option<ProfileDb> {
        let agg = self.programs.get(key)?;
        if agg.db.is_empty() {
            return None;
        }
        let db = agg.db.clone();
        self.touch(key);
        Some(db)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Program keys in canonical (sorted) order.
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<_> = self.programs.keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Canonical `pgo-store v1` text. Programs are sorted by key; each
    /// embeds its profile in the canonical [`ProfileDb::to_text`] form,
    /// so two stores holding the same aggregates serialize to identical
    /// bytes regardless of push arrival order.
    pub fn to_text(&self) -> String {
        let mut out = String::from("pgo-store v1\n");
        for key in self.keys() {
            let agg = &self.programs[&key];
            out.push_str(&format!(
                "program {key} {} {}\n",
                agg.generation, agg.pushes
            ));
            out.push_str(&agg.db.to_text());
            out.push_str("endprogram\n");
        }
        out
    }

    /// Parses the text form produced by [`ProfileStore::to_text`] into a
    /// store bounded at `cap`. LRU order after a load is the canonical
    /// key order (the text form does not carry access recency).
    ///
    /// # Errors
    /// Positioned error for version/record problems; profile-record
    /// errors keep their inner position.
    pub fn from_text(text: &str, cap: usize) -> Result<ProfileStore, StoreParseError> {
        let err = |line: usize, msg: String| StoreParseError { line, msg };
        let mut store = ProfileStore::new(cap);
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, "pgo-store v1")) => {}
            other => {
                return Err(err(
                    1,
                    format!(
                        "expected `pgo-store v1` header, got `{}`",
                        other.map(|(_, l)| l).unwrap_or("")
                    ),
                ))
            }
        }
        // (key, generation, pushes, header line, profile text lines)
        let mut cur: Option<(String, u64, u64, usize, String)> = None;
        for (ln, line) in lines {
            if let Some(rest) = line.strip_prefix("program ") {
                if cur.is_some() {
                    return Err(err(ln + 1, "nested `program` record".to_string()));
                }
                let mut parts = rest.split_whitespace();
                let key = parts
                    .next()
                    .ok_or_else(|| err(ln + 1, "missing program key".to_string()))?;
                if !is_valid_key(key) {
                    return Err(err(ln + 1, format!("bad program key `{key}`")));
                }
                if store.programs.contains_key(key) {
                    return Err(err(ln + 1, format!("duplicate program `{key}`")));
                }
                let generation: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(ln + 1, "bad generation".to_string()))?;
                let pushes: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(ln + 1, "bad push count".to_string()))?;
                cur = Some((key.to_string(), generation, pushes, ln + 1, String::new()));
            } else if line == "endprogram" {
                let (key, generation, pushes, header_ln, profile) = cur
                    .take()
                    .ok_or_else(|| err(ln + 1, "`endprogram` outside program".to_string()))?;
                let db =
                    ProfileDb::from_text(&profile).map_err(|e| err(header_ln + e.line, e.msg))?;
                let resident_bytes = db_resident_bytes(&db);
                store.order.push_back(key.clone());
                store.programs.insert(
                    key,
                    Aggregate {
                        generation,
                        pushes,
                        db,
                        resident_bytes,
                    },
                );
            } else if let Some(c) = cur.as_mut() {
                c.4.push_str(line);
                c.4.push('\n');
            } else if !line.trim().is_empty() {
                return Err(err(ln + 1, format!("unexpected line `{line}`")));
            }
        }
        if let Some((key, _, _, header_ln, _)) = cur {
            return Err(err(header_ln, format!("unterminated program `{key}`")));
        }
        // Rebuild the cumulative push counter from the resident records,
        // so a reloaded store's stats read identically to the snapshot's
        // (the serve benchmark's restart-warmth probe gates on this).
        store.stats.pushes = store
            .programs
            .values()
            .fold(0u64, |acc, a| acc.saturating_add(a.pushes));
        store.evict();
        store.refresh_totals();
        Ok(store)
    }

    /// Crash-safe persistence: writes the canonical text to `path` via a
    /// sibling temp file + rename, so readers only ever see a complete
    /// snapshot.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_text())?;
        std::fs::rename(&tmp, path)
    }

    /// Loads a snapshot written by [`ProfileStore::save`]. A missing
    /// file is an empty store (first boot), a malformed one is
    /// `InvalidData`.
    ///
    /// # Errors
    /// Propagates filesystem errors; parse failures map to
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: &Path, cap: usize) -> std::io::Result<ProfileStore> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(ProfileStore::new(cap))
            }
            Err(e) => return Err(e),
        };
        ProfileStore::from_text(&text, cap)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    fn check_key(&self, key: &str) -> Result<(), StoreError> {
        if is_valid_key(key) {
            Ok(())
        } else {
            Err(StoreError::BadKey(key.to_string()))
        }
    }

    fn touch(&mut self, key: &str) {
        if let Some(i) = self.order.iter().position(|k| k == key) {
            self.order.remove(i);
        }
        self.order.push_back(key.to_string());
    }

    fn evict(&mut self) {
        if self.cap == 0 {
            return;
        }
        while self.programs.len() > self.cap {
            let Some(old) = self.order.pop_front() else {
                break;
            };
            self.programs.remove(&old);
            self.stats.evictions += 1;
        }
    }

    fn refresh_totals(&mut self) {
        self.stats.programs = self.programs.len() as u64;
        self.stats.resident_bytes = self.programs.values().map(|a| a.resident_bytes).sum();
    }
}

/// Halves every count `generations` times (shift with floor; 64+ clears).
fn decay_db(db: &ProfileDb, generations: u64) -> ProfileDb {
    let shift = |c: u64| {
        if generations >= 64 {
            0
        } else {
            c >> generations
        }
    };
    let mut out = ProfileDb::new();
    for ((m, f), c) in db.iter() {
        let counts = FuncCounts {
            entry: shift(c.entry),
            blocks: c.blocks.iter().map(|&b| shift(b)).collect(),
            edges: c.edges.iter().map(|(&e, &n)| (e, shift(n))).collect(),
        };
        out.insert(m.clone(), f.clone(), counts);
    }
    out
}

/// Estimated resident footprint of a profile: names plus 8 bytes per
/// counter plus map overhead per edge.
fn db_resident_bytes(db: &ProfileDb) -> u64 {
    db.iter()
        .map(|((m, f), c)| (m.len() + f.len() + 8 + 8 * c.blocks.len() + 24 * c.edges.len()) as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: &str = "00000000000000aa";
    const KEY2: &str = "00000000000000bb";

    fn delta(entry: u64) -> ProfileDb {
        let mut db = ProfileDb::new();
        db.insert(
            "m",
            "f",
            FuncCounts {
                entry,
                blocks: vec![entry, entry / 2],
                edges: [((0, 1), entry / 2)].into_iter().collect(),
            },
        );
        db
    }

    #[test]
    fn push_requires_registration() {
        let mut s = ProfileStore::new(0);
        assert_eq!(
            s.push(KEY, &delta(4)),
            Err(StoreError::UnknownProgram(KEY.to_string()))
        );
        assert!(s.register(KEY).unwrap());
        assert!(!s.register(KEY).unwrap());
        let out = s.push(KEY, &delta(4)).unwrap();
        assert_eq!(out.pushes, 1);
        assert_eq!(out.functions, 1);
        assert_eq!(out.generation, 0);
    }

    #[test]
    fn bad_keys_are_refused_without_state_change() {
        let mut s = ProfileStore::new(0);
        for k in ["short", "0123456789ABCDEF", "0123456789abcdez"] {
            assert!(matches!(s.push(k, &delta(1)), Err(StoreError::BadKey(_))));
            assert!(matches!(s.register(k), Err(StoreError::BadKey(_))));
            assert!(matches!(s.advance(k, 1), Err(StoreError::BadKey(_))));
        }
        assert_eq!(s.stats(), StoreStats::default());
    }

    #[test]
    fn within_generation_merge_is_order_independent() {
        let deltas = [delta(3), delta(100), delta(7), delta(41)];
        let mut a = ProfileStore::new(0);
        let mut b = ProfileStore::new(0);
        a.register(KEY).unwrap();
        b.register(KEY).unwrap();
        for d in &deltas {
            a.push(KEY, d).unwrap();
        }
        for d in deltas.iter().rev() {
            b.push(KEY, d).unwrap();
        }
        assert_eq!(a.to_text(), b.to_text());
    }

    #[test]
    fn advance_halves_counts_and_bumps_generation() {
        let mut s = ProfileStore::new(0);
        s.register(KEY).unwrap();
        s.push(KEY, &delta(8)).unwrap();
        assert_eq!(s.advance(KEY, 1).unwrap(), 1);
        let agg = s.aggregate(KEY).unwrap();
        let c = agg.db().get("m", "f").unwrap();
        assert_eq!(c.entry, 4);
        assert_eq!(c.blocks, vec![4, 2]);
        assert_eq!(c.edges[&(0, 1)], 2);
        // A huge advance clears everything rather than shifting by >= 64.
        s.advance(KEY, 1000).unwrap();
        assert_eq!(
            s.aggregate(KEY).unwrap().db().get("m", "f").unwrap().entry,
            0
        );
        assert_eq!(s.aggregate(KEY).unwrap().generation, 1001);
    }

    #[test]
    fn merged_is_none_for_empty_aggregates() {
        let mut s = ProfileStore::new(0);
        s.register(KEY).unwrap();
        assert!(
            s.merged(KEY).is_none(),
            "empty aggregate acts like no profile"
        );
        s.push(KEY, &delta(2)).unwrap();
        assert_eq!(s.merged(KEY).unwrap(), delta(2));
        assert!(s.merged(KEY2).is_none());
    }

    #[test]
    fn text_roundtrip_is_identity() {
        let mut s = ProfileStore::new(0);
        s.register(KEY).unwrap();
        s.register(KEY2).unwrap();
        s.push(KEY, &delta(9)).unwrap();
        s.advance(KEY, 2).unwrap();
        s.push(KEY, &delta(5)).unwrap();
        s.push(KEY2, &delta(1)).unwrap();
        let text = s.to_text();
        let back = ProfileStore::from_text(&text, 0).unwrap();
        assert_eq!(back.to_text(), text);
        assert_eq!(back.aggregate(KEY).unwrap().generation, 2);
        assert_eq!(back.aggregate(KEY).unwrap().pushes, 2);
        assert_eq!(back.stats().programs, 2);
    }

    #[test]
    fn malformed_store_text_is_rejected() {
        assert!(ProfileStore::from_text("", 0).is_err());
        assert!(ProfileStore::from_text("pgo-store v2\n", 0).is_err());
        assert!(ProfileStore::from_text("pgo-store v1\nbogus\n", 0).is_err());
        assert!(
            ProfileStore::from_text(&format!("pgo-store v1\nprogram {KEY} 0 0\n"), 0).is_err(),
            "unterminated program"
        );
        assert!(
            ProfileStore::from_text(
                &format!("pgo-store v1\nprogram {KEY} 0 0\nbogus 1\nendprogram\n"),
                0
            )
            .is_err(),
            "embedded profile text must parse"
        );
        assert!(
            ProfileStore::from_text("pgo-store v1\nprogram nothex 0 0\nendprogram\n", 0).is_err()
        );
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut s = ProfileStore::new(2);
        s.register(KEY).unwrap();
        s.register(KEY2).unwrap();
        s.push(KEY, &delta(1)).unwrap(); // KEY is now warmer than KEY2
        s.register("00000000000000cc").unwrap();
        assert!(s.aggregate(KEY2).is_none(), "coldest evicted");
        assert!(s.aggregate(KEY).is_some());
        assert_eq!(s.stats().evictions, 1);
        assert_eq!(s.stats().programs, 2);
    }

    #[test]
    fn save_and_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("hlo-pgo-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.pgo");
        let mut s = ProfileStore::new(0);
        s.register(KEY).unwrap();
        s.push(KEY, &delta(6)).unwrap();
        s.save(&path).unwrap();
        let back = ProfileStore::load(&path, 0).unwrap();
        assert_eq!(back.to_text(), s.to_text());
        // Missing file = empty store; garbage = InvalidData.
        let missing = ProfileStore::load(&dir.join("absent.pgo"), 0).unwrap();
        assert_eq!(missing.stats().programs, 0);
        std::fs::write(&path, "not a store").unwrap();
        let err = ProfileStore::load(&path, 0).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
