//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This stub implements exactly the API subset the workspace's
//! property tests use — `Strategy` with `prop_map`/`prop_recursive`, range,
//! tuple, collection, boolean and string strategies, `prop_oneof!`, the
//! `proptest!` macro and `prop_assert*!` — on top of a deterministic
//! splitmix-style PRNG. There is no shrinking: a failing case prints its
//! seed and case number so it can be replayed by rerunning the test.

use std::cell::Cell;

/// The deterministic random number generator behind every strategy.
///
/// Seeded per test from `PROPTEST_SEED` (decimal) when set, otherwise from
/// a fixed default, so failures are reproducible run to run.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for `case` of the test named `test`.
    pub fn for_case(test: &str, case: u64) -> Self {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x9E37_79B9_7F4A_7C15u64);
        // Mix the test name in so sibling tests see different streams.
        let mut h = base ^ case.wrapping_mul(0xA076_1D64_78BD_642F);
        for b in test.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    ///
    /// Unlike real proptest there is no value tree and no shrinking —
    /// `generate` directly produces a value from the RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `self` generates the leaves and
        /// `f` wraps an inner strategy into one more level, applied
        /// `depth` times. The `_desired_size` and `_expected_branch`
        /// hints of the real API are accepted and ignored.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let mut level = self.boxed();
            for _ in 0..depth {
                level = f(level).boxed();
            }
            level
        }

        /// Erases the strategy type (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }
    }

    /// A type-erased, clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Union<T> {
        /// Builds the union; `arms` must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident $i:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
    }

    /// `&str` patterns act as (very approximate) regex string strategies.
    ///
    /// Only the shape the workspace uses is honoured: `[X-Y]{lo,hi}`
    /// generates `lo..=hi` characters uniformly from the literal range
    /// `X..=Y`. Anything else falls back to 0–20 printable ASCII chars.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (mut lo_c, mut hi_c) = (' ', '~');
            let (mut lo_n, mut hi_n) = (0u64, 20u64);
            let bytes = self.as_bytes();
            // Parse the single supported pattern form, else keep defaults.
            if bytes.len() >= 5 && bytes[0] == b'[' && bytes[4] == b']' && bytes[2] == b'-' {
                lo_c = bytes[1] as char;
                hi_c = bytes[3] as char;
                if let Some(rest) = self[5..].strip_prefix('{') {
                    if let Some(body) = rest.strip_suffix('}') {
                        if let Some((a, b)) = body.split_once(',') {
                            lo_n = a.trim().parse().unwrap_or(lo_n);
                            hi_n = b.trim().parse().unwrap_or(hi_n);
                        }
                    }
                }
            }
            let n = lo_n + rng.below(hi_n - lo_n + 1);
            (0..n)
                .map(|_| {
                    let span = hi_c as u32 - lo_c as u32 + 1;
                    char::from_u32(lo_c as u32 + rng.below(span as u64) as u32).unwrap_or(' ')
                })
                .collect()
        }
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait behind [`any`](crate::prelude::any).

    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy generating any value of `T` (see [`any`](crate::prelude::any)).
    pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::Strategy;
    use super::TestRng;

    /// A length specification accepted by [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for vectors of values from `elem`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies (`prop::bool::ANY`).

    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy yielding `true` or `false` uniformly.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Runner configuration (`cases` is the only honoured knob).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each `proptest!` test executes.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

thread_local! {
    static CURRENT_CASE: Cell<u64> = const { Cell::new(0) };
}

/// Test-runner plumbing used by the generated test bodies.
pub mod runner {
    use super::*;

    /// Records the case index so assertion failures can report it.
    pub fn set_case(case: u64) {
        CURRENT_CASE.with(|c| c.set(case));
    }

    /// The case index of the currently executing generated test.
    pub fn current_case() -> u64 {
        CURRENT_CASE.with(|c| c.get())
    }

    pub use super::strategy::Strategy as RunnerStrategy;
    pub use super::TestRng;
}

/// Builds a deterministic RNG stream for one (test, case) pair.
pub fn rng_for(test: &str, case: u64) -> TestRng {
    TestRng::for_case(test, case)
}

/// Re-export hub mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    use std::marker::PhantomData;

    /// The `prop` module namespace (`prop::collection`, `prop::bool`, ...).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::strategy::Just;
    }

    /// Strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> crate::arbitrary::AnyStrategy<T> {
        crate::arbitrary::AnyStrategy(PhantomData)
    }
}

/// Uniform choice between the given strategies (all must generate the same
/// value type). Weights (`n => strategy`) are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Property assertion; failure panics with the case number for replay.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!(
                "[proptest stub case {}] {}",
                $crate::runner::current_case(),
                format!($($fmt)*)
            );
        }
    };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}", a, b);
    }};
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{:?} == {:?}", a, b);
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases as u64 {
                $crate::runner::set_case(case);
                let mut rng = $crate::rng_for(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::rng_for("ranges", 0);
        for _ in 0..200 {
            let v = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let w = (1u8..=6).generate(&mut rng);
            assert!((1..=6).contains(&w));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut rng = crate::rng_for("oneof", 0);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        enum T {
            Leaf(u8),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = (0u8..10)
            .prop_map(T::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::rng_for("recursive", 0);
        for _ in 0..50 {
            assert!(depth(&s.generate(&mut rng)) <= 4);
        }
    }

    #[test]
    fn string_pattern_is_honoured() {
        let s = "[a-c]{2,5}";
        let mut rng = crate::rng_for("strings", 0);
        for _ in 0..50 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..=5).contains(&v.len()), "{v:?}");
            assert!(v.chars().all(|c| ('a'..='c').contains(&c)), "{v:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_runnable_tests(
            xs in prop::collection::vec(0i64..100, 0..10),
            flip in prop::bool::ANY,
        ) {
            let sum: i64 = xs.iter().sum();
            prop_assert!(sum >= 0);
            prop_assert_eq!(flip, !!flip);
        }
    }
}
