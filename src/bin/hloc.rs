//! `hloc` — command-line driver for the MinC → HLO → VM/PA8000 pipeline.
//!
//! ```text
//! hloc build [OPTIONS] <file.mc>...   compile + optimize, report, optionally run
//! hloc opt [OPTIONS] <file.ir>        re-optimize dumped IR (isom-style path)
//! hloc run   <file.mc>... [--arg N] [--tier tree|bytecode]
//!                                     compile without HLO and execute
//! hloc lint  <file.mc>... [--pedantic]  static-analysis report (no optimization)
//! hloc classify <file.mc>...          Figure-5-style call-site classification
//! hloc fuzz [OPTIONS]                 differential-fuzz the optimizer
//! hloc serve [OPTIONS]                run the optimization daemon in-process
//! hloc remote <addr> build|profile|stats|metrics|trace|flight|top|ping|shutdown
//!                                     talk to a running daemon (hlod)
//! hloc --version                      version + enabled features
//! hloc help                           this text
//! ```
//!
//! Build options:
//! `--scope module|program`, `--budget N`, `--passes N`, `--jobs N`
//! (0 = all hardware threads; output is identical at any job count),
//! `--no-inline`, `--no-clone`, `--outline`, `--train N` (PGO training
//! run with scale N), `--emit-ir PATH` (`-` for stdout), `--run`,
//! `--trace N|PATH` (a count prints the first N executed VM instructions
//! under `--run`; a path writes the optimizer's Chrome trace-event JSON),
//! `--explain[=FN[:bN.iM]]` (print inline/clone/outline/pure-call decision
//! provenance, optionally filtered to a function or exact site), `--sim`,
//! `--arg N`, `--tier tree|bytecode` (VM execution engine for `--run`,
//! `--train`, and `--sim`), `--verify-each`,
//! `--check off|structural|strict`.

use aggressive_inlining::{analysis, frontc, fuzz, hlo, ir, lint, pgo, profile, serve, sim, vm};
use std::process::ExitCode;

/// Compile-time capabilities baked into this binary; the workspace has no
/// optional cargo features, so the list is static.
const FEATURES: &str = "serve pgo clone outline sim lint";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => ("help", &args[..]),
    };
    let result = match cmd {
        "build" => build(rest).map(|_| ExitCode::SUCCESS),
        "opt" => opt_ir(rest).map(|_| ExitCode::SUCCESS),
        "run" => run_plain(rest).map(|_| ExitCode::SUCCESS),
        "lint" => lint_cmd(rest),
        "classify" => classify(rest).map(|_| ExitCode::SUCCESS),
        "fuzz" => fuzz_cmd(rest),
        "serve" => serve_cmd(rest).map(|_| ExitCode::SUCCESS),
        "remote" => remote_cmd(rest).map(|_| ExitCode::SUCCESS),
        "--version" | "-V" | "version" => {
            println!("hloc {} (features: {FEATURES})", env!("CARGO_PKG_VERSION"));
            Ok(ExitCode::SUCCESS)
        }
        "help" | "--help" | "-h" => {
            print_help();
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`; try `hloc help`")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("hloc: {msg}");
            ExitCode::from(2)
        }
    }
}

fn print_help() {
    println!(
        "hloc — MinC compiler with the PLDI'97 aggressive inliner/cloner

USAGE:
  hloc build [OPTIONS] <file.mc>...
  hloc opt [OPTIONS] <file.ir>         re-optimize dumped IR (isom-style)
  hloc run <file.mc>... [--arg N] [--tier tree|bytecode]
           [--push-profile ADDR]       run; also push the run's profile to
                                       a daemon (continuous PGO)
  hloc lint <file.mc>... [--pedantic]  static-analysis report (exit 1 on findings)
  hloc classify <file.mc>...
  hloc fuzz [--seed S] [--iters N] [--budget-secs T] [--corpus DIR]
            [--stop-after N] [--daemon-every N] [--quick] [--quiet]
                                       differential-fuzz the optimizer
                                       (exit 1 when findings are written)
  hloc serve [--addr A] [--workers N] [--queue N] [--cache N]
            [--pgo-threshold M] [--pgo-cap N] [--pgo-store PATH]
            [--log PATH] [--log-stderr] [--slow-ms N] [--flight-cap N]
                                       run the optimization daemon in-process
  hloc remote <addr> build [OPTIONS] <file.mc>...
                                       optimize on a running daemon
                                       (--server-profile: use the daemon's
                                       continuously-pushed profile aggregate;
                                       --trace PATH: fetch the request's trace
                                       and write Chrome trace-event JSON;
                                       --explain-remote[=FILTER]: print the
                                       daemon-side span tree and decisions)
  hloc remote <addr> profile push [--key K | <file.mc>...] --delta FILE
                                  [--advance N]
                                       merge a profile delta into the daemon
  hloc remote <addr> profile stats [--key K | <file.mc>...]
                                       profile-store stats (+ merged profile
                                       text when a program is named)
  hloc remote <addr> trace <id>        print a stored request trace (span tree,
                                       decisions, per-phase timings)
  hloc remote <addr> flight            dump the daemon's flight recorder
  hloc remote <addr> top               per-phase latency quantiles (p50/95/99)
  hloc remote <addr> stats|metrics|ping|shutdown
  hloc --version                       version + enabled features

BUILD OPTIONS:
  --scope module|program   visibility scope (default: program)
  --budget N               compile-time budget percent (default: 100)
  --passes N               clone+inline passes (default: 4)
  --jobs N                 worker threads for per-function stages (default 1,
                           0 = all hardware threads; same output at any N)
  --no-inline              disable the inlining passes
  --no-clone               disable the cloning passes
  --no-ipa                 disable the interprocedural-summary stage
  --no-incremental         ask a daemon for a full rebuild instead of
                           function-grain incremental recompilation
  --outline                enable aggressive outlining (paper's future work)
  --train N                profile-guided: training run with scale argument N
  --arg N                  argument passed to main for --run/--sim (default 0)
  --tier tree|bytecode     VM execution engine for --run/--train/--sim
                           (default: tree; both tiers behave identically)
  --emit-ir PATH           write optimized IR text to PATH ('-' = stdout)
  --run                    execute the optimized program on the VM
  --trace N                with --run: print the first N executed instructions
  --trace PATH             write the optimizer's span/decision trace as Chrome
                           trace-event JSON to PATH (load in Perfetto)
  --explain[=FN[:bN.iM]]   print decision provenance: why every call site was
                           inlined/cloned/outlined or not, with reason codes,
                           budgets and profile weights; optionally filtered to
                           a function name or one exact site
  --sim                    execute under the PA8000 model and print stats
  --verify-each            run the full hlo-lint battery after every pipeline
                           stage; fail if any stage introduces a diagnostic
  --check LEVEL            verify-each level: off, structural, or strict"
    );
}

struct Parsed {
    files: Vec<String>,
    opts: hlo::HloOptions,
    train: Option<i64>,
    arg: i64,
    emit_ir: Option<String>,
    do_run: bool,
    do_sim: bool,
    tier: vm::Tier,
    trace: Option<u64>,
    trace_out: Option<String>,
    explain: Option<Option<String>>,
}

fn parse_build_args(rest: &[String]) -> Result<Parsed, String> {
    let mut p = Parsed {
        files: Vec::new(),
        opts: hlo::HloOptions::default(),
        train: None,
        arg: 0,
        emit_ir: None,
        do_run: false,
        do_sim: false,
        tier: vm::Tier::default(),
        trace: None,
        trace_out: None,
        explain: None,
    };
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("`{name}` needs a value"))
        };
        match a.as_str() {
            "--scope" => {
                p.opts.scope = match value("--scope")?.as_str() {
                    "module" => hlo::Scope::WithinModule,
                    "program" => hlo::Scope::CrossModule,
                    other => return Err(format!("bad scope `{other}`")),
                }
            }
            "--budget" => {
                p.opts.budget_percent = value("--budget")?
                    .parse()
                    .map_err(|_| "bad --budget value".to_string())?
            }
            "--passes" => {
                p.opts.passes = value("--passes")?
                    .parse()
                    .map_err(|_| "bad --passes value".to_string())?
            }
            "--jobs" => {
                p.opts.jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| "bad --jobs value".to_string())?
            }
            "--no-inline" => p.opts.enable_inline = false,
            "--no-clone" => p.opts.enable_clone = false,
            "--no-ipa" => p.opts.ipa = false,
            "--no-incremental" => p.opts.incremental = false,
            "--outline" => p.opts.enable_outline = true,
            "--verify-each" => p.opts.check = hlo::CheckLevel::Strict,
            "--check" => p.opts.check = value("--check")?.parse()?,
            "--train" => {
                p.train = Some(
                    value("--train")?
                        .parse()
                        .map_err(|_| "bad --train value".to_string())?,
                )
            }
            "--arg" => {
                p.arg = value("--arg")?
                    .parse()
                    .map_err(|_| "bad --arg value".to_string())?
            }
            "--emit-ir" => p.emit_ir = Some(value("--emit-ir")?),
            "--tier" => p.tier = value("--tier")?.parse()?,
            "--trace" => {
                // Disambiguate by value shape: a bare count keeps the
                // historical meaning (print the first N executed VM
                // instructions under --run); anything else is a path the
                // optimizer's Chrome trace-event JSON is written to.
                let v = value("--trace")?;
                match v.parse::<u64>() {
                    Ok(n) => p.trace = Some(n),
                    Err(_) => p.trace_out = Some(v),
                }
            }
            "--explain" => p.explain = Some(None),
            e if e.starts_with("--explain=") => {
                p.explain = Some(Some(e["--explain=".len()..].to_string()))
            }
            "--run" => p.do_run = true,
            "--sim" => p.do_sim = true,
            f if !f.starts_with('-') => p.files.push(f.to_string()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if p.files.is_empty() {
        return Err("no input files".to_string());
    }
    Ok(p)
}

fn load_sources(files: &[String]) -> Result<Vec<(String, String)>, String> {
    files
        .iter()
        .map(|f| {
            let src = std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?;
            let stem = std::path::Path::new(f)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or(f)
                .to_string();
            Ok((stem, src))
        })
        .collect()
}

fn compile(files: &[String]) -> Result<ir::Program, String> {
    let sources = load_sources(files)?;
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    frontc::compile(&refs).map_err(|e| e.to_string())
}

fn build(rest: &[String]) -> Result<(), String> {
    let parsed = parse_build_args(rest)?;
    let mut program = compile(&parsed.files)?;
    let db = match parsed.train {
        Some(train_arg) => {
            let exec = vm::ExecOptions {
                tier: parsed.tier,
                ..Default::default()
            };
            let (db, out) = profile::collect_profile(&program, &[train_arg], &exec)
                .map_err(|e| format!("training run failed: {e}"))?;
            eprintln!(
                "training run: {} instructions, {} functions profiled",
                out.retired,
                db.len()
            );
            Some(db)
        }
        None => None,
    };
    let mut tracer = tracer_for(&parsed);
    let report = hlo::optimize_traced(&mut program, db.as_ref(), &parsed.opts, &mut tracer);
    eprintln!("{report}");
    if report.outlines > 0 {
        eprintln!("outlined {} cold regions", report.outlines);
    }
    emit_trace_outputs(&parsed, &tracer)?;
    check_verify_each(&report)?;
    if let Some(path) = &parsed.emit_ir {
        let text = ir::program_to_text(&program);
        if path == "-" {
            print!("{text}");
        } else {
            std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        }
    }
    run_and_sim(&program, &parsed)
}

/// `hloc opt`: the isom-style path — load IR text previously written with
/// `--emit-ir`, run HLO over it, and write/execute the result. Accepts
/// the same options as `build` except training (profiles are carried in
/// the IR text itself).
fn opt_ir(rest: &[String]) -> Result<(), String> {
    let parsed = parse_build_args(rest)?;
    if parsed.files.len() != 1 {
        return Err("`hloc opt` takes exactly one .ir file".to_string());
    }
    if parsed.train.is_some() {
        return Err("`hloc opt` carries profiles in the IR; use --train with `build`".to_string());
    }
    let text = std::fs::read_to_string(&parsed.files[0])
        .map_err(|e| format!("{}: {e}", parsed.files[0]))?;
    let mut program = ir::parse_program_text(&text).map_err(|e| e.to_string())?;
    ir::verify_program(&program).map_err(|e| format!("invalid IR: {e}"))?;
    let mut tracer = tracer_for(&parsed);
    let report = hlo::optimize_traced(&mut program, None, &parsed.opts, &mut tracer);
    eprintln!("{report}");
    emit_trace_outputs(&parsed, &tracer)?;
    check_verify_each(&report)?;
    if let Some(path) = &parsed.emit_ir {
        let out = ir::program_to_text(&program);
        if path == "-" {
            print!("{out}");
        } else {
            std::fs::write(path, out).map_err(|e| format!("{path}: {e}"))?;
        }
    }
    run_and_sim(&program, &parsed)
}

/// The `--run` / `--sim` tail shared by `build` and `opt`.
fn run_and_sim(program: &ir::Program, parsed: &Parsed) -> Result<(), String> {
    if parsed.do_run {
        let out = run_maybe_traced(program, parsed.arg, parsed.tier, parsed.trace)?;
        for v in &out.output {
            println!("{v}");
        }
        eprintln!(
            "exit value {} ({} instructions, checksum {:#x})",
            out.ret, out.retired, out.checksum
        );
    }
    if parsed.do_sim {
        let exec = vm::ExecOptions {
            tier: parsed.tier,
            ..Default::default()
        };
        let (stats, out) = sim::simulate(
            program,
            &[parsed.arg],
            &exec,
            &sim::MachineConfig::default(),
        )
        .map_err(|e| format!("simulation failed: {e}"))?;
        eprintln!("exit value {}", out.ret);
        eprintln!("{stats}");
    }
    Ok(())
}

/// The tracer a `build`/`opt` invocation asked for: decision-level when
/// either `--explain` or a `--trace` export wants provenance, otherwise a
/// free disabled tracer.
fn tracer_for(parsed: &Parsed) -> hlo::Tracer {
    if parsed.explain.is_some() || parsed.trace_out.is_some() {
        hlo::Tracer::new(hlo::TraceLevel::Decisions)
    } else {
        hlo::Tracer::disabled()
    }
}

/// Writes the Chrome trace-event JSON and/or prints the decision report,
/// as requested by `--trace PATH` / `--explain[=FILTER]`.
fn emit_trace_outputs(parsed: &Parsed, tracer: &hlo::Tracer) -> Result<(), String> {
    if let Some(path) = &parsed.trace_out {
        std::fs::write(path, hlo::chrome_trace_json(tracer)).map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "trace: wrote {path} ({} spans, {} decisions)",
            tracer.span_count(),
            tracer.decisions().len()
        );
    }
    if let Some(filter) = &parsed.explain {
        let text = tracer.decision_report(filter.as_deref());
        if text.is_empty() {
            match filter {
                Some(f) => println!("explain: no decisions matched `{f}`"),
                None => println!("explain: no decisions recorded"),
            }
        } else {
            print!("{text}");
        }
    }
    Ok(())
}

/// Fails the build when a verify-each run attributed any diagnostic to a
/// pipeline stage (input defects are reported but do not fail — the
/// pipeline is not to blame for them).
fn check_verify_each(report: &hlo::HloReport) -> Result<(), String> {
    let introduced = report.introduced_diagnostics().count();
    if introduced > 0 {
        return Err(format!(
            "verify-each: {introduced} diagnostics introduced by the pipeline"
        ));
    }
    Ok(())
}

/// `hloc lint`: compile and report every structural and lint finding
/// without optimizing. Exit status 1 when anything is found.
fn lint_cmd(rest: &[String]) -> Result<ExitCode, String> {
    let mut files = Vec::new();
    let mut opts = lint::LintOptions::default();
    for a in rest {
        match a.as_str() {
            "--pedantic" => opts.pedantic = true,
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if files.is_empty() {
        return Err("no input files".to_string());
    }
    let program = compile(&files)?;
    let report = lint::lint_report(&program, &opts);
    if report.diags.is_empty() {
        eprintln!("lint: no diagnostics");
        return Ok(ExitCode::SUCCESS);
    }
    println!("{report}");
    Ok(ExitCode::from(1))
}

fn run_maybe_traced(
    program: &ir::Program,
    arg: i64,
    tier: vm::Tier,
    trace: Option<u64>,
) -> Result<vm::ExecOutcome, String> {
    let exec = vm::ExecOptions {
        tier,
        ..Default::default()
    };
    match trace {
        Some(n) => {
            let stderr = std::io::stderr().lock();
            let mut t = vm::TraceMonitor::new(program, stderr, n);
            vm::run_with_monitor(program, &[arg], &exec, &mut t)
        }
        None => vm::run_program(program, &[arg], &exec),
    }
    .map_err(|e| format!("run failed: {e}"))
}

fn run_plain(rest: &[String]) -> Result<(), String> {
    let mut files = Vec::new();
    let mut arg = 0i64;
    let mut tier = vm::Tier::default();
    let mut push_addr: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--arg" => {
                arg = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "bad --arg".to_string())?
            }
            "--tier" => {
                tier = it
                    .next()
                    .ok_or_else(|| "`--tier` needs a value".to_string())?
                    .parse()?
            }
            "--push-profile" => {
                push_addr = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| "`--push-profile` needs a daemon address".to_string())?,
                )
            }
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if files.is_empty() {
        return Err("no input files".to_string());
    }
    let program = compile(&files)?;
    let exec = vm::ExecOptions {
        tier,
        ..Default::default()
    };
    // With --push-profile the run doubles as a training run: collect the
    // execution profile and stream it into the daemon's aggregate for
    // this program (keyed so a later `remote build --server-profile` of
    // the same sources finds it).
    let out = match &push_addr {
        Some(addr) => {
            let (db, out) = profile::collect_profile(&program, &[arg], &exec)
                .map_err(|e| format!("run failed: {e}"))?;
            let key = pgo::program_key(&program);
            let mut client = serve::Client::connect(addr.as_str())
                .map_err(|e| format!("connect {addr}: {e}"))?;
            let ack = client
                .profile_push(&serve::ProfilePushRequest {
                    program: key.clone(),
                    delta: db.to_text(),
                    advance: 0,
                })
                .map_err(|e| e.to_string())?;
            eprintln!(
                "pushed profile for {key}: generation {} ({} pushes, {} functions, {} bytes)",
                ack.generation, ack.pushes, ack.functions, ack.resident_bytes
            );
            out
        }
        None => vm::run_program(&program, &[arg], &exec).map_err(|e| format!("run failed: {e}"))?,
    };
    for v in &out.output {
        println!("{v}");
    }
    eprintln!(
        "exit value {} ({} instructions, checksum {:#x})",
        out.ret, out.retired, out.checksum
    );
    Ok(())
}

/// `hloc serve`: run the optimization daemon in the foreground — the same
/// server `hlod` wraps, for when a separate binary is inconvenient.
fn serve_cmd(rest: &[String]) -> Result<(), String> {
    let mut addr = "127.0.0.1:7457".to_string();
    let mut cfg = serve::ServeConfig::default();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("`{name}` needs a value"))
        };
        match a.as_str() {
            "--addr" => addr = value("--addr")?,
            "--workers" => {
                cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "bad --workers value".to_string())?
            }
            "--queue" => {
                cfg.queue_cap = value("--queue")?
                    .parse()
                    .map_err(|_| "bad --queue value".to_string())?
            }
            "--cache" => {
                cfg.cache_cap = value("--cache")?
                    .parse()
                    .map_err(|_| "bad --cache value".to_string())?
            }
            "--pgo-threshold" => {
                cfg.pgo_threshold_millis = value("--pgo-threshold")?
                    .parse()
                    .map_err(|_| "bad --pgo-threshold value".to_string())?
            }
            "--pgo-cap" => {
                cfg.pgo_cap = value("--pgo-cap")?
                    .parse()
                    .map_err(|_| "bad --pgo-cap value".to_string())?
            }
            "--pgo-store" => {
                cfg.pgo_store_path = Some(std::path::PathBuf::from(value("--pgo-store")?))
            }
            "--log" => cfg.event_log_path = Some(std::path::PathBuf::from(value("--log")?)),
            "--log-stderr" => cfg.log_stderr = true,
            "--slow-ms" => {
                cfg.slow_ms = Some(
                    value("--slow-ms")?
                        .parse()
                        .map_err(|_| "bad --slow-ms value".to_string())?,
                )
            }
            "--flight-cap" => {
                cfg.flight_cap = value("--flight-cap")?
                    .parse()
                    .map_err(|_| "bad --flight-cap value".to_string())?
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let banner_cfg = cfg.clone();
    let server =
        serve::Server::spawn(addr.as_str(), cfg).map_err(|e| format!("bind {addr}: {e}"))?;
    serve::server::banner(server.local_addr(), &banner_cfg);
    server.wait();
    eprintln!("hloc serve: drained, exiting");
    Ok(())
}

/// `hloc remote <addr> build ...`: ship a build to a running daemon. Takes
/// the optimizer subset of the `build` options plus `--profile PATH`,
/// `--deadline-ms N`, and `--train-arg N` (execute the optimized program
/// once on the daemon's bytecode tier, feeding its tier metrics);
/// run/sim stay local-only.
fn remote_cmd(rest: &[String]) -> Result<(), String> {
    let (addr, rest) = rest.split_first().ok_or(
        "usage: hloc remote <addr> build|profile|stats|metrics|trace|flight|top|ping|shutdown",
    )?;
    let (sub, rest) = rest.split_first().ok_or(
        "usage: hloc remote <addr> build|profile|stats|metrics|trace|flight|top|ping|shutdown",
    )?;
    let mut client =
        serve::Client::connect(addr.as_str()).map_err(|e| format!("connect {addr}: {e}"))?;
    match sub.as_str() {
        "build" => remote_build(&mut client, rest),
        "profile" => remote_profile(&mut client, rest),
        "stats" => {
            let st = client.stats().map_err(|e| e.to_string())?;
            println!("uptime          {} ms", st.uptime_ms);
            println!("requests        {}", st.requests);
            println!("cache hits      {}", st.hits);
            println!("cache misses    {}", st.misses);
            println!("stale hits      {}", st.stale_hits);
            println!("evictions       {}", st.evictions);
            println!("func cone hits  {}", st.func_hits);
            println!("func cone new   {}", st.func_misses);
            println!("cached programs {}", st.entries);
            println!("cached bytes    {}", st.cache_bytes);
            println!(
                "partitions      {} spliced, {} rebuilt",
                st.partition_hits, st.partition_rebuilds
            );
            println!("incr fallbacks  {}", st.incr_fallbacks);
            println!("partition store {}", st.partition_entries);
            println!("busy rejections {}", st.busy);
            println!("deadline missed {}", st.deadline_missed);
            println!("request errors  {}", st.errors);
            println!("profile pushes  {}", st.pgo_pushes);
            println!("reoptimizations {}", st.reoptimizations);
            println!("pgo programs    {}", st.pgo_programs);
            println!("pgo bytes       {}", st.pgo_bytes);
            println!("slow requests   {}", st.slow_requests);
            println!("flight records  {}", st.flight_records);
            println!("traces stored   {}", st.traces_stored);
            println!("events emitted  {}", st.events_emitted);
            for (stage, wall, work) in &st.stages {
                println!("stage {stage:<12} {wall:>10} us wall {work:>10} us work");
            }
            for (phase, count, sum) in &st.latencies {
                let mean = if *count > 0 { sum / count } else { 0 };
                println!("latency {phase:<12} {count:>6} obs {mean:>10} us mean");
            }
            for (phase, p50, p95, p99) in &st.quantiles {
                println!("quantile {phase:<11} p50 {p50:>8} us  p95 {p95:>8} us  p99 {p99:>8} us");
            }
            Ok(())
        }
        "metrics" => {
            let text = client.metrics().map_err(|e| e.to_string())?;
            print!("{text}");
            Ok(())
        }
        "ping" => {
            client.ping().map_err(|e| e.to_string())?;
            println!("pong");
            Ok(())
        }
        "trace" => {
            let id = rest.first().ok_or("usage: hloc remote <addr> trace <id>")?;
            let t = client.trace_fetch(id).map_err(|e| e.to_string())?;
            println!("trace {} ({} us wall, cache {})", t.trace_id, t.wall_us, {
                // The cache section is CacheOutcome text; its first line
                // (`hit true|false`) is the headline.
                t.cache.lines().next().unwrap_or("?").to_string()
            });
            for (phase, us) in &t.phases {
                println!("phase {phase:<12} {us:>10} us");
            }
            print!("{}", t.spans);
            print!("{}", t.decisions);
            Ok(())
        }
        "flight" => {
            let (dump, admitted) = client.flight_dump().map_err(|e| e.to_string())?;
            let kept = dump.lines().count();
            println!("flight recorder: {kept} of {admitted} admitted requests retained");
            print!("{dump}");
            Ok(())
        }
        "top" => {
            let st = client.stats().map_err(|e| e.to_string())?;
            println!(
                "{} requests over {} ms uptime ({} slow, {} errors)",
                st.requests, st.uptime_ms, st.slow_requests, st.errors
            );
            println!(
                "{:<12} {:>8} {:>12} {:>10} {:>10} {:>10}",
                "phase", "count", "mean(us)", "p50(us)", "p95(us)", "p99(us)"
            );
            for (phase, p50, p95, p99) in &st.quantiles {
                let (count, mean) = st
                    .latencies
                    .iter()
                    .find(|(p, _, _)| p == phase)
                    .map(|(_, c, s)| (*c, if *c > 0 { s / c } else { 0 }))
                    .unwrap_or((0, 0));
                println!("{phase:<12} {count:>8} {mean:>12} {p50:>10} {p95:>10} {p99:>10}");
            }
            Ok(())
        }
        "shutdown" => {
            client.shutdown().map_err(|e| e.to_string())?;
            println!("daemon draining");
            Ok(())
        }
        other => Err(format!("unknown remote subcommand `{other}`")),
    }
}

fn remote_build(client: &mut serve::Client, rest: &[String]) -> Result<(), String> {
    let mut files = Vec::new();
    let mut opts = hlo::HloOptions::default();
    let mut profile_path: Option<String> = None;
    let mut server_profile = false;
    let mut deadline_ms: Option<u64> = None;
    let mut train_arg: Option<i64> = None;
    let mut emit_ir: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut explain_remote: Option<Option<String>> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("`{name}` needs a value"))
        };
        match a.as_str() {
            "--scope" => {
                opts.scope = match value("--scope")?.as_str() {
                    "module" => hlo::Scope::WithinModule,
                    "program" => hlo::Scope::CrossModule,
                    other => return Err(format!("bad scope `{other}`")),
                }
            }
            "--budget" => {
                opts.budget_percent = value("--budget")?
                    .parse()
                    .map_err(|_| "bad --budget value".to_string())?
            }
            "--passes" => {
                opts.passes = value("--passes")?
                    .parse()
                    .map_err(|_| "bad --passes value".to_string())?
            }
            "--no-inline" => opts.enable_inline = false,
            "--no-clone" => opts.enable_clone = false,
            "--no-ipa" => opts.ipa = false,
            "--no-incremental" => opts.incremental = false,
            "--outline" => opts.enable_outline = true,
            "--profile" => profile_path = Some(value("--profile")?),
            "--server-profile" => server_profile = true,
            "--deadline-ms" => {
                deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|_| "bad --deadline-ms value".to_string())?,
                )
            }
            "--train-arg" => {
                train_arg = Some(
                    value("--train-arg")?
                        .parse()
                        .map_err(|_| "bad --train-arg value".to_string())?,
                )
            }
            "--emit-ir" => emit_ir = Some(value("--emit-ir")?),
            "--trace" => trace_out = Some(value("--trace")?),
            "--explain-remote" => explain_remote = Some(None),
            e if e.starts_with("--explain-remote=") => {
                explain_remote = Some(Some(e["--explain-remote=".len()..].to_string()))
            }
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => return Err(format!("unknown remote build option `{other}`")),
        }
    }
    if files.is_empty() {
        return Err("no input files".to_string());
    }
    let profile = match (&profile_path, server_profile) {
        (Some(_), true) => {
            return Err("--profile and --server-profile are mutually exclusive".to_string())
        }
        (Some(p), false) => {
            serve::ProfileSpec::Text(std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?)
        }
        (None, true) => serve::ProfileSpec::Server,
        (None, false) => serve::ProfileSpec::None,
    };
    // A trace id is minted only when something will consume the trace —
    // untraced requests skip the daemon's tracer entirely.
    let trace_id = (trace_out.is_some() || explain_remote.is_some()).then(serve::mint_trace_id);
    let req = serve::OptimizeRequest {
        options: opts,
        source: serve::SourceKind::Minc(load_sources(&files)?),
        profile,
        deadline_ms,
        train_arg,
        trace_id: trace_id.clone(),
    };
    let resp = client.optimize(&req).map_err(|e| e.to_string())?;
    eprintln!("{}", resp.report);
    if let Some(train) = &resp.train {
        eprintln!("train: {train}");
    }
    eprintln!(
        "cache: {} (cone keys: {} known, {} new{})",
        if resp.outcome.stale {
            "stale, re-optimized"
        } else if resp.outcome.hit {
            "hit"
        } else {
            "miss"
        },
        resp.outcome.func_hits,
        resp.outcome.func_misses,
        if resp.outcome.partition_hits > 0 || resp.outcome.partition_rebuilds > 0 {
            format!(
                "; partitions: {} spliced, {} rebuilt",
                resp.outcome.partition_hits, resp.outcome.partition_rebuilds
            )
        } else if resp.outcome.incr_fallback {
            "; incremental fallback".to_string()
        } else {
            String::new()
        }
    );
    if let Some(p) = &resp.pgo {
        eprintln!("pgo: {p}");
    }
    if let Some(id) = &trace_id {
        let trace = client.trace_fetch(id).map_err(|e| e.to_string())?;
        eprintln!("trace: {id} ({} us wall)", trace.wall_us);
        if let Some(filter) = &explain_remote {
            eprint!("{}", trace.spans);
            match filter {
                Some(f) => {
                    for line in trace.decisions.lines().filter(|l| l.contains(f.as_str())) {
                        eprintln!("{line}");
                    }
                }
                None => eprint!("{}", trace.decisions),
            }
        }
        if let Some(path) = &trace_out {
            std::fs::write(path, &trace.chrome).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote {path}");
        }
    }
    match emit_ir.as_deref() {
        Some("-") => print!("{}", resp.ir_text),
        Some(path) => std::fs::write(path, &resp.ir_text).map_err(|e| format!("{path}: {e}"))?,
        None => {}
    }
    Ok(())
}

/// `hloc remote <addr> profile push|stats`: continuous-PGO maintenance.
/// The target program is named either by `--key` (16-hex program key) or
/// by its MinC sources, which are compiled locally just to derive the
/// same key the daemon computed at optimize time.
fn remote_profile(client: &mut serve::Client, rest: &[String]) -> Result<(), String> {
    const USAGE: &str =
        "usage: hloc remote <addr> profile push [--key K | <file.mc>...] --delta FILE \
         [--advance N] | profile stats [--key K | <file.mc>...]";
    let (sub, rest) = rest.split_first().ok_or(USAGE)?;
    let mut key: Option<String> = None;
    let mut delta_path: Option<String> = None;
    let mut advance = 0u64;
    let mut files = Vec::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("`{name}` needs a value"))
        };
        match a.as_str() {
            "--key" => key = Some(value("--key")?),
            "--delta" => delta_path = Some(value("--delta")?),
            "--advance" => {
                advance = value("--advance")?
                    .parse()
                    .map_err(|_| "bad --advance value".to_string())?
            }
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => return Err(format!("unknown profile option `{other}`")),
        }
    }
    let key = match (key, files.is_empty()) {
        (Some(k), _) => Some(k),
        (None, false) => Some(pgo::program_key(&compile(&files)?)),
        (None, true) => None,
    };
    match sub.as_str() {
        "push" => {
            let program = key.ok_or("`profile push` needs --key or source files")?;
            let path = delta_path.ok_or("`profile push` needs --delta FILE")?;
            let delta = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
            let ack = client
                .profile_push(&serve::ProfilePushRequest {
                    program: program.clone(),
                    delta,
                    advance,
                })
                .map_err(|e| e.to_string())?;
            println!(
                "pushed profile for {program}: generation {} ({} pushes, {} functions, {} bytes)",
                ack.generation, ack.pushes, ack.functions, ack.resident_bytes
            );
            Ok(())
        }
        "stats" => {
            let reply = client
                .profile_stats(key.as_deref())
                .map_err(|e| e.to_string())?;
            print!("{}", reply.text);
            if let Some(profile) = &reply.profile {
                println!("profile:");
                print!("{profile}");
            }
            Ok(())
        }
        other => Err(format!("unknown profile subcommand `{other}`; {USAGE}")),
    }
}

/// `hloc fuzz`: run a differential fuzzing campaign against the optimizer
/// and write shrunk reproducers for anything it finds. Exit status 1 when
/// there are findings.
fn fuzz_cmd(rest: &[String]) -> Result<ExitCode, String> {
    let mut cfg = fuzz::CampaignConfig {
        corpus_dir: Some(std::path::PathBuf::from("crates/fuzz/corpus")),
        quiet: false,
        ..Default::default()
    };
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("`{name}` needs a value"))
        };
        match a.as_str() {
            "--seed" => {
                let v = value("--seed")?;
                let digits = v.strip_prefix("0x").unwrap_or(&v);
                let radix = if digits.len() < v.len() { 16 } else { 10 };
                cfg.seed = u64::from_str_radix(digits, radix)
                    .map_err(|_| "bad --seed value".to_string())?;
            }
            "--iters" => {
                cfg.iters = value("--iters")?
                    .parse()
                    .map_err(|_| "bad --iters value".to_string())?
            }
            "--budget-secs" => {
                let secs: u64 = value("--budget-secs")?
                    .parse()
                    .map_err(|_| "bad --budget-secs value".to_string())?;
                cfg.budget = Some(std::time::Duration::from_secs(secs));
            }
            "--corpus" => cfg.corpus_dir = Some(value("--corpus")?.into()),
            "--stop-after" => {
                cfg.stop_after = value("--stop-after")?
                    .parse()
                    .map_err(|_| "bad --stop-after value".to_string())?
            }
            "--daemon-every" => {
                cfg.daemon_every = value("--daemon-every")?
                    .parse()
                    .map_err(|_| "bad --daemon-every value".to_string())?
            }
            "--quick" => cfg.oracle = fuzz::OracleConfig::quick(),
            "--quiet" => cfg.quiet = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let report = fuzz::run_campaign(&cfg);
    eprintln!(
        "fuzz: {} executed ({} passed, {} skipped, {} mutants discarded), \
         {} daemon checks, {} findings in {:.1?}",
        report.executed,
        report.passed,
        report.skipped,
        report.mutants_discarded,
        report.daemon_checks,
        report.findings.len(),
        report.elapsed
    );
    for f in &report.findings {
        eprintln!(
            "  {} ({}) iter {} -> {} lines{}",
            f.finding.kind,
            f.finding.config,
            f.iter,
            f.lines,
            f.path
                .as_deref()
                .map(|p| format!(", {}", p.display()))
                .unwrap_or_default()
        );
    }
    Ok(if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn classify(rest: &[String]) -> Result<(), String> {
    if rest.is_empty() {
        return Err("no input files".to_string());
    }
    let program = compile(rest)?;
    let c = analysis::classify_sites(&program);
    println!("external      {:>6}", c.external);
    println!("indirect      {:>6}", c.indirect);
    println!("cross-module  {:>6}", c.cross_module);
    println!("within-module {:>6}", c.within_module);
    println!("recursive     {:>6}", c.recursive);
    println!("total         {:>6}", c.total());
    Ok(())
}
