//! `cargo tier2` — the repository's second-tier quality gate: clippy with
//! warnings denied across all targets, then `rustfmt` in check mode.

use std::process::{Command, ExitCode};

fn run(args: &[&str]) -> bool {
    eprintln!("tier2: cargo {}", args.join(" "));
    Command::new(env!("CARGO"))
        .args(args)
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

fn main() -> ExitCode {
    let clippy = run(&["clippy", "--all-targets", "--", "-D", "warnings"]);
    let fmt = run(&["fmt", "--all", "--check"]);
    if clippy && fmt {
        eprintln!("tier2: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "tier2: FAILED ({}{})",
            if clippy { "" } else { "clippy " },
            if fmt { "" } else { "fmt" }
        );
        ExitCode::FAILURE
    }
}
