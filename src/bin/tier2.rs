//! `cargo tier2` — the repository's second-tier quality gate: clippy with
//! warnings denied across all targets, then `rustfmt` in check mode.
//!
//! A second mode, `tier2 trace-schema <file.json>`, validates a trace file
//! written by `hloc build --trace PATH` against the Chrome trace-event
//! shape (CI runs a traced build and feeds the output through this).
//!
//! The default gate also checks that every decision reason code the
//! pipeline can emit (`hlo::all_reason_codes()`) is documented in the
//! DESIGN.md §11 table, so a new reason cannot ship undocumented.

use aggressive_inlining::hlo;
use std::process::{Command, ExitCode};

fn run(args: &[&str]) -> bool {
    eprintln!("tier2: cargo {}", args.join(" "));
    Command::new(env!("CARGO"))
        .args(args)
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

/// Checks that `text` is valid JSON shaped like a Chrome trace-event
/// document. The actual schema lives next to the exporter
/// ([`hlo::validate_chrome_trace`]) so daemon-side trace replies and this
/// gate enforce the same contract; this is a thin delegation.
fn check_trace_schema(text: &str) -> Result<usize, String> {
    hlo::validate_chrome_trace(text)
}

/// Every reason code the pipeline can emit must appear (backtick-quoted)
/// in `design`; returns the codes that do not.
fn undocumented_reason_codes(design: &str) -> Vec<&'static str> {
    hlo::all_reason_codes()
        .iter()
        .copied()
        .filter(|code| !design.contains(&format!("`{code}`")))
        .collect()
}

fn check_reason_codes() -> bool {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/DESIGN.md");
    let design = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tier2: cannot read {path}: {e}");
            return false;
        }
    };
    let missing = undocumented_reason_codes(&design);
    if missing.is_empty() {
        eprintln!(
            "tier2: all {} reason codes documented in DESIGN.md",
            hlo::all_reason_codes().len()
        );
        true
    } else {
        eprintln!("tier2: reason codes missing from the DESIGN.md table: {missing:?}");
        false
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace-schema") {
        let Some(path) = args.get(1) else {
            eprintln!("usage: tier2 trace-schema <file.json>");
            return ExitCode::FAILURE;
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("tier2: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match check_trace_schema(&text) {
            Ok(n) => {
                eprintln!("tier2: {path} is a valid Chrome trace ({n} events)");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("tier2: {path} is not a valid Chrome trace: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let clippy = run(&["clippy", "--all-targets", "--", "-D", "warnings"]);
    let fmt = run(&["fmt", "--all", "--check"]);
    let reasons = check_reason_codes();
    if clippy && fmt && reasons {
        eprintln!("tier2: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "tier2: FAILED ({}{}{})",
            if clippy { "" } else { "clippy " },
            if fmt { "" } else { "fmt " },
            if reasons { "" } else { "reason-codes" }
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::{check_trace_schema, undocumented_reason_codes};
    use aggressive_inlining::hlo;

    #[test]
    fn shipped_design_documents_every_reason_code() {
        let design = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/DESIGN.md"));
        assert_eq!(undocumented_reason_codes(design), Vec::<&str>::new());
    }

    #[test]
    fn missing_codes_are_reported() {
        let partial = "only `accepted` and `pure-call-removed` are here";
        let missing = undocumented_reason_codes(partial);
        assert!(missing.contains(&"ipa-pure-callee"));
        assert!(!missing.contains(&"accepted"));
    }

    #[test]
    fn real_exporter_output_passes_the_schema_check() {
        let mut t = hlo::Tracer::new(hlo::TraceLevel::Spans);
        let root = t.push("optimize");
        t.leaf(
            "annotate",
            std::time::Duration::from_micros(5),
            std::time::Duration::from_micros(5),
        );
        t.pop(root, std::time::Duration::from_micros(5));
        let n = check_trace_schema(&hlo::chrome_trace_json(&t)).unwrap();
        assert_eq!(n, 3); // metadata + 2 spans
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(check_trace_schema("not json").is_err());
        assert!(check_trace_schema("{\"traceEvents\": 3}").is_err());
        // Parses, but has no complete span events.
        assert!(
            check_trace_schema("{\"traceEvents\":[{\"name\":\"m\",\"ph\":\"M\",\"ts\":0}]}")
                .is_err()
        );
    }
}
