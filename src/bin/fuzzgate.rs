//! `cargo fuzzgate` — the CI fuzzing gate.
//!
//! Four phases, all with fixed seeds so the gate is deterministic:
//!
//! 1. **Clean sweep** — ≥500 generated cases through the full oracle
//!    matrix. Any finding fails the gate: the optimizer must not
//!    miscompile, panic, emit unverifiable IR, or be jobs-nondeterministic
//!    on anything the generators produce.
//! 2. **Sensitivity check** — the same pipeline with the planted inliner
//!    fault armed (`hlo::fault`). The gate *must* find at least one
//!    divergence and shrink it to a small reproducer; if it cannot, the
//!    oracle has gone blind and a green phase 1 means nothing.
//! 3. **Summary sensitivity** — the same check with the planted
//!    interprocedural-summary fault armed (`ipa::fault`): every summary
//!    deliberately claims purity, so the summary-driven pure-call stage
//!    deletes observable calls. The oracle must catch that too — proof it
//!    can see a wrong purity summary, not just a wrong splice.
//! 4. **Incremental sensitivity** — the planted stale-partition-key fault
//!    armed (`serve::fault`): the daemon's partition keys drop their
//!    cone-hash component, so an edited function collides with its stale
//!    cached body and the spliced rebuild serves old code. The campaign's
//!    incremental edit oracle must catch the divergence and shrink it —
//!    proof the byte-identity oracle can see stale partition reuse.
//!
//! Phases 2 and 3 each run twice: once with profile synthesis on the
//! tree tier and once on the bytecode tier, so a planted fault must be
//! catchable end to end no matter which tier feeds the profile.
//!
//! Usage: `cargo fuzzgate [iters]` (default 1000 phase-1 iterations —
//! the bytecode tier runs every candidate ~3× faster than the tree
//! walker alone used to, so the default sweep is deeper at the same
//! wall-clock budget).

use aggressive_inlining::{fuzz, hlo, ipa, serve, vm};
use std::process::ExitCode;

/// Phase-2 reproducers must shrink to at most this many source lines.
const MAX_SHRUNK_LINES: usize = 15;

/// One line of campaign telemetry: case mix by source and mean phase
/// latency per iteration, read back out of the registry the campaign
/// filled.
fn metrics_summary(m: &hlo::MetricsRegistry) -> String {
    let mix = ["gen", "mutate", "irgen"]
        .iter()
        .map(|s| {
            format!(
                "{s}={}",
                m.counter(&format!("fuzz_cases_total{{source=\"{s}\"}}"))
            )
        })
        .collect::<Vec<_>>()
        .join("/");
    let mean = |name: &str| {
        let (count, sum) = m.histogram(name);
        match sum.checked_div(count) {
            Some(mean) => format!("{mean}us"),
            None => "-".to_string(),
        }
    };
    let tier = |t: vm::Tier| {
        let (insts, us) = vm::tier_totals(m, t);
        match insts.checked_div(us.max(1)) {
            Some(mips) if insts > 0 => format!("{mips}Minst/s"),
            _ => "-".to_string(),
        }
    };
    format!(
        "cases {mix}, mean generate {} oracle {} daemon {}, tier tree {} bytecode {}",
        mean("fuzz_generate_us"),
        mean("fuzz_oracle_us"),
        mean("fuzz_daemon_us"),
        tier(vm::Tier::Tree),
        tier(vm::Tier::Bytecode),
    )
}

fn main() -> ExitCode {
    let iters: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("usage: fuzzgate [iters]"))
        .unwrap_or(1000);

    // Phase 1: the optimizer must survive a clean sweep.
    let metrics = hlo::MetricsRegistry::new();
    let clean = fuzz::run_campaign_with(
        &fuzz::CampaignConfig {
            seed: 0x5eed_0001,
            iters,
            daemon_every: 25,
            quiet: true,
            ..Default::default()
        },
        &metrics,
    );
    eprintln!(
        "fuzzgate phase 1: {} executed ({} passed, {} skipped), {} daemon checks, \
         {} findings in {:.1?}",
        clean.executed,
        clean.passed,
        clean.skipped,
        clean.daemon_checks,
        clean.findings.len(),
        clean.elapsed
    );
    eprintln!("fuzzgate metrics: {}", metrics_summary(&metrics));
    if !clean.findings.is_empty() {
        for f in &clean.findings {
            eprintln!(
                "fuzzgate: FINDING {} ({}) at iter {}, {} lines",
                f.finding.kind, f.finding.config, f.iter, f.lines
            );
            eprintln!("{}", f.repro.format());
        }
        return ExitCode::from(1);
    }

    // Phases 2 and 3: with a planted fault armed the gate must light up,
    // and the shrinker must get the reproducer small. Each phase runs on
    // both profile-synthesis tiers.
    for (tier, label) in [
        (vm::Tier::Tree, "tree profile"),
        (vm::Tier::Bytecode, "bytecode profile"),
    ] {
        let faulty = {
            let _guard = hlo::fault::FaultGuard::arm();
            fuzz::run_campaign(&fuzz::CampaignConfig {
                seed: 0x5eed_0002,
                iters: 200,
                stop_after: 1,
                oracle: fuzz::OracleConfig {
                    tier,
                    ..fuzz::OracleConfig::quick()
                },
                quiet: true,
                ..Default::default()
            })
        };
        if !sensitivity_ok(
            &format!("phase 2 (inliner fault, {label})"),
            &faulty,
            fuzz::FindingKind::BehaviorDivergence,
        ) {
            return ExitCode::from(1);
        }

        let faulty = {
            let _guard = ipa::fault::FaultGuard::arm();
            fuzz::run_campaign(&fuzz::CampaignConfig {
                seed: 0x5eed_0003,
                iters: 200,
                stop_after: 1,
                oracle: fuzz::OracleConfig {
                    tier,
                    ..fuzz::OracleConfig::quick()
                },
                quiet: true,
                ..Default::default()
            })
        };
        if !sensitivity_ok(
            &format!("phase 3 (summary fault, {label})"),
            &faulty,
            fuzz::FindingKind::BehaviorDivergence,
        ) {
            return ExitCode::from(1);
        }
    }

    // Phase 4: with the stale-partition-key fault armed, the incremental
    // edit oracle must see the daemon splice a stale body. The plain
    // daemon check stays off (daemon_every: 0) — its PGO legs would trip
    // on the same fault first and report a less precise kind.
    let faulty = {
        let _guard = serve::fault::FaultGuard::arm();
        fuzz::run_campaign(&fuzz::CampaignConfig {
            seed: 0x5eed_0004,
            iters: 200,
            stop_after: 1,
            incremental_every: 2,
            oracle: fuzz::OracleConfig::quick(),
            quiet: true,
            ..Default::default()
        })
    };
    if !sensitivity_ok(
        "phase 4 (stale partition-key fault)",
        &faulty,
        fuzz::FindingKind::IncrementalDivergence,
    ) {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

/// Checks one sensitivity phase: the campaign must have caught at least
/// one finding of the expected kind and shrunk it to a small reproducer.
fn sensitivity_ok(phase: &str, faulty: &fuzz::CampaignReport, want: fuzz::FindingKind) -> bool {
    let caught = faulty.findings.iter().find(|f| f.finding.kind == want);
    match caught {
        None => {
            eprintln!(
                "fuzzgate {phase}: planted fault NOT caught in {} cases — oracle is blind",
                faulty.executed
            );
            false
        }
        Some(f) if f.lines > MAX_SHRUNK_LINES => {
            eprintln!(
                "fuzzgate {phase}: caught the planted fault but shrank it to {} lines \
                 (limit {MAX_SHRUNK_LINES})",
                f.lines
            );
            false
        }
        Some(f) => {
            eprintln!(
                "fuzzgate {phase}: planted fault caught at iter {} and shrunk to {} lines; gate green",
                f.iter, f.lines
            );
            true
        }
    }
}
