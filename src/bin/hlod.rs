//! `hlod` — the persistent optimization daemon.
//!
//! ```text
//! hlod [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
//!      [--max-payload BYTES] [--deadline-ms N]
//!      [--pgo-threshold MILLIS] [--pgo-cap N] [--pgo-store PATH]
//!      [--no-incremental] [--log PATH] [--log-stderr]
//!      [--slow-ms N] [--flight-cap N]
//! hlod --version
//! ```
//!
//! Runs in the foreground, serving framed optimize requests (see
//! `crates/serve`) until a client sends a `shutdown` frame; in-flight
//! requests are drained before exit. Pair with `hloc remote <addr>`.

use aggressive_inlining::serve::{ServeConfig, Server};
use std::process::ExitCode;

/// Compile-time capabilities baked into this binary; the workspace has no
/// optional cargo features, so the list is static.
const FEATURES: &str = "serve pgo clone outline sim lint";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("hlod: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut addr = "127.0.0.1:7457".to_string();
    let mut cfg = ServeConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("`{name}` needs a value"))
        };
        match a.as_str() {
            "--version" | "-V" => {
                println!("hlod {} (features: {FEATURES})", env!("CARGO_PKG_VERSION"));
                return Ok(ExitCode::SUCCESS);
            }
            "--help" | "-h" | "help" => {
                print_help();
                return Ok(ExitCode::SUCCESS);
            }
            "--addr" => addr = value("--addr")?,
            "--workers" => {
                cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "bad --workers value".to_string())?
            }
            "--queue" => {
                cfg.queue_cap = value("--queue")?
                    .parse()
                    .map_err(|_| "bad --queue value".to_string())?
            }
            "--cache" => {
                cfg.cache_cap = value("--cache")?
                    .parse()
                    .map_err(|_| "bad --cache value".to_string())?
            }
            "--max-payload" => {
                cfg.max_payload = value("--max-payload")?
                    .parse()
                    .map_err(|_| "bad --max-payload value".to_string())?
            }
            "--deadline-ms" => {
                cfg.default_deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|_| "bad --deadline-ms value".to_string())?,
                )
            }
            "--pgo-threshold" => {
                cfg.pgo_threshold_millis = value("--pgo-threshold")?
                    .parse()
                    .map_err(|_| "bad --pgo-threshold value".to_string())?
            }
            "--pgo-cap" => {
                cfg.pgo_cap = value("--pgo-cap")?
                    .parse()
                    .map_err(|_| "bad --pgo-cap value".to_string())?
            }
            "--pgo-store" => {
                cfg.pgo_store_path = Some(std::path::PathBuf::from(value("--pgo-store")?))
            }
            "--no-incremental" => cfg.incremental = false,
            "--log" => cfg.event_log_path = Some(std::path::PathBuf::from(value("--log")?)),
            "--log-stderr" => cfg.log_stderr = true,
            "--slow-ms" => {
                cfg.slow_ms = Some(
                    value("--slow-ms")?
                        .parse()
                        .map_err(|_| "bad --slow-ms value".to_string())?,
                )
            }
            "--flight-cap" => {
                cfg.flight_cap = value("--flight-cap")?
                    .parse()
                    .map_err(|_| "bad --flight-cap value".to_string())?
            }
            other => return Err(format!("unknown option `{other}`; try `hlod --help`")),
        }
    }
    let banner_cfg = cfg.clone();
    let server = Server::spawn(addr.as_str(), cfg).map_err(|e| format!("bind {addr}: {e}"))?;
    aggressive_inlining::serve::server::banner(server.local_addr(), &banner_cfg);
    server.wait();
    eprintln!("hlod: drained, exiting");
    Ok(ExitCode::SUCCESS)
}

fn print_help() {
    println!(
        "hlod — persistent HLO optimization daemon

USAGE:
  hlod [OPTIONS]

OPTIONS:
  --addr HOST:PORT     listen address (default: 127.0.0.1:7457)
  --workers N          optimize worker threads (default: 0 = all cores)
  --queue N            bounded request queue depth (default: 64)
  --cache N            cached program results, LRU past this (default: 128)
  --max-payload BYTES  largest accepted request frame (default: 16 MiB)
  --deadline-ms N      default per-request deadline (default: none)
  --pgo-threshold M    profile-drift score (thousandths, 0-1000) past which
                       a cached `profile: server` result is re-optimized
                       (default: 250)
  --pgo-cap N          profile aggregates kept, LRU past this (default: 64)
  --pgo-store PATH     persist the profile store to PATH (crash-safe
                       write+rename; reloaded on startup)
  --no-incremental     rebuild whole programs on every cache miss instead
                       of splicing cached per-partition results
  --log PATH           append structured events (crash-safe, one per line)
  --log-stderr         also mirror structured events to stderr
  --slow-ms N          wall-time bound; slower requests are logged and the
                       flight recorder is auto-dumped (default: off)
  --flight-cap N       request summaries in the flight recorder (default: 256)
  --version            print version and enabled features

Stop it with `hloc remote <addr> shutdown`; queued work is drained first."
    );
}
