#![warn(missing_docs)]
//! Umbrella crate for the *Aggressive Inlining* (PLDI 1997) reproduction.
//!
//! This crate re-exports the whole workspace under stable module names so
//! that examples, integration tests and downstream users can depend on one
//! crate:
//!
//! * [`ir`] — the ucode-analogue intermediate representation.
//! * [`analysis`] — call graph, loops, purity, call-site classification.
//! * [`ipa`] — bottom-up interprocedural summaries (MOD/REF, purity,
//!   frame escape, return constancy) feeding inlining, scalar opt, lint,
//!   and the daemon's cache keys.
//! * [`frontc`] — the MinC front end producing IR modules.
//! * [`opt`] — the scalar optimizer HLO interleaves with its passes.
//! * [`profile`] — profile database + collection (PBO substrate).
//! * [`pgo`] — continuous-PGO aggregation: the decayed per-program
//!   profile store and the drift metric behind the daemon's
//!   `profile-push` / `profile: server` loop.
//! * [`hlo`] — the paper's contribution: the budgeted, multi-pass,
//!   cross-module inliner and cloner.
//! * [`vm`] — the IR interpreter used for training runs and measurement.
//! * [`sim`] — the PA8000-style machine model behind Figure 7.
//! * [`suite`] — the 14 SPEC-shaped benchmark programs.
//! * [`serve`] — the persistent optimization daemon (`hlod`) and its
//!   content-addressed result cache.
//! * [`fuzz`] — the differential fuzzer: program generators, the VM
//!   translation-validation oracle, and the failure shrinker.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results.

pub use hlo;
pub use hlo_analysis as analysis;
pub use hlo_frontc as frontc;
pub use hlo_fuzz as fuzz;
pub use hlo_ipa as ipa;
pub use hlo_ir as ir;
pub use hlo_lint as lint;
pub use hlo_opt as opt;
pub use hlo_pgo as pgo;
pub use hlo_profile as profile;
pub use hlo_serve as serve;
pub use hlo_sim as sim;
pub use hlo_suite as suite;
pub use hlo_vm as vm;
