//! End-to-end semantic preservation: every suite benchmark must produce
//! identical results before and after HLO, across scopes and option
//! combinations. This is the repository's ground-truth correctness test.

use aggressive_inlining::{hlo, profile, suite, vm};
use hlo::{HloOptions, Scope};
use vm::{run_program, ExecOptions};

fn check(b: &suite::Benchmark, opts: &HloOptions, db: Option<&profile::ProfileDb>) {
    let p0 = b.compile().unwrap_or_else(|e| panic!("{}: {e}", b.name));
    let exec = ExecOptions::default();
    let before = run_program(&p0, &[b.train_arg], &exec).unwrap();
    let mut p = p0.clone();
    hlo::optimize(&mut p, db, opts);
    aggressive_inlining::ir::verify_program(&p).unwrap_or_else(|e| panic!("{}: {e}", b.name));
    let after = run_program(&p, &[b.train_arg], &exec).unwrap();
    assert_eq!(before.ret, after.ret, "{} ret ({:?})", b.name, opts.scope);
    assert_eq!(
        before.checksum, after.checksum,
        "{} checksum ({:?})",
        b.name, opts.scope
    );
    assert_eq!(before.output, after.output, "{} output", b.name);
}

#[test]
fn all_benchmarks_cross_module() {
    for b in suite::all_benchmarks() {
        check(&b, &HloOptions::default(), None);
    }
}

#[test]
fn all_benchmarks_within_module() {
    for b in suite::all_benchmarks() {
        check(
            &b,
            &HloOptions {
                scope: Scope::WithinModule,
                ..Default::default()
            },
            None,
        );
    }
}

#[test]
fn all_benchmarks_profile_guided() {
    for b in suite::all_benchmarks() {
        let train = b.compile().unwrap();
        let (db, _) =
            profile::collect_profile(&train, &[b.train_arg], &ExecOptions::default()).unwrap();
        check(&b, &HloOptions::default(), Some(&db));
    }
}

#[test]
fn all_benchmarks_huge_budget() {
    // Budget 1000 (Figure 8's most aggressive point) must stay correct.
    for b in suite::all_benchmarks() {
        check(
            &b,
            &HloOptions {
                budget_percent: 1000,
                ..Default::default()
            },
            None,
        );
    }
}

#[test]
fn all_benchmarks_inline_only_and_clone_only() {
    for b in suite::all_benchmarks() {
        check(
            &b,
            &HloOptions {
                enable_clone: false,
                ..Default::default()
            },
            None,
        );
        check(
            &b,
            &HloOptions {
                enable_inline: false,
                ..Default::default()
            },
            None,
        );
    }
}

#[test]
fn all_benchmarks_partial_operation_counts() {
    // Stopping the optimizer mid-flight (Figure 8's knob) must never
    // break a program, at any cut point.
    for b in suite::table1_benchmarks() {
        for k in [1, 3, 7] {
            check(
                &b,
                &HloOptions {
                    max_ops: Some(k),
                    ..Default::default()
                },
                None,
            );
        }
    }
}

#[test]
fn ref_input_preserved_on_selected_benchmarks() {
    // The heavier check on the ref workload, for a subset.
    for name in ["022.li", "124.m88ksim", "147.vortex"] {
        let b = suite::benchmark(name).unwrap();
        let p0 = b.compile().unwrap();
        let exec = ExecOptions::default();
        let before = run_program(&p0, &[b.ref_arg], &exec).unwrap();
        let mut p = p0.clone();
        hlo::optimize(&mut p, None, &HloOptions::default());
        let after = run_program(&p, &[b.ref_arg], &exec).unwrap();
        assert_eq!(before.ret, after.ret, "{name}");
        assert_eq!(before.checksum, after.checksum, "{name}");
    }
}
