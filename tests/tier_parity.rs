//! Two-tier execution parity: the bytecode tier must be observationally
//! indistinguishable from the tree-walking reference interpreter — same
//! outcome, same trap (kind *and* function attribution) at the same fuel
//! count, same monitor event stream, same synthesized profile. These are
//! the cross-tier guarantees the fuzz oracle leans on; this suite pins
//! them with hand-built trap constructions, a property sweep over
//! generated programs, and byte-exact profile comparison over the
//! benchmark suite.

use aggressive_inlining::ir::{
    BinOp, ConstVal, FuncId, FunctionBuilder, Linkage, Operand, Program, ProgramBuilder, Type,
};
use aggressive_inlining::{fuzz, profile, suite, vm};
use vm::{run_program, run_with_monitor, ExecOptions, Tier, TrapKind};

fn on(tier: Tier, fuel: u64) -> ExecOptions {
    ExecOptions {
        fuel,
        tier,
        ..Default::default()
    }
}

/// Runs `p` on both tiers with the given fuel and requires bit-identical
/// results: equal outcomes, or equal traps (kind + `func` attribution).
fn assert_parity(p: &Program, args: &[i64], fuel: u64, what: &str) {
    let tree = run_program(p, args, &on(Tier::Tree, fuel));
    let bc = run_program(p, args, &on(Tier::Bytecode, fuel));
    assert_eq!(tree, bc, "{what}: tiers diverged at fuel {fuel}");
}

/// A one-function program whose entry runs `build`'s instructions.
fn entry_program(build: impl FnOnce(&mut ProgramBuilder, &mut FunctionBuilder)) -> Program {
    let mut pb = ProgramBuilder::new();
    let m = pb.add_module("m");
    let mut f = FunctionBuilder::new("main", m, 0);
    build(&mut pb, &mut f);
    pb.add_function(f.finish(Linkage::Public, Type::I64));
    pb.finish(Some(FuncId(0)))
}

#[test]
fn trap_constructions_agree() {
    let cases: Vec<(&str, Program, TrapKind)> = vec![
        (
            "div-by-zero",
            entry_program(|_, f| {
                let e = f.entry_block();
                let q = f.bin(e, BinOp::Div, Operand::imm(1), Operand::imm(0));
                f.ret(e, Some(q.into()));
            }),
            TrapKind::DivByZero,
        ),
        (
            "rem-by-zero",
            entry_program(|_, f| {
                let e = f.entry_block();
                let q = f.bin(e, BinOp::Rem, Operand::imm(7), Operand::imm(0));
                f.ret(e, Some(q.into()));
            }),
            TrapKind::DivByZero,
        ),
        (
            "null-load",
            entry_program(|_, f| {
                let e = f.entry_block();
                let v = f.load(e, Operand::imm(0), Operand::imm(0));
                f.ret(e, Some(v.into()));
            }),
            TrapKind::OutOfBounds { addr: 0 },
        ),
        (
            "oob-store",
            entry_program(|_, f| {
                let e = f.entry_block();
                f.store(e, Operand::imm(1 << 40), Operand::imm(0), Operand::imm(1));
                f.ret(e, Some(Operand::imm(0)));
            }),
            TrapKind::OutOfBounds { addr: 1 << 40 },
        ),
        (
            "misaligned-load",
            entry_program(|_, f| {
                let e = f.entry_block();
                let v = f.load(e, Operand::imm(9), Operand::imm(0));
                f.ret(e, Some(v.into()));
            }),
            TrapKind::Misaligned { addr: 9 },
        ),
        (
            "bad-indirect",
            entry_program(|_, f| {
                let e = f.entry_block();
                let r = f.call_indirect(e, Operand::imm(12345), vec![]);
                f.ret(e, Some(r.into()));
            }),
            TrapKind::BadIndirect { value: 12345 },
        ),
        (
            "stack-overflow",
            entry_program(|_, f| {
                let e = f.entry_block();
                let r = f.call(e, FuncId(0), vec![]);
                f.ret(e, Some(r.into()));
            }),
            TrapKind::StackOverflow,
        ),
        (
            "abort",
            entry_program(|pb, f| {
                let ab = pb.declare_extern("abort", Some(0), false);
                let e = f.entry_block();
                f.call_extern(e, ab, vec![], false);
                f.ret(e, Some(Operand::imm(0)));
            }),
            TrapKind::Abort,
        ),
        (
            "missing-extern",
            entry_program(|pb, f| {
                let x = pb.declare_extern("no_such_routine", Some(0), false);
                let e = f.entry_block();
                f.call_extern(e, x, vec![], false);
                f.ret(e, Some(Operand::imm(0)));
            }),
            TrapKind::MissingExtern {
                name: "no_such_routine".to_string(),
            },
        ),
    ];
    for (what, p, want) in &cases {
        let tree = run_program(p, &[], &on(Tier::Tree, 1 << 20)).unwrap_err();
        assert_eq!(&tree.kind, want, "{what}: tree trap kind");
        assert_parity(p, &[], 1 << 20, what);
        // The trap must also land at the same instruction under any fuel
        // limit — fuel accounting is part of the observable semantics.
        for fuel in 0..32 {
            assert_parity(p, &[], fuel, what);
        }
    }
}

#[test]
fn no_entry_agrees() {
    let mut pb = ProgramBuilder::new();
    pb.add_module("m");
    let p = pb.finish(None);
    let tree = run_program(&p, &[], &on(Tier::Tree, 1 << 20)).unwrap_err();
    assert!(matches!(tree.kind, TrapKind::NoEntry));
    assert_parity(&p, &[], 1 << 20, "no-entry");
}

#[test]
fn fuel_exhaustion_fires_at_identical_counts() {
    // A loop retiring a known number of instructions: sweeping fuel one
    // unit at a time, both tiers must flip from FuelExhausted to success
    // at exactly the same threshold, with identical retired counts on the
    // success side. This catches any fused superinstruction that charges
    // fuel in the wrong order.
    let p = entry_program(|_, f| {
        let e = f.entry_block();
        let head = f.new_block();
        let body = f.new_block();
        let done = f.new_block();
        let i0 = f.const_(e, ConstVal::I64(0));
        f.jump(e, head);
        let c = f.bin(head, BinOp::Lt, i0.into(), Operand::imm(5));
        f.br(head, c.into(), body, done);
        let i1 = f.bin(body, BinOp::Add, i0.into(), Operand::imm(1));
        f.copy_to(body, i0, i1.into());
        f.jump(body, head);
        f.ret(done, Some(i0.into()));
    });
    let full = run_program(&p, &[], &on(Tier::Tree, 1 << 20)).unwrap();
    for fuel in 0..=full.retired + 2 {
        assert_parity(&p, &[], fuel, "counting loop");
    }
}

#[test]
fn generated_programs_agree_at_all_fuel_levels() {
    // Property sweep: fuzz-generated whole programs (calls, globals,
    // loops, extern output) must agree between tiers both unconstrained
    // and under tight fuel limits that land mid-execution.
    let cfg = fuzz::IrGenConfig::default();
    for seed in 0..40u64 {
        let p = fuzz::generate_program(seed, &cfg);
        for fuel in [0, 1, 3, 17, 100, 1000, 1 << 22] {
            assert_parity(&p, &[seed as i64 % 7], fuel, &format!("irgen seed {seed}"));
        }
    }
}

/// Records every monitor callback as a formatted line, so two streams can
/// be compared for exact order and content.
#[derive(Default)]
struct RecMon {
    events: Vec<String>,
}

impl vm::ExecMonitor for RecMon {
    fn block(&mut self, f: aggressive_inlining::ir::FuncId, b: aggressive_inlining::ir::BlockId) {
        self.events.push(format!("block {f:?} {b:?}"));
    }
    fn inst(&mut self, s: vm::SiteId) {
        self.events.push(format!("inst {s:?}"));
    }
    fn edge(
        &mut self,
        f: aggressive_inlining::ir::FuncId,
        from: aggressive_inlining::ir::BlockId,
        to: aggressive_inlining::ir::BlockId,
    ) {
        self.events.push(format!("edge {f:?} {from:?} {to:?}"));
    }
    fn cond_branch(&mut self, s: vm::SiteId, taken: bool) {
        self.events.push(format!("br {s:?} {taken}"));
    }
    fn jump(&mut self, s: vm::SiteId, t: aggressive_inlining::ir::BlockId) {
        self.events.push(format!("jump {s:?} {t:?}"));
    }
    fn call(
        &mut self,
        s: vm::SiteId,
        callee: aggressive_inlining::ir::FuncId,
        kind: vm::CallKind,
        regs: u32,
        n_args: usize,
    ) {
        self.events
            .push(format!("call {s:?} {callee:?} {kind:?} {regs} {n_args}"));
    }
    fn extern_call(&mut self, s: vm::SiteId, e: aggressive_inlining::ir::ExternId) {
        self.events.push(format!("ext {s:?} {e:?}"));
    }
    fn ret(&mut self, f: aggressive_inlining::ir::FuncId, regs: u32) {
        self.events.push(format!("ret {f:?} {regs}"));
    }
    fn mem(&mut self, addr: u64, write: bool) {
        self.events.push(format!("mem {addr} {write}"));
    }
}

#[test]
fn monitor_event_streams_are_identical() {
    // Even with superinstruction fusion in the bytecode tier, a monitor
    // must see the exact per-instruction event stream of the reference
    // interpreter — fused pairs report both constituents in order.
    let cfg = fuzz::IrGenConfig::default();
    for seed in 0..25u64 {
        let p = fuzz::generate_program(seed, &cfg);
        // Cap fuel so mid-pair fuel exhaustion paths get exercised too.
        for fuel in [50, 1 << 18] {
            let mut a = RecMon::default();
            let ra = run_with_monitor(&p, &[3], &on(Tier::Tree, fuel), &mut a);
            let mut b = RecMon::default();
            let rb = run_with_monitor(&p, &[3], &on(Tier::Bytecode, fuel), &mut b);
            assert_eq!(ra, rb, "irgen seed {seed} fuel {fuel}: result");
            assert_eq!(
                a.events, b.events,
                "irgen seed {seed} fuel {fuel}: event stream"
            );
        }
    }
}

#[test]
fn synthesized_profiles_are_byte_identical_over_suite() {
    // `ProfileDb::from_vm_trace` is the training-run entry point; a
    // profile gathered on the bytecode tier must match the tree tier's
    // byte for byte, or profile-guided decisions would depend on which
    // engine ran the training input.
    for b in suite::all_benchmarks() {
        let p = b.compile().unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let tree = profile::ProfileDb::from_vm_trace(
            &p,
            &[b.train_arg],
            &on(Tier::Tree, ExecOptions::default().fuel),
        );
        let bc = profile::ProfileDb::from_vm_trace(
            &p,
            &[b.train_arg],
            &on(Tier::Bytecode, ExecOptions::default().fuel),
        );
        assert_eq!(tree.to_text(), bc.to_text(), "{}: profile text", b.name);
    }
}
