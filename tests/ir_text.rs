//! The textual IR format must round-trip every real program this
//! repository can produce: all suite benchmarks, before and after
//! aggressive optimization.

use aggressive_inlining::{hlo, ir, suite};
use proptest::prelude::*;

#[test]
fn suite_programs_roundtrip_unoptimized() {
    for b in suite::all_benchmarks() {
        let p = b.compile().unwrap();
        let text = ir::program_to_text(&p);
        let q = ir::parse_program_text(&text).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert_eq!(p, q, "{}", b.name);
    }
}

#[test]
fn suite_programs_roundtrip_optimized() {
    // Optimized programs contain clones, promoted statics, dead husks and
    // profile annotations — the format must carry all of it.
    for b in suite::table1_benchmarks() {
        let mut p = b.compile().unwrap();
        hlo::optimize(&mut p, None, &hlo::HloOptions::default());
        let text = ir::program_to_text(&p);
        let q = ir::parse_program_text(&text).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert_eq!(p, q, "{}", b.name);
        ir::verify_program(&q).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The parser must never panic, whatever garbage it is fed —
    /// including near-valid inputs made by mutating a real dump.
    #[test]
    fn parser_never_panics_on_mutated_input(
        line_to_drop in 0usize..200,
        splice_at in 0usize..2000,
        junk in "[ -~]{0,40}",
    ) {
        let b = suite::benchmark("023.eqntott").unwrap();
        let p = b.compile().unwrap();
        let text = ir::program_to_text(&p);
        // Mutation 1: drop a line.
        let dropped: String = text
            .lines()
            .enumerate()
            .filter(|(i, _)| *i != line_to_drop)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let _ = ir::parse_program_text(&dropped);
        // Mutation 2: splice junk into the middle.
        let cut = splice_at.min(text.len());
        let cut = (0..=cut).rev().find(|&c| text.is_char_boundary(c)).unwrap_or(0);
        let spliced = format!("{}{}{}", &text[..cut], junk, &text[cut..]);
        let _ = ir::parse_program_text(&spliced);
    }
}

#[test]
fn reloaded_programs_execute_identically() {
    use aggressive_inlining::vm::{run_program, ExecOptions};
    for name in ["022.li", "124.m88ksim"] {
        let b = suite::benchmark(name).unwrap();
        let mut p = b.compile().unwrap();
        hlo::optimize(&mut p, None, &hlo::HloOptions::default());
        let q = ir::parse_program_text(&ir::program_to_text(&p)).unwrap();
        let a = run_program(&p, &[b.train_arg], &ExecOptions::default()).unwrap();
        let c = run_program(&q, &[b.train_arg], &ExecOptions::default()).unwrap();
        assert_eq!(a.ret, c.ret, "{name}");
        assert_eq!(a.checksum, c.checksum, "{name}");
        assert_eq!(a.retired, c.retired, "{name}");
    }
}
