//! Wire-format guarantees for the optimization report.
//!
//! hlo-serve ships reports back with cached results as `to_text`, and a
//! client build may be older or newer than the daemon. Two properties
//! keep that safe: `from_text(to_text(r)) == r` for any report the
//! current build can produce, and lines the parser does not recognize
//! are counted into `unknown_keys` instead of aborting the parse.

use hlo::{HloReport, PassReport, StageTiming};
use proptest::prelude::*;

fn pass_strategy() -> impl Strategy<Value = PassReport> {
    (
        0usize..16,
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(
                pass,
                inlines,
                clones_created,
                clones_reused,
                clone_replacements,
                deletions,
                cost,
            )| {
                PassReport {
                    pass,
                    inlines,
                    clones_created,
                    clones_reused,
                    clone_replacements,
                    deletions,
                    cost_after: cost,
                }
            },
        )
}

fn stage_strategy() -> impl Strategy<Value = StageTiming> {
    // Stage names are single tokens on the wire (split_whitespace), so
    // draw from the identifier-ish shapes the driver actually emits.
    ("[a-z]{1,12}", any::<u64>(), any::<u64>()).prop_map(|(stage, wall_us, work_us)| StageTiming {
        stage: if stage.is_empty() {
            "s".to_string()
        } else {
            stage
        },
        wall_us,
        work_us,
    })
}

fn report_strategy() -> impl Strategy<Value = HloReport> {
    // Diagnostics are elided on the wire by design, and `unknown_keys`
    // is a parse-side tally — both stay at their defaults; every other
    // field is exercised.
    let counts = (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    );
    let costs = (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
        1u64..64,
    );
    let ipa = (any::<u64>(), any::<u64>(), any::<u64>());
    let lists = (
        prop::collection::vec(pass_strategy(), 0..6),
        prop::collection::vec(stage_strategy(), 0..6),
    );
    (counts, costs, ipa, lists).prop_map(|(counts, costs, ipa, lists)| {
        let (inlines, clones, clone_replacements, deletions, pure_calls, outlines, straightened) =
            counts;
        let (initial_cost, final_cost, budget_limit, checks_run, lint_time_us, annotations, jobs) =
            costs;
        let (ipa_pure_calls, ipa_const_folds, ipa_store_forwards) = ipa;
        let (passes, stage_timings) = lists;
        HloReport {
            inlines,
            clones,
            clone_replacements,
            deletions,
            pure_calls_removed: pure_calls,
            ipa_pure_calls,
            ipa_const_folds,
            ipa_store_forwards,
            outlines,
            straightened,
            initial_cost,
            final_cost,
            budget_limit,
            checks_run,
            lint_time_us,
            profile_annotations: annotations,
            jobs,
            passes,
            stage_timings,
            diagnostics: Vec::new(),
            unknown_keys: 0,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn report_text_roundtrip_is_identity(r in report_strategy()) {
        let text = r.to_text();
        let back = HloReport::from_text(&text).expect("to_text output parses");
        prop_assert_eq!(&r, &back);
        // Canonical form is a fixpoint (the serve cache stores the bytes).
        prop_assert_eq!(text, back.to_text());
    }

    #[test]
    fn unknown_lines_are_tallied_not_fatal(extra in prop::collection::vec("[a-z]{1,10}", 1..5)) {
        let r = HloReport { inlines: 7, ..Default::default() };
        let mut text = r.to_text();
        // Splice unknown lines in before the trailer.
        let body = text.trim_end_matches("end\n").to_string();
        text = body;
        for (i, key) in extra.iter().enumerate() {
            text.push_str(&format!("x_{key} {i}\n"));
        }
        text.push_str("end\n");
        let back = HloReport::from_text(&text).expect("unknown keys are skipped");
        prop_assert_eq!(back.inlines, 7);
        prop_assert_eq!(back.unknown_keys, extra.len() as u64);
    }
}
