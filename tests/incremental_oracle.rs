//! The byte-identity edit oracle for function-grain incremental
//! recompilation.
//!
//! A daemon that splices cached partition bodies must be *invisible*: its
//! output for an edited program must be byte-identical to a from-scratch
//! `hlo::optimize` of the same input, at every job count — and it must
//! have rebuilt exactly the partitions the edit's dependence cone
//! touched, splicing the rest. These tests sweep the three edit shapes a
//! build service actually sees (body tweak, signature-preserving rewrite,
//! callee addition) over a hand-built multi-module program, then sweep
//! single-constant edits over the SPEC-style suite and fuzz-generated
//! programs.

use hlo::{HloOptions, Scope};
use hlo_ir::{program_to_text, ConstVal, Inst, Program};
use hlo_serve::{Client, OptimizeRequest, ProfileSpec, ServeConfig, Server, SourceKind};

/// Three modules with no cross-module calls: three cache partitions under
/// module scope, so partial reuse is observable. Each module has enough
/// meat (a loop over a static leaf) for inlining to fire.
const BASE: &[(&str, &str)] = &[
    (
        "a",
        "static fn a_leaf(x) { return x * 2 + 1; }
         static fn a_mid(x) { var s = 0;
             for (var i = 0; i < 8; i = i + 1) { s = s + a_leaf(x + i); }
             return s; }
         fn a_entry(n) { return a_mid(n) + a_leaf(n); }",
    ),
    (
        "b",
        "static fn b_leaf(x) { return x + 7; }
         static fn b_mid(x) { var s = 1;
             for (var i = 0; i < 6; i = i + 1) { s = s + b_leaf(x * i); }
             return s; }
         fn b_entry(n) { return b_mid(n) * b_leaf(n); }",
    ),
    (
        "c",
        "static fn c_leaf(x) { return x * x; }
         static fn c_mid(x) { var s = 0;
             for (var i = 0; i < 5; i = i + 1) { s = s + c_leaf(x + i); }
             return s; }
         fn c_entry(n) { return c_mid(n) - c_leaf(n); }",
    ),
];

/// `BASE` with a body tweak in the middle module: one constant changed in
/// `b_leaf`.
fn body_tweak() -> Vec<(&'static str, &'static str)> {
    let mut srcs = BASE.to_vec();
    srcs[1] = (
        "b",
        "static fn b_leaf(x) { return x + 9; }
         static fn b_mid(x) { var s = 1;
             for (var i = 0; i < 6; i = i + 1) { s = s + b_leaf(x * i); }
             return s; }
         fn b_entry(n) { return b_mid(n) * b_leaf(n); }",
    );
    srcs
}

/// `BASE` with a signature-preserving rewrite of `b_mid`: same name,
/// params and callees, restructured body.
fn signature_preserving_rewrite() -> Vec<(&'static str, &'static str)> {
    let mut srcs = BASE.to_vec();
    srcs[1] = (
        "b",
        "static fn b_leaf(x) { return x + 7; }
         static fn b_mid(x) { var s = 1;
             var i = 0;
             while (i < 6) { s = s + b_leaf(x * i); i = i + 1; }
             return s; }
         fn b_entry(n) { return b_mid(n) * b_leaf(n); }",
    );
    srcs
}

/// `BASE` with a callee added to the *last* module. Appending to the last
/// module keeps every earlier function's id stable, so only module c's
/// partition may rebuild; an insertion anywhere else would renumber later
/// functions and (correctly, but less interestingly) miss their
/// partitions too.
fn callee_addition() -> Vec<(&'static str, &'static str)> {
    let mut srcs = BASE.to_vec();
    srcs[2] = (
        "c",
        "static fn c_leaf(x) { return x * x; }
         static fn c_mid(x) { var s = 0;
             for (var i = 0; i < 5; i = i + 1) { s = s + c_leaf(x + i); }
             return s; }
         fn c_entry(n) { return c_mid(n) - c_leaf(n) + c_extra(n); }
         static fn c_extra(x) { return x * 3 - 1; }",
    );
    srcs
}

fn module_opts(jobs: usize) -> HloOptions {
    HloOptions {
        scope: Scope::WithinModule,
        jobs,
        ..HloOptions::default()
    }
}

fn minc_request(srcs: &[(&str, &str)], opts: &HloOptions) -> OptimizeRequest {
    OptimizeRequest {
        options: opts.clone(),
        source: SourceKind::Minc(
            srcs.iter()
                .map(|(n, s)| (n.to_string(), s.to_string()))
                .collect(),
        ),
        profile: ProfileSpec::None,
        deadline_ms: None,
        train_arg: None,
        trace_id: None,
    }
}

/// From-scratch ground truth: compile and optimize in-process.
fn truth(srcs: &[(&str, &str)], opts: &HloOptions) -> String {
    let mut p = hlo_frontc::compile(srcs).unwrap();
    hlo::optimize(&mut p, None, opts);
    program_to_text(&p)
}

#[test]
fn single_function_edits_rebuild_exactly_the_edited_partition() {
    // A separate daemon per job count: `jobs` is deliberately excluded
    // from the cache fingerprint, so one daemon would serve the second
    // sweep entirely from its program cache.
    for jobs in [1usize, 4] {
        let opts = module_opts(jobs);
        let server = Server::spawn("127.0.0.1:0", ServeConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();

        let cold = client.optimize(&minc_request(BASE, &opts)).unwrap();
        assert!(!cold.outcome.hit);
        assert!(!cold.outcome.incr_fallback, "base program must be eligible");
        assert_eq!(cold.outcome.partition_hits, 0, "cold store has no bodies");
        let total = cold.outcome.partition_rebuilds;
        assert!(
            total >= 3,
            "three independent modules, got {total} partitions"
        );
        assert_eq!(
            cold.ir_text,
            truth(BASE, &opts),
            "cold output (jobs={jobs})"
        );

        for (name, edited) in [
            ("body tweak", body_tweak()),
            (
                "signature-preserving rewrite",
                signature_preserving_rewrite(),
            ),
            ("callee addition", callee_addition()),
        ] {
            let warm = client.optimize(&minc_request(&edited, &opts)).unwrap();
            assert!(!warm.outcome.hit, "{name}: edited program is a new key");
            assert!(!warm.outcome.incr_fallback, "{name}: must not fall back");
            assert_eq!(
                warm.ir_text,
                truth(&edited, &opts),
                "{name} (jobs={jobs}): incremental output must be \
                 byte-identical to from-scratch"
            );
            assert_eq!(
                warm.outcome.partition_rebuilds, 1,
                "{name}: exactly the edited cone's partition rebuilds"
            );
            assert_eq!(
                warm.outcome.partition_hits,
                total - 1,
                "{name}: every untouched partition splices"
            );
        }

        let stats = client.stats().unwrap();
        assert_eq!(stats.partition_rebuilds, total + 3);
        assert_eq!(stats.partition_hits, 3 * (total - 1));
        assert_eq!(stats.incr_fallbacks, 0);
        assert!(stats.partition_entries >= total);
        client.shutdown().unwrap();
        server.wait();
    }
}

/// Bumps the first integer constant in the program (immediate operand or
/// `Const` instruction) — the generic single-function "edit" for programs
/// we did not hand-write.
fn bump_first_const(p: &Program) -> Option<Program> {
    let mut q = p.clone();
    for f in &mut q.funcs {
        for b in &mut f.blocks {
            for inst in &mut b.insts {
                if let Inst::Const {
                    value: ConstVal::I64(v),
                    ..
                } = inst
                {
                    *v = v.wrapping_add(1);
                    return Some(q);
                }
                let mut bumped = false;
                inst.for_each_use_mut(|op| {
                    if bumped {
                        return;
                    }
                    if let hlo_ir::Operand::Const(ConstVal::I64(v)) = op {
                        *v = v.wrapping_add(1);
                        bumped = true;
                    }
                });
                if bumped {
                    return Some(q);
                }
            }
        }
    }
    None
}

#[test]
fn edit_sweep_over_suite_and_fuzz_programs_is_byte_identical() {
    let opts = HloOptions::default();
    let server = Server::spawn("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let mut programs: Vec<(String, Program)> = hlo_suite::all_benchmarks()
        .into_iter()
        .take(4)
        .map(|b| (b.name.to_string(), hlo_frontc::compile(&b.sources).unwrap()))
        .collect();
    for seed in 0..8u64 {
        let sources = hlo_fuzz::generate_sources(seed, &hlo_fuzz::GenConfig::default());
        let refs: Vec<(&str, &str)> = sources
            .iter()
            .map(|(n, s)| (n.as_str(), s.as_str()))
            .collect();
        programs.push((format!("fuzz-{seed}"), hlo_frontc::compile(&refs).unwrap()));
    }

    let mut edits = 0;
    for (name, program) in programs {
        let request = |p: &Program| OptimizeRequest {
            options: opts.clone(),
            source: SourceKind::Ir(program_to_text(p)),
            profile: ProfileSpec::None,
            deadline_ms: None,
            train_arg: None,
            trace_id: None,
        };
        let expect = |p: &Program| {
            let mut q = p.clone();
            hlo::optimize(&mut q, None, &opts);
            program_to_text(&q)
        };
        let cold = client.optimize(&request(&program)).unwrap();
        assert_eq!(cold.ir_text, expect(&program), "{name}: cold");
        let Some(edited) = bump_first_const(&program) else {
            continue;
        };
        edits += 1;
        let warm = client.optimize(&request(&edited)).unwrap();
        assert!(!warm.outcome.hit, "{name}: the edit must miss");
        assert_eq!(
            warm.ir_text,
            expect(&edited),
            "{name}: incremental rebuild after a one-constant edit must be \
             byte-identical to from-scratch"
        );
    }
    assert!(edits >= 8, "the sweep must actually edit programs");

    client.shutdown().unwrap();
    server.wait();
}
