//! Golden lint-report tests: the benchmark suite is diagnostic-free, the
//! full pipeline under verify-each stays diagnostic-free, and deliberately
//! broken programs produce exactly the expected findings.

use hlo::{optimize, CheckLevel, Checker, HloOptions};
use hlo_lint::{
    full_diagnostics, interprocedural_diagnostics, lint_program, lint_report, LintOptions, Severity,
};

/// Every suite program, freshly compiled, reports zero diagnostics —
/// structural and lint battery both.
#[test]
fn suite_programs_lint_clean() {
    for b in hlo_suite::all_benchmarks() {
        let p = b.compile().unwrap();
        let report = lint_report(&p, &LintOptions::default());
        assert!(report.diags.is_empty(), "{}:\n{report}", b.name);
    }
}

/// The full driver at `CheckLevel::Strict` introduces no diagnostics on
/// any suite program, at the default budget and at a generous one.
#[test]
fn verify_each_pipeline_is_diagnostic_free_on_suite() {
    for b in hlo_suite::all_benchmarks() {
        for budget in [100, 400] {
            let mut p = b.compile().unwrap();
            let opts = HloOptions {
                check: CheckLevel::Strict,
                budget_percent: budget,
                ..Default::default()
            };
            let report = optimize(&mut p, None, &opts);
            let introduced: Vec<_> = report.introduced_diagnostics().collect();
            assert!(
                introduced.is_empty(),
                "{} (budget {budget}): {introduced:#?}",
                b.name
            );
            assert!(report.checks_run > 0);
            // The optimized output also lints clean standalone.
            let post = lint_report(&p, &LintOptions::default());
            assert!(
                post.diags.is_empty(),
                "{} (budget {budget}):\n{post}",
                b.name
            );
        }
    }
}

/// A hand-broken program (arity mismatch at the source level) yields
/// exactly the expected diagnostic, and verify-each attributes it to the
/// input, not to any pass.
#[test]
fn broken_fixture_reports_exact_arity_diagnostic() {
    let src = "fn callee(a, b) { return a + b; }\n\
               fn main() { return callee(7); }";
    let p = hlo_frontc::compile(&[("m", src)]).unwrap();
    let diags = full_diagnostics(&p, &LintOptions::default());
    assert_eq!(diags.len(), 1, "{diags:#?}");
    let d = &diags[0];
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.func, "main");
    assert_eq!(
        d.message,
        "call to `callee` passes 1 arguments, callee takes 2"
    );

    let mut p = p;
    let report = optimize(
        &mut p,
        None,
        &HloOptions {
            check: CheckLevel::Strict,
            ..Default::default()
        },
    );
    assert_eq!(report.introduced_diagnostics().count(), 0, "{report}");
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.pass_origin.as_deref() == Some("input")
                && d.message.contains("passes 1 arguments")),
        "{report}"
    );
}

/// A defect injected *between* pass boundaries is blamed on the pass that
/// ran in between — the verify-each contract the driver relies on.
#[test]
fn injected_defect_names_the_originating_pass() {
    let mut p = hlo_frontc::compile(&[("m", "fn main() { return 3; }")]).unwrap();
    let mut ck = Checker::new(CheckLevel::Strict);
    ck.baseline(&p);
    // Simulate a buggy transform: corrupt the profile annotation.
    p.funcs[0].profile = Some(hlo_ir::FuncProfile {
        entry: -1.0,
        blocks: vec![-1.0; p.funcs[0].blocks.len()],
    });
    ck.check(&p, "inline@0");
    let report = ck.into_report();
    assert!(!report.diags.is_empty());
    assert!(
        report
            .diags
            .iter()
            .all(|d| d.pass_origin.as_deref() == Some("inline@0")),
        "{report}"
    );
    let rendered = report.to_string();
    assert!(
        rendered.contains("introduced by pass `inline@0`"),
        "{rendered}"
    );
}

/// The interprocedural (summary-driven) lints are silent on the whole
/// benchmark suite, both on fresh front-end output and after the full
/// optimization pipeline: no suite program passes a frame address to a
/// callee that retains it, and every indirect call site has a feasible
/// address-taken target.
#[test]
fn suite_is_interprocedurally_clean_pre_and_post_opt() {
    for b in hlo_suite::all_benchmarks() {
        let mut p = b.compile().unwrap();
        let pre = interprocedural_diagnostics(&p);
        assert!(pre.is_empty(), "{} (pre-opt): {pre:#?}", b.name);
        optimize(&mut p, None, &HloOptions::default());
        let post = interprocedural_diagnostics(&p);
        assert!(post.is_empty(), "{} (post-opt): {post:#?}", b.name);
    }
}

/// A frame address escaping through two call levels is reported once, at
/// the call site, with the *full* interprocedural chain named — the
/// forwarding function, the parameter it forwards through, and the
/// function that finally retains the pointer.
#[test]
fn two_level_frame_escape_report_names_the_full_chain() {
    let src = "global sink;\n\
               fn keep(q) { sink = q; return 0; }\n\
               fn fwd(p) { return keep(p); }\n\
               fn main() { var a[3]; return fwd(&a); }";
    let p = hlo_frontc::compile(&[("m", src)]).unwrap();
    let diags = interprocedural_diagnostics(&p);
    assert_eq!(diags.len(), 1, "{diags:#?}");
    let d = &diags[0];
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.func, "main");
    assert!(
        d.message.contains(
            "escapes through call chain `fwd` param 0 -> `keep` param 0 (retained there)"
        ),
        "{d}"
    );
    // The standalone report (what `hloc lint` prints) carries the finding.
    let rendered = lint_report(&p, &LintOptions::default()).to_string();
    assert!(
        rendered.contains("`fwd` param 0 -> `keep` param 0"),
        "{rendered}"
    );
}

/// Pedantic lints fire on unoptimized code (which legitimately contains
/// dead stores) and quiet down after scalar optimization.
#[test]
fn pedantic_noise_shrinks_under_optimization() {
    let b = &hlo_suite::all_benchmarks()[0];
    let mut p = b.compile().unwrap();
    let before = lint_program(&p, &LintOptions::pedantic()).len();
    hlo_opt::optimize_program(&mut p);
    let after = lint_program(&p, &LintOptions::pedantic()).len();
    assert!(
        after <= before,
        "{}: pedantic findings grew {before} -> {after}",
        b.name
    );
    // The non-pedantic battery is silent on both.
    assert!(lint_program(&p, &LintOptions::default()).is_empty());
}
