//! Golden outputs for the benchmark suite.
//!
//! The suite is the evaluation's ground truth: if a benchmark's behaviour
//! drifts (an accidental edit, a VM semantics change, a front-end
//! regression), every figure silently changes. These pinned values catch
//! that. They are also what the optimizer's output is compared against —
//! `retired` is intentionally NOT pinned for optimized builds, only for
//! the unoptimized baseline.

use aggressive_inlining::{suite, vm};

/// (name, train-run return value, train-run checksum, train-run retired).
const GOLDEN: &[(&str, i64, u64, u64)] = &[
    ("008.espresso", 799, 0xcf24e9f44979458b, 1886311),
    ("022.li", 39199600, 0x2538f58cb89b2830, 2917317),
    ("023.eqntott", 2100, 0xdf1285a82f01dc44, 690364),
    ("026.compress", 71647440, 0x461e79bf1d7ecc2c, 599961),
    ("072.sc", 25332, 0x9790787d67e4e04, 212802),
    ("085.gcc", 4214793681, 0x6d20cf6fa960d625, 497747),
    ("099.go", 7947, 0x841fb1627d39dfe7, 1880300),
    ("124.m88ksim", 3445483525, 0x20b75f66e1887469, 1162981),
    ("126.gcc", 3475849690, 0x34ae5bb5199ffee2, 725120),
    ("129.compress", 2116471223, 0x9fea1fce638fb50c, 950031),
    ("130.li", 387660, 0xe5b2de04bf1083c, 823925),
    ("132.ijpeg", 71317, 0x2aff41b40cdc3855, 1210941),
    ("134.perl", 3155157329, 0x2ce2b50e6edab7a5, 214947),
    ("147.vortex", 2427650897, 0x2a48970fb8b481a5, 547107),
];

#[test]
fn train_runs_match_golden_values() {
    for &(name, ret, checksum, retired) in GOLDEN {
        let b = suite::benchmark(name).unwrap_or_else(|| panic!("missing {name}"));
        let p = b.compile().unwrap();
        let o = vm::run_program(&p, &[b.train_arg], &vm::ExecOptions::default()).unwrap();
        assert_eq!(o.ret, ret, "{name} return value drifted");
        assert_eq!(o.checksum, checksum, "{name} checksum drifted");
        assert_eq!(
            o.retired, retired,
            "{name} baseline instruction count drifted"
        );
    }
}

#[test]
fn golden_table_covers_the_whole_suite() {
    assert_eq!(GOLDEN.len(), suite::all_benchmarks().len());
}
