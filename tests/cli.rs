//! End-to-end tests of the `hloc` command-line driver, including the
//! isom-style dump → re-optimize → run pipeline.

use std::path::PathBuf;
use std::process::Command;

fn hloc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hloc"))
}

fn write_sources(dir: &std::path::Path) -> (PathBuf, PathBuf) {
    let lib = dir.join("mylib.mc");
    let main = dir.join("app.mc");
    std::fs::write(
        &lib,
        "fn triple(x) { return x * 3; }\nstatic fn unused_static() { return 0; }\n",
    )
    .unwrap();
    std::fs::write(
        &main,
        "fn main(n) { var s = 0; for (var i = 0; i < 100; i = i + 1) { s = s + triple(i + n); } print_i64(s); return s; }\n",
    )
    .unwrap();
    (lib, main)
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hloc-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn build_run_produces_program_output() {
    let dir = tmpdir("run");
    let (lib, main) = write_sources(&dir);
    let out = hloc()
        .args(["build", "--run", "--arg", "1"])
        .arg(&lib)
        .arg(&main)
        .output()
        .expect("hloc runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // sum of 3*(i+1) for i in 0..100 = 3 * (5050 + 50... ) compute: 3*sum(i+1)=3*5050=15150
    assert_eq!(stdout.trim(), "15150");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("inlines"), "{stderr}");
}

#[test]
fn emit_ir_then_opt_roundtrip() {
    let dir = tmpdir("isom");
    let (lib, main) = write_sources(&dir);
    let ir_path = dir.join("app.ir");
    // Dump unoptimized IR ("isom" file).
    let out = hloc()
        .args([
            "build",
            "--budget",
            "0",
            "--no-inline",
            "--no-clone",
            "--emit-ir",
        ])
        .arg(&ir_path)
        .arg(&lib)
        .arg(&main)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(std::fs::read_to_string(&ir_path)
        .unwrap()
        .starts_with("hlo-ir v1"));
    // Link-time-style optimization of the stored IR.
    let out = hloc()
        .args(["opt", "--run", "--arg", "1"])
        .arg(&ir_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "15150");
}

#[test]
fn explain_names_inlined_and_budget_rejected_sites_and_trace_is_valid_json() {
    let dir = tmpdir("explain");
    let demo = dir.join("trace_demo.mc");
    std::fs::copy(
        concat!(env!("CARGO_MANIFEST_DIR"), "/examples/trace_demo.mc"),
        &demo,
    )
    .unwrap();
    let trace_path = dir.join("build-trace.json");
    let out = hloc()
        .args(["build", "--budget", "30", "--explain", "--trace"])
        .arg(&trace_path)
        .arg(&demo)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // An inlined site with its reason code, budget movement and weight...
    assert!(
        stdout.contains("cube@b0.i0 -> sq: inline pass=0 verdict=performed reason=accepted"),
        "{stdout}"
    );
    assert!(stdout.contains("weight=1.00"), "{stdout}");
    // ...and a site the budget turned down, with an unmoved budget.
    let deferred = stdout
        .lines()
        .find(|l| l.contains("verdict=deferred reason=budget-deferred"))
        .unwrap_or_else(|| panic!("no budget rejection in:\n{stdout}"));
    assert!(deferred.contains("budget="), "{deferred}");

    // Site-filtered explain narrows to one call site.
    let out = hloc()
        .args(["build", "--budget", "30", "--explain=cube:b0.i0"])
        .arg(&demo)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cube@b0.i0 -> sq"), "{stdout}");
    assert!(!stdout.contains("wide@"), "{stdout}");

    // The trace file is one valid Chrome trace-event JSON document.
    let text = std::fs::read_to_string(&trace_path).unwrap();
    let doc = aggressive_inlining::hlo::trace_json::parse(&text).expect("trace parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(aggressive_inlining::hlo::trace_json::Json::as_array)
        .expect("traceEvents array");
    assert!(events.len() > 2, "trace has {} events", events.len());
}

#[test]
fn classify_prints_all_categories() {
    let dir = tmpdir("classify");
    let (lib, main) = write_sources(&dir);
    let out = hloc()
        .arg("classify")
        .arg(&lib)
        .arg(&main)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for label in [
        "external",
        "indirect",
        "cross-module",
        "within-module",
        "recursive",
        "total",
    ] {
        assert!(stdout.contains(label), "{stdout}");
    }
}

#[test]
fn bad_source_reports_position_and_fails() {
    let dir = tmpdir("err");
    let bad = dir.join("bad.mc");
    std::fs::write(&bad, "fn broken( { }").unwrap();
    let out = hloc().args(["build"]).arg(&bad).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad:"), "{stderr}");
}

#[test]
fn unknown_command_fails_gracefully() {
    let out = hloc().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn help_lists_subcommands() {
    let out = hloc().arg("help").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for cmd in ["build", "opt", "run", "classify"] {
        assert!(stdout.contains(cmd), "{stdout}");
    }
}
