//! Property-based testing: random (guaranteed-terminating) MinC programs
//! must behave identically before and after any combination of HLO
//! options. This hunts for miscompiles the hand-written suite misses.

use aggressive_inlining::{frontc, hlo, vm};
use proptest::prelude::*;

/// Expression tree over two params, four locals, two global scalars and
/// two global arrays. Rendering guards every division.
#[derive(Debug, Clone)]
enum E {
    Const(i8),
    Param(u8),
    Local(u8),
    Global(u8),
    ArrIdx(u8, Box<E>),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Lt(Box<E>, Box<E>),
    DivSafe(Box<E>, Box<E>),
    Shl(Box<E>, u8),
    /// Call to an earlier function (index folded modulo the caller's
    /// position to keep the call graph acyclic → termination).
    Call(u8, Box<E>, Box<E>),
}

#[derive(Debug, Clone)]
enum S {
    AssignLocal(u8, E),
    AssignGlobal(u8, E),
    AssignArr(u8, E, E),
    If(E, Vec<S>, Vec<S>),
    /// Bounded loop of 1..=6 iterations.
    For(u8, Vec<S>),
    Sink(E),
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        any::<i8>().prop_map(E::Const),
        (0u8..2).prop_map(E::Param),
        (0u8..4).prop_map(E::Local),
        (0u8..2).prop_map(E::Global),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (0u8..2, inner.clone()).prop_map(|(a, e)| E::ArrIdx(a, Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Lt(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::DivSafe(Box::new(a), Box::new(b))),
            (inner.clone(), 0u8..7).prop_map(|(a, k)| E::Shl(Box::new(a), k)),
            (any::<u8>(), inner.clone(), inner).prop_map(|(t, a, b)| E::Call(
                t,
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

fn stmt_strategy() -> impl Strategy<Value = S> {
    let simple = prop_oneof![
        (0u8..4, expr_strategy()).prop_map(|(l, x)| S::AssignLocal(l, x)),
        (0u8..2, expr_strategy()).prop_map(|(g, x)| S::AssignGlobal(g, x)),
        (0u8..2, expr_strategy(), expr_strategy()).prop_map(|(a, i, v)| S::AssignArr(a, i, v)),
        expr_strategy().prop_map(S::Sink),
    ];
    simple.prop_recursive(2, 12, 4, move |inner| {
        let block = prop::collection::vec(inner.clone(), 0..3);
        prop_oneof![
            (expr_strategy(), block.clone(), block.clone()).prop_map(|(c, t, f)| S::If(c, t, f)),
            ((1u8..=6), block).prop_map(|(n, b)| S::For(n, b)),
        ]
    })
}

struct Render {
    loop_counter: usize,
}

impl Render {
    fn expr(&mut self, e: &E, fn_idx: usize, out: &mut String) {
        match e {
            E::Const(v) => out.push_str(&format!("({v})")),
            E::Param(p) => out.push_str(&format!("p{p}")),
            E::Local(l) => out.push_str(&format!("l{l}")),
            E::Global(g) => out.push_str(&format!("g{g}")),
            E::ArrIdx(a, i) => {
                out.push_str(&format!("arr{a}[("));
                self.expr(i, fn_idx, out);
                out.push_str(") & 15]");
            }
            E::Add(a, b) => self.bin(a, "+", b, fn_idx, out),
            E::Sub(a, b) => self.bin(a, "-", b, fn_idx, out),
            E::Mul(a, b) => self.bin(a, "*", b, fn_idx, out),
            E::Xor(a, b) => self.bin(a, "^", b, fn_idx, out),
            E::Lt(a, b) => self.bin(a, "<", b, fn_idx, out),
            E::DivSafe(a, b) => {
                out.push('(');
                self.expr(a, fn_idx, out);
                out.push_str(") / (((");
                self.expr(b, fn_idx, out);
                out.push_str(") & 7) + 1)");
            }
            E::Shl(a, k) => {
                out.push_str("((");
                self.expr(a, fn_idx, out);
                out.push_str(&format!(") << {k})"));
            }
            E::Call(t, a, b) => {
                if fn_idx == 0 {
                    // No earlier function to call; degrade to addition.
                    self.bin(a, "+", b, fn_idx, out);
                } else {
                    let target = (*t as usize) % fn_idx;
                    out.push_str(&format!("f{target}("));
                    self.expr(a, fn_idx, out);
                    out.push_str(", ");
                    self.expr(b, fn_idx, out);
                    out.push(')');
                }
            }
        }
    }

    fn bin(&mut self, a: &E, op: &str, b: &E, fn_idx: usize, out: &mut String) {
        out.push('(');
        self.expr(a, fn_idx, out);
        out.push_str(&format!(") {op} ("));
        self.expr(b, fn_idx, out);
        out.push(')');
    }

    fn stmt(&mut self, s: &S, fn_idx: usize, out: &mut String) {
        match s {
            S::AssignLocal(l, e) => {
                out.push_str(&format!("l{l} = "));
                self.expr(e, fn_idx, out);
                out.push_str(";\n");
            }
            S::AssignGlobal(g, e) => {
                out.push_str(&format!("g{g} = "));
                self.expr(e, fn_idx, out);
                out.push_str(";\n");
            }
            S::AssignArr(a, i, v) => {
                out.push_str(&format!("arr{a}[("));
                self.expr(i, fn_idx, out);
                out.push_str(") & 15] = ");
                self.expr(v, fn_idx, out);
                out.push_str(";\n");
            }
            S::If(c, t, f) => {
                out.push_str("if (");
                self.expr(c, fn_idx, out);
                out.push_str(") {\n");
                for s in t {
                    self.stmt(s, fn_idx, out);
                }
                out.push_str("} else {\n");
                for s in f {
                    self.stmt(s, fn_idx, out);
                }
                out.push_str("}\n");
            }
            S::For(n, body) => {
                let v = format!("it{}", self.loop_counter);
                self.loop_counter += 1;
                out.push_str(&format!("for (var {v} = 0; {v} < {n}; {v} = {v} + 1) {{\n"));
                for s in body {
                    self.stmt(s, fn_idx, out);
                }
                out.push_str("}\n");
            }
            S::Sink(e) => {
                out.push_str("sink(");
                self.expr(e, fn_idx, out);
                out.push_str(");\n");
            }
        }
    }
}

/// Renders a full two-module program from generated function bodies.
fn render_program(funcs: &[Vec<S>]) -> Vec<(String, String)> {
    let mut lib =
        String::from("global g0;\nglobal g1;\nglobal arr0[16];\nglobal arr1[16] = {1,2,3,4};\n");
    let mut drv = String::new();
    let mut r = Render { loop_counter: 0 };
    for (i, body) in funcs.iter().enumerate() {
        // Alternate modules so cross-module sites appear.
        let out = if i % 2 == 0 { &mut lib } else { &mut drv };
        out.push_str(&format!("fn f{i}(p0, p1) {{\n"));
        out.push_str("var l0 = p0;\nvar l1 = p1 ^ 3;\nvar l2 = 0;\nvar l3 = 1;\n");
        for s in body {
            r.stmt(s, i, out);
        }
        out.push_str("return (l0 + l1) ^ (l2 + l3);\n}\n");
    }
    drv.push_str("fn main() {\nvar h = 0;\n");
    for i in 0..funcs.len() {
        drv.push_str(&format!(
            "h = h * 31 + f{i}({}, {});\n",
            i * 7 + 1,
            13 - i as i64
        ));
    }
    drv.push_str("sink(h);\nreturn h;\n}\n");
    vec![("lib".to_string(), lib), ("driver".to_string(), drv)]
}

fn options_strategy() -> impl Strategy<Value = hlo::HloOptions> {
    (
        prop::bool::ANY,
        prop_oneof![Just(0u64), Just(25), Just(100), Just(1000)],
        prop::bool::ANY,
        prop::bool::ANY,
        prop_oneof![Just(None), (0u64..6).prop_map(Some)],
        prop::bool::ANY,
    )
        .prop_map(
            |(cross, budget, inline, clone, max_ops, cold)| hlo::HloOptions {
                scope: if cross {
                    hlo::Scope::CrossModule
                } else {
                    hlo::Scope::WithinModule
                },
                budget_percent: budget,
                enable_inline: inline,
                enable_clone: clone,
                max_ops,
                cold_site_penalty: cold,
                ..Default::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimization_preserves_random_programs(
        funcs in prop::collection::vec(prop::collection::vec(stmt_strategy(), 0..5), 1..5),
        opts in options_strategy(),
    ) {
        let sources = render_program(&funcs);
        let refs: Vec<(&str, &str)> =
            sources.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
        let p0 = frontc::compile(&refs).expect("generated program must parse");
        aggressive_inlining::ir::verify_program(&p0).expect("generated program must verify");
        let exec = vm::ExecOptions { fuel: 1 << 24, ..Default::default() };
        let before = vm::run_program(&p0, &[], &exec).expect("generated program must terminate");

        let mut p = p0.clone();
        hlo::optimize(&mut p, None, &opts);
        aggressive_inlining::ir::verify_program(&p).expect("optimized program must verify");
        let after = vm::run_program(&p, &[], &exec).expect("optimized program must terminate");
        prop_assert_eq!(before.ret, after.ret);
        prop_assert_eq!(before.checksum, after.checksum);
    }

    #[test]
    fn verify_each_pipeline_never_introduces_diagnostics(
        funcs in prop::collection::vec(prop::collection::vec(stmt_strategy(), 0..5), 1..5),
        opts in options_strategy(),
    ) {
        let sources = render_program(&funcs);
        let refs: Vec<(&str, &str)> =
            sources.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
        let mut p = frontc::compile(&refs).expect("generated program must parse");
        let opts = hlo::HloOptions { check: hlo::CheckLevel::Strict, ..opts };
        let report = hlo::optimize(&mut p, None, &opts);
        let introduced: Vec<_> = report.introduced_diagnostics().collect();
        prop_assert!(introduced.is_empty(), "pipeline introduced: {:#?}", introduced);
    }

    #[test]
    fn scalar_optimizer_alone_preserves_random_programs(
        funcs in prop::collection::vec(prop::collection::vec(stmt_strategy(), 0..5), 1..4),
    ) {
        let sources = render_program(&funcs);
        let refs: Vec<(&str, &str)> =
            sources.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
        let p0 = frontc::compile(&refs).expect("parses");
        let exec = vm::ExecOptions { fuel: 1 << 24, ..Default::default() };
        let before = vm::run_program(&p0, &[], &exec).expect("terminates");
        let mut p = p0.clone();
        aggressive_inlining::opt::optimize_program(&mut p);
        aggressive_inlining::ir::verify_program(&p).expect("verifies");
        let after = vm::run_program(&p, &[], &exec).expect("terminates");
        prop_assert_eq!(before.ret, after.ret);
        prop_assert_eq!(before.checksum, after.checksum);
        prop_assert!(after.retired <= before.retired);
    }
}
