//! Code-positioning integration: block straightening must reduce the
//! machine model's retired-instruction count (fall-through elision)
//! without changing program results, and procedure positioning must
//! produce valid layouts for optimized programs.

use aggressive_inlining::{analysis, hlo, ir, profile, sim, suite, vm};

#[test]
fn straightening_reduces_simulated_instructions() {
    let b = suite::benchmark("085.gcc").unwrap();
    let p0 = b.compile().unwrap();
    let (db, _) =
        profile::collect_profile(&p0, &[b.train_arg], &vm::ExecOptions::default()).unwrap();

    let build = |straighten: bool| {
        let mut p = p0.clone();
        hlo::optimize(
            &mut p,
            Some(&db),
            &hlo::HloOptions {
                enable_straighten: straighten,
                ..Default::default()
            },
        );
        p
    };
    let plain = build(false);
    let straightened = build(true);
    let exec = vm::ExecOptions::default();
    let machine = sim::MachineConfig::default();
    let (s0, o0) = sim::simulate(&plain, &[b.train_arg], &exec, &machine).unwrap();
    let (s1, o1) = sim::simulate(&straightened, &[b.train_arg], &exec, &machine).unwrap();
    assert_eq!(o0.ret, o1.ret);
    assert_eq!(o0.checksum, o1.checksum);
    // The VM retires the same instructions either way...
    assert_eq!(o0.retired, o1.retired);
    // ...but the machine model elides fall-through jumps.
    assert!(
        s1.retired < s0.retired,
        "straightening should elide jumps: {} vs {}",
        s1.retired,
        s0.retired
    );
    assert!(s1.cycles <= s0.cycles * 1.01);
}

#[test]
fn procedure_positioning_layout_is_valid_for_optimized_programs() {
    for name in ["124.m88ksim", "147.vortex"] {
        let b = suite::benchmark(name).unwrap();
        let mut p = b.compile().unwrap();
        hlo::optimize(&mut p, None, &hlo::HloOptions::default());
        let cg = analysis::CallGraph::build(&p);
        let order = analysis::procedure_order(&p, &cg);
        assert_eq!(order.len(), p.funcs.len(), "{name}");
        let layout = ir::CodeLayout::with_order(&p, &order);
        // Every live function occupies a disjoint, nonzero range.
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for (id, f) in p.iter_funcs() {
            if p.module(f.module).funcs.contains(&id) {
                let fl = layout.func(id);
                assert!(fl.bytes > 0, "{name}: live function with no code");
                ranges.push((fl.base, fl.base + fl.bytes));
            }
        }
        ranges.sort();
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "{name}: overlapping placements");
        }
        // And the PGO layout executes identically.
        let exec = vm::ExecOptions::default();
        let machine = sim::MachineConfig::default();
        let (_, o_mod) = sim::simulate(&p, &[b.train_arg], &exec, &machine).unwrap();
        let (_, o_pgo) =
            sim::simulate_with_layout(&p, &[b.train_arg], &exec, &machine, layout).unwrap();
        assert_eq!(o_mod.ret, o_pgo.ret, "{name}");
    }
}
