//! Shape assertions for the paper's simulation study (Figure 7): the
//! direction of each effect is tested, not just printed by the bench
//! binaries. Uses the train input so the test stays fast in debug builds.

use aggressive_inlining::{hlo, sim, suite, vm};
use hlo::HloOptions;

fn build(b: &suite::Benchmark, inline: bool, clone: bool) -> aggressive_inlining::ir::Program {
    let mut p = b.compile().unwrap();
    hlo::optimize(
        &mut p,
        None,
        &HloOptions {
            enable_inline: inline,
            enable_clone: clone,
            ..Default::default()
        },
    );
    p
}

fn run(b: &suite::Benchmark, p: &aggressive_inlining::ir::Program) -> (sim::SimStats, i64) {
    let (s, o) = sim::simulate(
        p,
        &[b.train_arg],
        &vm::ExecOptions::default(),
        &sim::MachineConfig::default(),
    )
    .unwrap();
    (s, o.ret)
}

#[test]
fn inlining_cuts_cycles_dcache_and_branches_on_m88ksim() {
    let b = suite::benchmark("124.m88ksim").unwrap();
    let neither = build(&b, false, false);
    let inlined = build(&b, true, false);
    let (s0, r0) = run(&b, &neither);
    let (s1, r1) = run(&b, &inlined);
    assert_eq!(r0, r1);
    assert!(s1.cycles < s0.cycles, "{} !< {}", s1.cycles, s0.cycles);
    assert!(
        s1.dcache_accesses < s0.dcache_accesses,
        "D$ accesses must collapse: {} !< {}",
        s1.dcache_accesses,
        s0.dcache_accesses
    );
    assert!(
        s1.branches < s0.branches,
        "branches must fall: {} !< {}",
        s1.branches,
        s0.branches
    );
    assert!(
        s1.branch_miss_rate() <= s0.branch_miss_rate(),
        "prediction must not degrade"
    );
    // The paper: similar miss *count* over fewer accesses => rate rises.
    assert!(s1.dcache_miss_rate() >= s0.dcache_miss_rate());
}

#[test]
fn icache_accesses_fall_with_inlining_on_li() {
    let b = suite::benchmark("130.li").unwrap();
    let neither = build(&b, false, false);
    let inlined = build(&b, true, false);
    let (s0, r0) = run(&b, &neither);
    let (s1, r1) = run(&b, &inlined);
    assert_eq!(r0, r1);
    assert!(
        s1.icache_accesses < s0.icache_accesses,
        "fewer fetches after inlining: {} !< {}",
        s1.icache_accesses,
        s0.icache_accesses
    );
    assert!(s1.retired < s0.retired);
}

#[test]
fn clone_only_is_roughly_neutral() {
    // The paper: "Cloning by itself does not yield significant
    // performance improvements" — and must not tank anything either.
    for name in ["026.compress", "085.gcc"] {
        let b = suite::benchmark(name).unwrap();
        let neither = build(&b, false, false);
        let cloned = build(&b, false, true);
        let (s0, r0) = run(&b, &neither);
        let (s1, r1) = run(&b, &cloned);
        assert_eq!(r0, r1, "{name}");
        let ratio = s1.cycles / s0.cycles;
        assert!((0.85..=1.10).contains(&ratio), "{name}: {ratio}");
    }
}
