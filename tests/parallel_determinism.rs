//! The parallel pipeline's contract: `--jobs N` is a scheduling knob, not
//! an algorithm knob. For every suite program the optimized IR, the
//! operation counts and the budget accounting must be byte-identical at
//! any job count — partition planning, parallel cleanup and the shared
//! call-graph cache may only change *when* work happens, never *what*.

use aggressive_inlining::{analysis, fuzz, hlo, ipa, ir, suite};

fn optimized_text(b: &suite::Benchmark, opts: &hlo::HloOptions) -> (String, hlo::HloReport) {
    let mut p = b.compile().expect("suite program compiles");
    let report = hlo::optimize(&mut p, None, opts);
    (ir::program_to_text(&p), report)
}

#[test]
fn suite_ir_is_identical_across_job_counts() {
    for b in suite::all_benchmarks() {
        for budget in [100, 400] {
            let opts = |jobs| hlo::HloOptions {
                jobs,
                budget_percent: budget,
                scope: hlo::Scope::CrossModule,
                ..Default::default()
            };
            let (base_text, base) = optimized_text(&b, &opts(1));
            for jobs in [2, 8] {
                let (text, report) = optimized_text(&b, &opts(jobs));
                assert_eq!(
                    base_text, text,
                    "{} diverged at jobs={jobs} budget={budget}",
                    b.name
                );
                assert_eq!(base.inlines, report.inlines, "{} inlines", b.name);
                assert_eq!(base.clones, report.clones, "{} clones", b.name);
                assert_eq!(
                    base.clone_replacements, report.clone_replacements,
                    "{} clone repls",
                    b.name
                );
                assert_eq!(base.deletions, report.deletions, "{} deletions", b.name);
                assert_eq!(
                    base.compile_time_units(),
                    report.compile_time_units(),
                    "{} budget accounting",
                    b.name
                );
                assert_eq!(report.jobs, jobs as u64, "{} reported jobs", b.name);
            }
        }
    }
}

#[test]
fn fuzz_generated_programs_are_identical_across_job_counts() {
    // The suite programs above are hand-written and fixed; fuzz-generated
    // programs sweep shapes the suite never takes (deep recursion,
    // dispatchers through function pointers, pragma mixes). Same contract:
    // byte-identical IR at any job count.
    for seed in 0..8u64 {
        let sources = fuzz::generate_sources(seed, &fuzz::GenConfig::default());
        let refs: Vec<(&str, &str)> = sources
            .iter()
            .map(|(n, s)| (n.as_str(), s.as_str()))
            .collect();
        let compile = || aggressive_inlining::frontc::compile(&refs).expect("generated compiles");
        let opts = |jobs| hlo::HloOptions {
            jobs,
            scope: hlo::Scope::CrossModule,
            ..Default::default()
        };
        let mut base = compile();
        hlo::optimize(&mut base, None, &opts(1));
        let base_text = ir::program_to_text(&base);
        for jobs in [2, 8] {
            let mut p = compile();
            hlo::optimize(&mut p, None, &opts(jobs));
            assert_eq!(
                base_text,
                ir::program_to_text(&p),
                "fuzz seed {seed} diverged at jobs={jobs}"
            );
        }
    }
}

#[test]
fn trace_content_is_identical_across_job_counts() {
    // Observability obeys the same contract as the IR: after timestamp
    // normalization (span *names and nesting*, not wall times), the span
    // tree, the decision report and the metrics exposition must be
    // byte-identical at any job count. Decision events are gathered on
    // read-only workers and absorbed at barriers in partition order, so
    // `--jobs` may not reorder, drop or duplicate a single line.
    for name in ["022.li", "124.m88ksim", "072.sc"] {
        let b = suite::benchmark(name).expect("suite has the benchmark");
        let run = |jobs| {
            let mut p = b.compile().expect("suite program compiles");
            let opts = hlo::HloOptions {
                jobs,
                budget_percent: 30, // tight budget: forces rejections into the log
                scope: hlo::Scope::CrossModule,
                ..Default::default()
            };
            let mut tracer = hlo::Tracer::new(hlo::TraceLevel::Decisions);
            hlo::optimize_traced(&mut p, None, &opts, &mut tracer);
            (
                ir::program_to_text(&p),
                tracer.span_tree_text(),
                tracer.decision_report(None),
                tracer.metrics().expose(),
            )
        };
        let (ir1, spans1, decisions1, metrics1) = run(1);
        let (ir4, spans4, decisions4, metrics4) = run(4);
        assert_eq!(ir1, ir4, "{name}: IR diverged under tracing");
        assert_eq!(spans1, spans4, "{name}: span tree depends on job count");
        assert_eq!(
            decisions1, decisions4,
            "{name}: decision provenance depends on job count"
        );
        assert_eq!(
            metrics1, metrics4,
            "{name}: metrics exposition depends on job count"
        );
        assert!(
            !decisions1.is_empty(),
            "{name}: a decision-level trace must record decisions"
        );
    }
}

#[test]
fn ipa_summaries_and_decisions_are_identical_across_job_counts() {
    // The interprocedural-summary stage runs inside the same pipeline the
    // partitioner schedules, so it inherits the contract: with `ipa` on,
    // the optimized IR, the decision report (including the ipa-* reasons)
    // and the summaries recomputed over the optimized program must be
    // byte-identical at any job count. The subset is the benchmarks where
    // ipabench shows summary-stage activity.
    for name in ["124.m88ksim", "072.sc", "130.li", "147.vortex"] {
        let b = suite::benchmark(name).expect("suite has the benchmark");
        let run = |jobs| {
            let mut p = b.compile().expect("suite program compiles");
            let opts = hlo::HloOptions {
                jobs,
                scope: hlo::Scope::CrossModule,
                ..Default::default()
            };
            assert!(opts.ipa, "ipa is on by default");
            let mut tracer = hlo::Tracer::new(hlo::TraceLevel::Decisions);
            hlo::optimize_traced(&mut p, None, &opts, &mut tracer);
            let cg = analysis::CallGraph::build(&p);
            let summaries = ipa::Summaries::compute(&p, &cg);
            (
                ir::program_to_text(&p),
                summaries.to_text(),
                tracer.decision_report(None),
            )
        };
        let (ir1, sum1, dec1) = run(1);
        for jobs in [2, 8] {
            let (irn, sumn, decn) = run(jobs);
            assert_eq!(ir1, irn, "{name}: IR diverged at jobs={jobs} with ipa on");
            assert_eq!(sum1, sumn, "{name}: summaries depend on job count");
            assert_eq!(dec1, decn, "{name}: ipa decisions depend on job count");
        }
        if name == "124.m88ksim" {
            assert!(
                dec1.contains("ipa-ret-const"),
                "{name}: expected a return-constancy fold in the decision report"
            );
        }
    }
}

#[test]
fn strict_checking_stays_identical_and_clean_in_parallel() {
    // The verify-each battery forks the checker per function under
    // parallel cleanup; diagnostics must merge back in function order and
    // no job count may introduce (or hide) a finding. A subset keeps the
    // debug-mode runtime bounded; it covers the star cloning target
    // (022.li), the dispatch-table showcase (124.m88ksim) and the
    // pure-call-deletion program (072.sc).
    for name in ["022.li", "124.m88ksim", "072.sc"] {
        let b = suite::benchmark(name).expect("suite has the benchmark");
        let opts = |jobs| hlo::HloOptions {
            jobs,
            check: hlo::CheckLevel::Strict,
            scope: hlo::Scope::CrossModule,
            ..Default::default()
        };
        let (base_text, base) = optimized_text(&b, &opts(1));
        let (text, report) = optimized_text(&b, &opts(8));
        assert_eq!(base_text, text, "{name} diverged under strict checking");
        assert_eq!(
            base.diagnostics, report.diagnostics,
            "{name} diagnostics differ across job counts"
        );
        assert_eq!(base.checks_run, report.checks_run, "{name} checks_run");
        assert_eq!(
            report.introduced_diagnostics().count(),
            0,
            "{name} introduced a diagnostic"
        );
    }
}
