//! The paper's §3.2 observation: "as more information is made available
//! to the compiler, the quality of the code improves ... By and large,
//! this monotonic improvement property holds for almost all programs."
//!
//! We assert the property in aggregate (geometric mean over the Table 1
//! subset), not per program — the paper says "by and large", and single
//! programs are allowed to wobble.

use aggressive_inlining::{sim, suite, vm};
use hlo_bench::{build, geomean, BuildKind};

fn cycles(b: &suite::Benchmark, kind: BuildKind) -> f64 {
    let r = build(b, kind, hlo::HloOptions::default());
    let (stats, _) = sim::simulate(
        &r.program,
        &[b.ref_arg],
        &vm::ExecOptions::default(),
        &sim::MachineConfig::default(),
    )
    .expect("ref run");
    stats.cycles
}

#[test]
fn scope_improvements_are_monotonic_in_aggregate() {
    let benches = suite::table1_benchmarks();
    let mut base = Vec::new();
    let mut cross = Vec::new();
    let mut prof = Vec::new();
    let mut cp = Vec::new();
    for b in &benches {
        base.push(cycles(b, BuildKind::Base));
        cross.push(cycles(b, BuildKind::Cross));
        prof.push(cycles(b, BuildKind::Profile));
        cp.push(cycles(b, BuildKind::CrossProfile));
    }
    let (g_base, g_cross, g_prof, g_cp) = (
        geomean(&base),
        geomean(&cross),
        geomean(&prof),
        geomean(&cp),
    );
    // Allow 2% slack per comparison: "by and large".
    let slack = 1.02;
    assert!(
        g_cross <= g_base * slack,
        "cross-module must not lose: {g_cross} vs {g_base}"
    );
    assert!(
        g_cp <= g_cross * slack,
        "cp must not lose to cross: {g_cp} vs {g_cross}"
    );
    assert!(
        g_cp <= g_prof * slack,
        "cp must not lose to profile: {g_cp} vs {g_prof}"
    );
    assert!(
        g_cp < g_base,
        "full scope must beat the base: {g_cp} vs {g_base}"
    );
}

#[test]
fn optimization_rarely_lowers_performance() {
    // The abstract's claim: "very rarely lowers performance". Require
    // that no benchmark regresses more than 5% under the full build.
    for b in suite::all_benchmarks() {
        let neither = build(
            &b,
            BuildKind::CrossProfile,
            hlo::HloOptions {
                enable_inline: false,
                enable_clone: false,
                ..Default::default()
            },
        );
        let full = build(&b, BuildKind::CrossProfile, hlo::HloOptions::default());
        let opts = vm::ExecOptions::default();
        let machine = sim::MachineConfig::default();
        let (s0, _) = sim::simulate(&neither.program, &[b.ref_arg], &opts, &machine).unwrap();
        let (s1, _) = sim::simulate(&full.program, &[b.ref_arg], &opts, &machine).unwrap();
        assert!(
            s1.cycles <= s0.cycles * 1.05,
            "{} regressed: {} -> {}",
            b.name,
            s0.cycles,
            s1.cycles
        );
    }
}
