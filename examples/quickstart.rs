//! Quickstart: compile a two-module program, optimize it with HLO, and
//! watch the dynamic instruction count drop.
//!
//! Run with `cargo run --example quickstart`.

use aggressive_inlining::{frontc, hlo, vm};

fn main() {
    // Two modules: a math library and a driver, as the link-time ("isom")
    // path would buffer them.
    let sources = [
        (
            "mathlib",
            r#"
            fn square(x) { return x * x; }
            fn cube(x) { return square(x) * x; }
            static fn clamp(v, lo, hi) {
                if (v < lo) { return lo; }
                if (v > hi) { return hi; }
                return v;
            }
            fn poly(x) { return clamp(cube(x) - 3 * square(x) + 2, 0, 1000000); }
            "#,
        ),
        (
            "driver",
            r#"
            fn main() {
                var s = 0;
                for (var i = 0; i < 1000; i = i + 1) { s = s + poly(i % 50); }
                return s;
            }
            "#,
        ),
    ];

    let program = frontc::compile(&sources).expect("sources are valid MinC");
    let opts = vm::ExecOptions::default();
    let before = vm::run_program(&program, &[], &opts).expect("runs");

    let mut optimized = program.clone();
    let report = hlo::optimize(&mut optimized, None, &hlo::HloOptions::default());
    let after = vm::run_program(&optimized, &[], &opts).expect("still runs");

    assert_eq!(before.ret, after.ret, "optimization must preserve results");
    println!("result            : {}", after.ret);
    println!("{report}");
    println!("retired before    : {}", before.retired);
    println!("retired after     : {}", after.retired);
    println!(
        "dynamic reduction : {:.1}%",
        100.0 * (1.0 - after.retired as f64 / before.retired as f64)
    );
}
