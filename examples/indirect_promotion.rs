//! The paper's staged optimization (§3.1): an indirect call is not
//! directly inlinable, but HLO clones the routine that forwards a
//! function-pointer parameter, constant propagation turns the indirect
//! call direct inside the clone, and the *next* pass inlines it. This
//! example shows the call-site mix changing pass by pass.
//!
//! Run with `cargo run --example indirect_promotion`.

use aggressive_inlining::{analysis, frontc, hlo, vm};

const SRC: &str = r#"
static fn on_even(x) { return x / 2; }
static fn on_odd(x) { return 3 * x + 1; }

// The forwarding routine: `f` reaches the indirect call position, the
// case the paper's cloner gives "special emphasis".
fn dispatch(f, x) { return f(x); }

fn main() {
    var v = 27;
    var steps = 0;
    while (v != 1 && steps < 200) {
        if (v % 2 == 0) { v = dispatch(&on_even, v); }
        else { v = dispatch(&on_odd, v); }
        steps = steps + 1;
    }
    return steps;
}
"#;

fn mix(p: &aggressive_inlining::ir::Program) -> String {
    let c = analysis::classify_sites(p);
    format!(
        "extern {} | indirect {} | cross {} | within {} | recursive {}",
        c.external, c.indirect, c.cross_module, c.within_module, c.recursive
    )
}

fn main() {
    let program = frontc::compile(&[("collatz", SRC)]).expect("valid MinC");
    println!("before HLO : {}", mix(&program));
    let before = vm::run_program(&program, &[], &vm::ExecOptions::default()).unwrap();

    let mut optimized = program.clone();
    let report = hlo::optimize(&mut optimized, None, &hlo::HloOptions::default());
    for pass in &report.passes {
        println!(
            "pass {}: {} clones (+{} reused), {} sites redirected, {} inlines, {} deletions",
            pass.pass,
            pass.clones_created,
            pass.clones_reused,
            pass.clone_replacements,
            pass.inlines,
            pass.deletions
        );
    }
    println!("after HLO  : {}", mix(&optimized));

    let after = vm::run_program(&optimized, &[], &vm::ExecOptions::default()).unwrap();
    assert_eq!(before.ret, after.ret);
    println!(
        "collatz(27) takes {} steps; retired {} -> {}",
        after.ret, before.retired, after.retired
    );
}
