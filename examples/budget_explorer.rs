//! Budget exploration (the machinery behind the paper's Figure 8): sweep
//! the compile-time budget and watch operations, code growth and run
//! time respond. The paper chose its default budget of 100 because the
//! run-time curve flattens there.
//!
//! Run with `cargo run --release --example budget_explorer [benchmark]`.

use aggressive_inlining::{hlo, sim, suite, vm};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "085.gcc".into());
    let bench = suite::benchmark(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{name}`; try one of:");
        for b in suite::all_benchmarks() {
            eprintln!("  {}", b.name);
        }
        std::process::exit(2);
    });

    println!("budget sweep on {name} (cross-module, static heuristics)");
    println!(
        "{:>7} {:>6} {:>7} {:>11} {:>13} {:>9}",
        "budget%", "ops", "clones", "final size", "cycles", "speedup"
    );
    let opts = vm::ExecOptions::default();
    let machine = sim::MachineConfig::default();
    let mut base_cycles = None;
    for budget in [0, 12, 25, 50, 100, 200, 400, 1000] {
        let mut p = bench.compile().expect("compiles");
        let report = hlo::optimize(
            &mut p,
            None,
            &hlo::HloOptions {
                budget_percent: budget,
                ..Default::default()
            },
        );
        let (stats, _) = sim::simulate(&p, &[bench.ref_arg], &opts, &machine).expect("runs");
        let base = *base_cycles.get_or_insert(stats.cycles);
        println!(
            "{:>7} {:>6} {:>7} {:>11} {:>13.0} {:>9.3}",
            budget,
            report.operations(),
            report.clones,
            p.total_size(),
            stats.cycles,
            base / stats.cycles
        );
    }
}
