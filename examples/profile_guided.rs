//! Profile-guided optimization end to end: instrumented training run,
//! profile database, and a PGO re-compile — the paper's "isom + PBO"
//! path (§2.1), on the suite's lisp interpreter.
//!
//! Run with `cargo run --release --example profile_guided`.

use aggressive_inlining::{hlo, profile, sim, suite, vm};

fn main() {
    let bench = suite::benchmark("022.li").expect("suite has 022.li");
    let opts = vm::ExecOptions::default();
    let machine = sim::MachineConfig::default();

    // 1. Instrumented compile + training run on the *train* input.
    let train_program = bench.compile().expect("compiles");
    let (db, train_out) =
        profile::collect_profile(&train_program, &[bench.train_arg], &opts).expect("training run");
    println!(
        "training run: {} instructions, {} functions profiled",
        train_out.retired,
        db.len()
    );

    // The profile database round-trips through its on-disk text form.
    let text = db.to_text();
    let db = profile::ProfileDb::from_text(&text).expect("roundtrip");

    // 2. Optimize fresh compiles with and without the profile; use a
    //    tight budget so heuristic quality matters.
    let tight = hlo::HloOptions {
        budget_percent: 40,
        ..Default::default()
    };
    let mut static_build = bench.compile().unwrap();
    let r_static = hlo::optimize(&mut static_build, None, &tight);
    let mut pgo_build = bench.compile().unwrap();
    let r_pgo = hlo::optimize(&mut pgo_build, Some(&db), &tight);

    // 3. Measure both on the *ref* input through the PA8000 model.
    let (s_static, o_static) =
        sim::simulate(&static_build, &[bench.ref_arg], &opts, &machine).expect("runs");
    let (s_pgo, o_pgo) =
        sim::simulate(&pgo_build, &[bench.ref_arg], &opts, &machine).expect("runs");
    assert_eq!(o_static.ret, o_pgo.ret);

    println!("\nstatic heuristics : {r_static}");
    println!("  {s_static}");
    println!("\nprofile-guided    : {r_pgo}");
    println!("  {s_pgo}");
    println!(
        "\nPGO speedup over static heuristics: {:.3}x",
        s_static.cycles / s_pgo.cycles
    );
}
