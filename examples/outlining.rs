//! Aggressive outlining (the paper's §5 future work) in action: a hot
//! loop whose body carries fat, almost-never-taken error paths. Outlining
//! the cold paths shrinks the hot routine, which (a) frees compile-time
//! budget for inlining and (b) removes cold code from the hot I-cache
//! lines.
//!
//! Run with `cargo run --release --example outlining`.

use aggressive_inlining::{hlo, profile, sim, vm};

const SRC: &str = r#"
global err_log[64];
global err_count;

fn process(v, limit) {
    if (v < 0) {
        // Cold: negative input. Fat diagnostic path.
        err_count = err_count + 1;
        var slot = err_count & 63;
        err_log[slot] = v;
        err_log[(slot + 1) & 63] = limit;
        var code = v * 1000 - limit * 7 + err_count;
        return 0 - code;
    }
    if (v > limit) {
        // Cold: overflow. Another fat diagnostic path.
        err_count = err_count + 1;
        var slot = err_count & 63;
        err_log[slot] = v - limit;
        var code = (v - limit) * 3 + err_count * 11;
        return 0 - code;
    }
    return v * 2 + 1;
}

fn main(n) {
    err_count = 0;
    var s = 0;
    for (var i = 0; i < n; i = i + 1) {
        s = s + process(i % 1000, 2000);
    }
    // exercise the cold paths once so they are not dead code
    s = s + process(0 - 5, 10) + process(50, 10);
    return s;
}
"#;

fn build(
    outline: bool,
    db: &profile::ProfileDb,
) -> (hlo::HloReport, aggressive_inlining::ir::Program) {
    let mut p = aggressive_inlining::frontc::compile(&[("app", SRC)]).expect("valid MinC");
    let opts = hlo::HloOptions {
        budget_percent: 150,
        enable_outline: outline,
        outline: hlo::OutlineOptions {
            cold_fraction: 0.02,
            ..Default::default()
        },
        ..Default::default()
    };
    let report = hlo::optimize(&mut p, Some(db), &opts);
    (report, p)
}

fn main() {
    let train = aggressive_inlining::frontc::compile(&[("app", SRC)]).expect("valid MinC");
    let exec = vm::ExecOptions::default();
    let (db, _) = profile::collect_profile(&train, &[2000], &exec).expect("training");

    let (r_plain, p_plain) = build(false, &db);
    let (r_outl, p_outl) = build(true, &db);
    println!("without outlining: {r_plain}");
    println!(
        "with outlining   : {r_outl} ({} regions outlined)",
        r_outl.outlines
    );

    // Tiny I-cache so hot-loop footprint matters.
    let machine = sim::MachineConfig {
        icache: sim::CacheConfig {
            size_bytes: 256,
            line_bytes: 32,
            ways: 1,
        },
        ..Default::default()
    };
    let (s_plain, o1) = sim::simulate(&p_plain, &[200000], &exec, &machine).expect("runs");
    let (s_outl, o2) = sim::simulate(&p_outl, &[200000], &exec, &machine).expect("runs");
    assert_eq!(o1.ret, o2.ret, "outlining must preserve semantics");
    println!("\nplain   : {s_plain}");
    println!("outlined: {s_outl}");
    println!(
        "\nI$ miss rate {:.3}% -> {:.3}%, cycles ratio {:.3}",
        s_plain.icache_miss_rate() * 100.0,
        s_outl.icache_miss_rate() * 100.0,
        s_plain.cycles / s_outl.cycles
    );
}
